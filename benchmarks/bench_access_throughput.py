"""PERF-3 / PERF-8 — access-control enforcement and audience throughput.

End-to-end measurement of the system the paper describes in its problem
statement: requests are intercepted, the stored rules are looked up, and each
access condition is evaluated as a reachability query.  A fixed workload
(synthetic scale-free graph, scenario-based rules, a stream of random
requests) is replayed through the AccessControlEngine on every backend and
the decision throughput is reported.

PERF-8 drives the workload generator's **bulk_audience scenario**: grouped
``authorized_audiences`` requests are answered three ways — a per-resource
``authorized_audience`` loop, the grouped sweep pinned to the per-owner
``"batched"`` baseline, and the grouped multi-source owner-bitset sweep —
and the three modes are reported side by side (they must agree exactly).
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.policy import AccessControlEngine, PolicyStore
from repro.reachability import available_backends
from repro.workloads.generator import WorkloadSpec, build_workload
from repro.workloads.metrics import MetricSeries, Timer

_SERIES = MetricSeries(
    "PERF-3 — enforcement throughput per backend",
    ["backend", "users", "rules", "requests", "decisions_per_second", "grant_rate"],
)

_AUDIENCE_SERIES = MetricSeries(
    "PERF-8 — bulk audience materialization modes (bfs backend)",
    ["mode", "batches", "batch_size", "seconds", "audiences_per_second", "speedup"],
)

SPEC = WorkloadSpec(
    users=300, owners=8, rules_per_owner=2, requests=120, seed=91,
    audience_batches=6, audience_batch_size=8,
)
_WORKLOAD = None
_ENGINES = {}


def _workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        _WORKLOAD = build_workload(SPEC)
    return _WORKLOAD


def _engine(backend, *, cache_size=0):
    key = (backend, cache_size)
    if key not in _ENGINES:
        workload = _workload()
        store = PolicyStore()
        for resource_id, owner, expressions in workload.resources:
            store.share(owner, resource_id)
            store.allow(resource_id, list(expressions))
        # cache_size=0 by default: the replay repeats identical requests, so
        # the engine's decision memo would otherwise turn every round after
        # the first into dictionary lookups and flatten the per-backend
        # comparison this table exists to show.  The memo is measured
        # explicitly (and only once) by test_enforcement_throughput_memoized.
        _ENGINES[key] = AccessControlEngine(
            workload.graph, store, backend=backend, cache_size=cache_size
        )
    return _ENGINES[key]


@pytest.mark.parametrize("backend", available_backends())
def test_enforcement_throughput(benchmark, backend):
    workload = _workload()
    engine = _engine(backend)

    def replay():
        grants = 0
        for requester, resource_id in workload.requests:
            if engine.is_allowed(requester, resource_id):
                grants += 1
        return grants

    grants = benchmark.pedantic(replay, rounds=3, iterations=1)
    with Timer() as timer:
        replay()
    _SERIES.add(
        backend=backend,
        users=workload.graph.number_of_users(),
        rules=len(workload.resources),
        requests=len(workload.requests),
        decisions_per_second=len(workload.requests) / timer.elapsed if timer.elapsed else float("inf"),
        grant_rate=round(grants / len(workload.requests), 3),
    )
    assert 0 <= grants <= len(workload.requests)


def test_enforcement_throughput_memoized(benchmark):
    """The same replay with the decision memo on — steady-state cache hits."""
    workload = _workload()
    engine = _engine("bfs", cache_size=4096)

    def replay():
        grants = 0
        for requester, resource_id in workload.requests:
            if engine.is_allowed(requester, resource_id):
                grants += 1
        return grants

    replay()  # warm the memo: the row reports steady-state hit throughput
    grants = benchmark.pedantic(replay, rounds=3, iterations=1)
    with Timer() as timer:
        replay()
    _SERIES.add(
        backend="bfs+decision-memo",
        users=workload.graph.number_of_users(),
        rules=len(workload.resources),
        requests=len(workload.requests),
        decisions_per_second=len(workload.requests) / timer.elapsed if timer.elapsed else float("inf"),
        grant_rate=round(grants / len(workload.requests), 3),
    )
    assert engine.reachability.cache_info()["hits"] > 0


def test_bulk_audience_modes(benchmark):
    """PERF-8: per-resource loop vs grouped batched vs grouped multi-source."""
    workload = _workload()
    engine = _engine("bfs")  # cache_size=0: every mode pays its own sweeps
    batches = workload.audience_requests
    assert batches, "the workload spec must emit a bulk_audience scenario"

    def per_resource():
        return [
            {rid: engine.authorized_audience(rid) for rid in batch}
            for batch in batches
        ]

    def bulk(direction):
        return [
            engine.authorized_audiences(batch, direction=direction)
            for batch in batches
        ]

    modes = {
        "per-resource loop": per_resource,
        "bulk batched (PR 2)": lambda: bulk("batched"),
        "bulk multi-source": lambda: bulk("auto"),
    }
    results = {}
    timings = {}
    for mode, run in modes.items():
        with Timer() as timer:
            results[mode] = run()
        timings[mode] = timer.elapsed
    # The three modes must materialize identical audiences.
    assert results["per-resource loop"] == results["bulk batched (PR 2)"]
    assert results["per-resource loop"] == results["bulk multi-source"]

    audiences = sum(len(batch) for batch in batches)
    baseline = timings["per-resource loop"]
    for mode, seconds in timings.items():
        _AUDIENCE_SERIES.add(
            mode=mode,
            batches=len(batches),
            batch_size=len(batches[0]),
            seconds=seconds,
            audiences_per_second=audiences / seconds if seconds else float("inf"),
            speedup=round(baseline / seconds, 2) if seconds else float("inf"),
        )
    benchmark.pedantic(lambda: bulk("auto"), rounds=3, iterations=1)
    # The sweep planner ran: the plan-carrying bulk API reports one executed
    # plan per distinct expression of the last batch.
    _audiences, plans = engine.audiences_with_plans(batches[-1])
    assert plans


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf3_access_throughput", _SERIES.to_table())
    record_table("perf8_audience_modes", _AUDIENCE_SERIES.to_table())
    assert len(_SERIES.rows) == len(available_backends()) + 1
    assert len(_AUDIENCE_SERIES.rows) == 3
