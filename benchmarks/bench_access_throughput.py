"""PERF-3 — access-control enforcement throughput (decisions per second).

End-to-end measurement of the system the paper describes in its problem
statement: requests are intercepted, the stored rules are looked up, and each
access condition is evaluated as a reachability query.  A fixed workload
(synthetic scale-free graph, scenario-based rules, a stream of random
requests) is replayed through the AccessControlEngine on every backend and
the decision throughput is reported.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.policy import AccessControlEngine, PolicyStore
from repro.reachability import available_backends
from repro.workloads.generator import WorkloadSpec, build_workload
from repro.workloads.metrics import MetricSeries, Timer

_SERIES = MetricSeries(
    "PERF-3 — enforcement throughput per backend",
    ["backend", "users", "rules", "requests", "decisions_per_second", "grant_rate"],
)

SPEC = WorkloadSpec(users=300, owners=8, rules_per_owner=2, requests=120, seed=91)
_WORKLOAD = None
_ENGINES = {}


def _workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        _WORKLOAD = build_workload(SPEC)
    return _WORKLOAD


def _engine(backend, *, cache_size=0):
    key = (backend, cache_size)
    if key not in _ENGINES:
        workload = _workload()
        store = PolicyStore()
        for resource_id, owner, expressions in workload.resources:
            store.share(owner, resource_id)
            store.allow(resource_id, list(expressions))
        # cache_size=0 by default: the replay repeats identical requests, so
        # the engine's decision memo would otherwise turn every round after
        # the first into dictionary lookups and flatten the per-backend
        # comparison this table exists to show.  The memo is measured
        # explicitly (and only once) by test_enforcement_throughput_memoized.
        _ENGINES[key] = AccessControlEngine(
            workload.graph, store, backend=backend, cache_size=cache_size
        )
    return _ENGINES[key]


@pytest.mark.parametrize("backend", available_backends())
def test_enforcement_throughput(benchmark, backend):
    workload = _workload()
    engine = _engine(backend)

    def replay():
        grants = 0
        for requester, resource_id in workload.requests:
            if engine.is_allowed(requester, resource_id):
                grants += 1
        return grants

    grants = benchmark.pedantic(replay, rounds=3, iterations=1)
    with Timer() as timer:
        replay()
    _SERIES.add(
        backend=backend,
        users=workload.graph.number_of_users(),
        rules=len(workload.resources),
        requests=len(workload.requests),
        decisions_per_second=len(workload.requests) / timer.elapsed if timer.elapsed else float("inf"),
        grant_rate=round(grants / len(workload.requests), 3),
    )
    assert 0 <= grants <= len(workload.requests)


def test_enforcement_throughput_memoized(benchmark):
    """The same replay with the decision memo on — steady-state cache hits."""
    workload = _workload()
    engine = _engine("bfs", cache_size=4096)

    def replay():
        grants = 0
        for requester, resource_id in workload.requests:
            if engine.is_allowed(requester, resource_id):
                grants += 1
        return grants

    replay()  # warm the memo: the row reports steady-state hit throughput
    grants = benchmark.pedantic(replay, rounds=3, iterations=1)
    with Timer() as timer:
        replay()
    _SERIES.add(
        backend="bfs+decision-memo",
        users=workload.graph.number_of_users(),
        rules=len(workload.resources),
        requests=len(workload.requests),
        decisions_per_second=len(workload.requests) / timer.elapsed if timer.elapsed else float("inf"),
        grant_rate=round(grants / len(workload.requests), 3),
    )
    assert engine.reachability.cache_info()["hits"] > 0


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf3_access_throughput", _SERIES.to_table())
    assert len(_SERIES.rows) == len(available_backends()) + 1
