"""PERF-7 — multi-source owner-bitset audience sweep vs the PR 2 batched sweep.

The PR 2 batched sweep (``audience_sweep_batched``) hoists the per-state CSR
selections out of the edge loop but still walks one ``(owner, automaton)``
product per owner, so on frontier-heavy expressions every owner re-expands
nearly the same neighbourhood.  The multi-source sweep (``audience_sweep``)
keeps an owner bitmask per ``(node, state)`` slot and propagates *new* bits
only, so overlapping owner frontiers are traversed once; a direction planner
additionally chooses between sweeping forward from the owners and backward
from the whole vertex set over the reversed automaton.

The experiment measures, on the 5000-user scalability graph (300 users in
``BENCH_SMOKE=1`` mode, the CI smoke job), for each expression and owner
count:

1. the PR 2 batched sweep (baseline);
2. the multi-source sweep pinned forward and pinned reverse;
3. the planner's ``auto`` choice (the acceptance row: >= 3x over the
   baseline at 5000 users with >= 64 owners).

A second experiment exercises the planner's **reverse arm** for real (the
ROADMAP open item): a huge-owner-set workload — audiences for 25% / 50% /
100% of the vertex set at once — over an expression whose forward first step
fans out hard (``friend*``) into a selective final label (``parent``).
Reversed, the rare label becomes the *first* step and prunes the frontier
immediately; as the owner set approaches |V| the forward sweep's only
advantage (narrower owner masks) vanishes, and the planner must flip to
``reverse`` at the 100% row.

All variants must materialize identical audiences.  Artifacts:
``benchmarks/results/BENCH_audience_multisource.json`` and
``perf7_audience_multisource.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_audience_multisource.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.compiled import compile_graph
from repro.graph.generators import preferential_attachment_graph
from repro.policy.path_expression import PathExpression
from repro.reachability.compiled_search import (
    AutomatonCache,
    audience_sweep,
    audience_sweep_batched,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 300 if SMOKE else 5000
OWNER_COUNTS = (16,) if SMOKE else (64, 128, 256)

#: Frontier-heavy audience policies — the shapes the ROADMAP open item named
#: (`*`-direction walks, deep friend balls) with the selective accepts real
#: rules have (a rare final label, an attribute threshold).  Per owner the
#: product walk explores a large, heavily shared neighbourhood and accepts a
#: modest audience, which is exactly where per-owner re-expansion hurts.
EXPRESSIONS = (
    "friend*[1,4]{age >= 60}",
    "friend+[1,5]/parent+[1]",
    "friend*[1,4]/colleague+[1]",
    "friend*[1,3]/parent+[1]{age >= 40}",
)

#: Full-size acceptance floor for the planner's auto choice at >= 64 owners.
SPEEDUP_TARGET = 3.0

#: The reverse-arm workload: a hub-heavy ``*`` walk into a rare final label.
#: Reversed (``parent-[1]/friend*[1,3]``) the selective label leads, so a
#: whole-vertex-set owner batch is cheaper to sweep backwards.
REVERSE_ARM_EXPRESSION = "friend*[1,3]/parent+[1]"

#: Owner-set sizes for the reverse-arm experiment, as fractions of |V|.
REVERSE_ARM_FRACTIONS = (0.25, 0.5, 1.0)


def _timed(function):
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def run_benchmark() -> dict:
    graph = preferential_attachment_graph(SIZE, edges_per_node=3, seed=71)
    snapshot = compile_graph(graph)
    automata = AutomatonCache()
    node_count = snapshot.number_of_nodes()

    # Owners are the active users whose audiences are worth materializing in
    # bulk — the highest-degree hubs.  Their frontiers overlap the most,
    # which is the regime the multi-source sweep exists for (and the regime
    # where the per-owner baseline degrades linearly).
    by_degree = sorted(
        range(node_count),
        key=lambda node: -(snapshot.out_degree(node) + snapshot.in_degree(node)),
    )

    rows = []
    for text in EXPRESSIONS:
        expression = PathExpression.parse(text)
        automaton = automata.get(expression, snapshot)
        for owner_count in OWNER_COUNTS:
            owners = by_degree[: min(owner_count, node_count)]

            batched_seconds, batched = _timed(
                lambda: audience_sweep_batched(snapshot, automaton, owners)
            )
            forward_seconds, forward = _timed(
                lambda: audience_sweep(snapshot, automaton, owners, direction="forward")
            )
            reverse_seconds, reverse = _timed(
                lambda: audience_sweep(snapshot, automaton, owners, direction="reverse")
            )
            auto_seconds, auto = _timed(
                lambda: audience_sweep(snapshot, automaton, owners)
            )

            # Every variant must materialize identical audiences.
            reference = [set(audience) for audience in batched]
            for name, sweep in (("forward", forward), ("reverse", reverse), ("auto", auto)):
                got = [set(audience) for audience in sweep.audiences]
                assert got == reference, (text, owner_count, name)

            rows.append(
                {
                    "expression": text,
                    "owners": len(owners),
                    "audience_nodes": sum(len(a) for a in reference),
                    "batched_seconds": batched_seconds,
                    "forward_seconds": forward_seconds,
                    "reverse_seconds": reverse_seconds,
                    "auto_seconds": auto_seconds,
                    "auto_direction": auto.plan.direction,
                    "planned_forward_cost": auto.plan.forward_cost,
                    "planned_reverse_cost": auto.plan.reverse_cost,
                    "speedup_auto": batched_seconds / auto_seconds,
                    "speedup_forward": batched_seconds / forward_seconds,
                    "speedup_reverse": batched_seconds / reverse_seconds,
                }
            )

    # ---- reverse-arm experiment: huge owner sets, selective first step ----
    expression = PathExpression.parse(REVERSE_ARM_EXPRESSION)
    automaton = automata.get(expression, snapshot)
    reverse_rows = []
    for fraction in REVERSE_ARM_FRACTIONS:
        owners = by_degree[: max(1, int(node_count * fraction))]
        forward_seconds, forward = _timed(
            lambda: audience_sweep(snapshot, automaton, owners, direction="forward")
        )
        auto_seconds, auto = _timed(
            lambda: audience_sweep(snapshot, automaton, owners)
        )
        reference = [set(audience) for audience in forward.audiences]
        assert [set(a) for a in auto.audiences] == reference, fraction
        reverse_rows.append(
            {
                "expression": REVERSE_ARM_EXPRESSION,
                "owners": len(owners),
                "fraction": fraction,
                "forward_seconds": forward_seconds,
                "auto_seconds": auto_seconds,
                "auto_direction": auto.plan.direction,
                "planned_forward_cost": auto.plan.forward_cost,
                "planned_reverse_cost": auto.plan.reverse_cost,
            }
        )

    return {
        "experiment": "PERF-7 multi-source owner-bitset audience sweep",
        "smoke": SMOKE,
        "users": graph.number_of_users(),
        "relationships": graph.number_of_relationships(),
        "owner_counts": list(OWNER_COUNTS),
        "speedup_target": SPEEDUP_TARGET,
        "rows": rows,
        "reverse_arm_rows": reverse_rows,
    }


def _format_table(summary: dict) -> str:
    lines = [
        "PERF-7 — multi-source owner-bitset audience sweep vs PR 2 batched",
        f"graph: {summary['users']} users, {summary['relationships']} relationships"
        + (" (SMOKE)" if summary["smoke"] else ""),
        "",
        f"{'expression':<28} {'owners':>6} {'batched s':>10} {'multi s':>8} "
        f"{'speedup':>8} {'plan':>8}",
        "-" * 74,
    ]
    for row in summary["rows"]:
        lines.append(
            f"{row['expression']:<28} {row['owners']:>6} "
            f"{row['batched_seconds']:>10.3f} {row['auto_seconds']:>8.3f} "
            f"{row['speedup_auto']:>7.1f}x {row['auto_direction']:>8}"
        )
    lines += [
        "",
        "reverse arm — huge owner sets over a selective-first-step expression:",
        f"{'expression':<28} {'owners':>6} {'forward s':>10} {'auto s':>8} {'plan':>8}",
        "-" * 66,
    ]
    for row in summary["reverse_arm_rows"]:
        lines.append(
            f"{row['expression']:<28} {row['owners']:>6} "
            f"{row['forward_seconds']:>10.3f} {row['auto_seconds']:>8.3f} "
            f"{row['auto_direction']:>8}"
        )
    return "\n".join(lines)


def _meets_target(summary: dict) -> bool:
    relevant = [row for row in summary["rows"] if row["owners"] >= 64]
    return bool(relevant) and all(
        row["speedup_auto"] >= SPEEDUP_TARGET for row in relevant
    )


def _planner_flips_to_reverse(summary: dict) -> bool:
    """The whole-vertex-set owner batch must be planned as a reverse sweep."""
    full = [row for row in summary["reverse_arm_rows"] if row["fraction"] == 1.0]
    return bool(full) and all(row["auto_direction"] == "reverse" for row in full)


def test_multisource_sweep_beats_the_batched_baseline():
    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    assert _planner_flips_to_reverse(summary), summary["reverse_arm_rows"]
    if SMOKE:
        return  # agreement already asserted; ratios are noise at smoke size
    assert _meets_target(summary), summary["rows"]


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_audience_multisource.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf7_audience_multisource.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(
        0
        if (_planner_flips_to_reverse(summary) and (summary["smoke"] or _meets_target(summary)))
        else 1
    )
