"""PERF-5 — comparison against the Carminati et al. rule-based baseline.

The related-work section positions the paper against Carminati, Ferrari &
Perego's model (single relationship type, maximum depth, minimum trust).
Two aspects are measured on the same workload:

* **decision cost** — the baseline evaluates a bounded single-label BFS,
  the reachability model evaluates a full path expression; both are timed;
* **expressiveness** — for each scenario of the paper we report whether any
  (relationship, depth) baseline rule reproduces the same audience; the
  multi-relationship / ordered / attribute-filtered scenarios cannot be
  expressed, which is the qualitative gap the paper claims.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.graph.generators import preferential_attachment_graph
from repro.policy import AccessControlEngine, CarminatiEngine, CarminatiRule, PolicyStore
from repro.workloads.metrics import MetricSeries, Timer
from repro.workloads.scenarios import SCENARIOS

_GRAPH = None
_LATENCY = MetricSeries(
    "PERF-5a — decision latency: reachability model vs depth+trust baseline",
    ["model", "policy", "requests", "mean_latency_ms"],
)
_EXPRESSIVENESS = MetricSeries(
    "PERF-5b — can a single (relationship, depth) baseline rule express the scenario?",
    ["scenario", "expressions", "baseline_equivalent"],
)


def _graph():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = preferential_attachment_graph(200, edges_per_node=3, seed=55)
    return _GRAPH


def _owner(graph):
    return max(graph.users(), key=lambda user: graph.out_degree(user, "friend"))


def test_reachability_model_decision_latency(benchmark):
    graph = _graph()
    owner = _owner(graph)
    store = PolicyStore()
    store.share(owner, "res")
    store.allow("res", "friend+[1,2]")
    # Memo off: the rounds replay the same 50 requesters and must keep
    # measuring query evaluation rather than decision-cache lookups.
    engine = AccessControlEngine(graph, store, cache_size=0)
    requesters = sorted(graph.users())[:50]

    def run():
        return sum(engine.is_allowed(requester, "res") for requester in requesters)

    benchmark.pedantic(run, rounds=3, iterations=1)
    with Timer() as timer:
        run()
    _LATENCY.add(model="reachability (this paper)", policy="friend+[1,2]",
                 requests=len(requesters), mean_latency_ms=1000.0 * timer.elapsed / len(requesters))


def test_carminati_baseline_decision_latency(benchmark):
    graph = _graph()
    owner = _owner(graph)
    engine = CarminatiEngine(graph)
    engine.add_rule(CarminatiRule("res", owner, "friend", max_depth=2))
    requesters = sorted(graph.users())[:50]

    def run():
        return sum(engine.is_allowed(requester, "res") for requester in requesters)

    benchmark.pedantic(run, rounds=3, iterations=1)
    with Timer() as timer:
        run()
    _LATENCY.add(model="Carminati et al. (depth+trust)", policy="friend, depth<=2",
                 requests=len(requesters), mean_latency_ms=1000.0 * timer.elapsed / len(requesters))


def test_expressiveness_comparison(benchmark):
    """For each scenario, check whether a single (relationship, depth) baseline
    rule reproduces the same audience for *every* owner of the example graph.

    Owners are all seven users of Figure 1, so degenerate cases (an owner
    without children, say) cannot make an inexpressible policy look
    expressible by accident.
    """
    from repro.datasets.paper_graph import paper_graph

    graph = paper_graph()
    owners = sorted(graph.users())

    def analyse():
        rows = []
        for scenario in SCENARIOS.values():
            expressible_for = 0
            for owner in owners:
                store = PolicyStore()
                store.share(owner, "res")
                store.allow("res", list(scenario.expressions), combination=scenario.combination)
                audience = frozenset(AccessControlEngine(graph, store).authorized_audience("res"))
                found = False
                for relationship in graph.labels():
                    for depth in (1, 2, 3):
                        baseline = CarminatiEngine(graph)
                        baseline.add_rule(
                            CarminatiRule("c", owner, relationship, max_depth=depth)
                        )
                        if frozenset(baseline.authorized_audience("c")) == audience:
                            found = True
                            break
                    if found:
                        break
                expressible_for += int(found)
            verdict = (
                "expressible for every owner"
                if expressible_for == len(owners)
                else f"NOT EXPRESSIBLE ({expressible_for}/{len(owners)} owners only)"
            )
            rows.append(
                {
                    "scenario": scenario.name,
                    "expressions": "; ".join(scenario.expressions),
                    "baseline_equivalent": verdict,
                }
            )
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    for row in rows:
        _EXPRESSIVENESS.add(**row)
    inexpressible = [row for row in rows if row["baseline_equivalent"].startswith("NOT")]
    assert len(inexpressible) >= 3  # the multi-relationship / directed / filtered scenarios


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf5a_carminati_latency", _LATENCY.to_table())
    record_table("perf5b_carminati_expressiveness", _EXPRESSIVENESS.to_table())
    assert len(_LATENCY.rows) == 2
    assert len(_EXPRESSIVENESS.rows) == len(SCENARIOS)
