"""PERF-9 — incremental snapshot maintenance under churn vs full rebuild.

Every ``SocialGraph`` mutation bumps the epoch and stales the compiled CSR
snapshot.  Before delta maintenance the next query paid one O(|V| + |E|)
rebuild per mutation burst — rebuild-dominated as soon as writes interleave
with reads.  With the mutation journal, ``compile_graph`` hands the burst to
``CompiledGraph.apply_deltas``: attribute writes are free, edge writes queue
into per-label overflow side-tables folded in at the next adjacency read.

Two experiments on the 5000-user scalability graph (300 users in
``BENCH_SMOKE=1`` mode, the CI smoke job):

1. **Snapshot refresh cost** — apply one churn burst of ~1% of |E|
   (remove/add pairs plus attribute rewrites), then time the
   *time-to-first-query*: one ``is_reachable`` through a cache-disabled
   engine, which is exactly the moment the refresh bill lands (the full
   rebuild, or the delta absorption plus compacting the one label the
   query touches).  The residual cost of settling every remaining label —
   what later queries amortize — is reported in its own column.
   Delta-apply (journal on) vs full rebuild (``journal_limit = 0``); the
   acceptance row: delta-apply beats the rebuild by >= 5x at full size.
   Both modes must produce snapshots that answer identically.
2. **Interleaved write/query throughput** — one churn write followed by
   ``ratio`` reads (``is_reachable`` through a ``ReachabilityEngine``), for
   read/write ratios 1:1 to 1000:1, in both modes.

Artifacts: ``benchmarks/results/BENCH_churn_incremental.json`` and
``perf9_churn_incremental.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_churn_incremental.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.compiled import compile_graph
from repro.reachability.engine import ReachabilityEngine
from repro.workloads.generator import WorkloadSpec, apply_churn_op, build_workload

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 300 if SMOKE else 5000
REFRESH_BURSTS = 3 if SMOKE else 8
RATIOS = (1, 10) if SMOKE else (1, 10, 100, 1000)
SEED = 43

#: Full-size acceptance floor: delta-apply vs full rebuild on the refresh.
SPEEDUP_TARGET = 5.0

QUERY_EXPRESSION = "friend+[1,2]"
EQUIVALENCE_EXPRESSIONS = ("friend+[1,2]", "friend*[1,2]", "colleague+[1]")


def _churn_workload(bursts: int, burst_size: int):
    """One deterministic churn workload (graph + replayable bursts)."""
    return build_workload(
        WorkloadSpec(
            users=SIZE,
            seed=SEED,
            churn_bursts=bursts,
            churn_burst_size=burst_size,
            churn_attribute_fraction=0.25,
        )
    )


def _force_current(graph) -> float:
    """Bring the snapshot fully up to date; return the elapsed seconds.

    ``compile_graph`` alone absorbs attribute deltas and queues edge deltas;
    touching every label's adjacency forces the side-table compactions a
    query burst would trigger, so the delta path is charged its full
    (amortized) cost and the comparison against the rebuild stays honest.
    """
    started = time.perf_counter()
    snapshot = compile_graph(graph)
    for label_id in range(len(snapshot.labels)):
        snapshot.forward(label_id)
        snapshot.backward(label_id)
    return time.perf_counter() - started


def _sample_pairs(graph, count: int, stride: int = 17):
    users = sorted(graph.users(), key=str)
    return [
        (users[(i * stride) % len(users)], users[(i * stride * 3 + 1) % len(users)])
        for i in range(count)
    ]


def refresh_experiment() -> dict:
    burst_size = None
    rows = []
    snapshots = {}
    for mode in ("delta", "rebuild"):
        workload = _churn_workload(REFRESH_BURSTS, burst_size or 1)
        graph = workload.graph
        if burst_size is None:
            # ~1% of |E| per burst; regenerate with the real burst size.
            burst_size = max(10, graph.number_of_relationships() // 100)
            workload = _churn_workload(REFRESH_BURSTS, burst_size)
            graph = workload.graph
        if mode == "rebuild":
            graph.journal_limit = 0
        engine = ReachabilityEngine(graph, "bfs", cache_size=0)
        source, target = _sample_pairs(graph, 1)[0]
        _force_current(graph)  # warm: both modes start from a current snapshot
        engine.is_reachable(source, target, QUERY_EXPRESSION)
        refresh_seconds = []
        settle_seconds = []
        for burst in workload.churn:
            for op in burst:
                apply_churn_op(graph, op)
            started = time.perf_counter()
            engine.is_reachable(source, target, QUERY_EXPRESSION)
            refresh_seconds.append(time.perf_counter() - started)
            settle_seconds.append(_force_current(graph))
        snapshot = compile_graph(graph)
        rows.append(
            {
                "mode": mode,
                "bursts": len(workload.churn),
                "burst_size": burst_size,
                "mean_refresh_seconds": sum(refresh_seconds) / len(refresh_seconds),
                "total_refresh_seconds": sum(refresh_seconds),
                "mean_settle_seconds": sum(settle_seconds) / len(settle_seconds),
                "delta_events": dict(snapshot.delta_events),
            }
        )
        snapshots[mode] = (graph, snapshot)

    # Equivalence: both modes replayed identical bursts, so their graphs are
    # equal and their snapshots must answer identically.
    delta_graph, _ = snapshots["delta"]
    rebuild_graph, _ = snapshots["rebuild"]
    assert delta_graph == rebuild_graph
    delta_engine = ReachabilityEngine(delta_graph, "bfs", cache_size=0)
    rebuild_engine = ReachabilityEngine(rebuild_graph, "bfs", cache_size=0)
    for text in EQUIVALENCE_EXPRESSIONS:
        for source, target in _sample_pairs(delta_graph, 20):
            assert delta_engine.is_reachable(source, target, text) == (
                rebuild_engine.is_reachable(source, target, text)
            ), (text, source, target)

    delta_row = next(row for row in rows if row["mode"] == "delta")
    rebuild_row = next(row for row in rows if row["mode"] == "rebuild")
    return {
        "rows": rows,
        "burst_size": burst_size,
        "users": delta_graph.number_of_users(),
        "relationships": delta_graph.number_of_relationships(),
        "speedup": (
            rebuild_row["mean_refresh_seconds"] / delta_row["mean_refresh_seconds"]
        ),
    }


def throughput_experiment() -> dict:
    rows = []
    for ratio in RATIOS:
        cycles = max(2, min(60, 2000 // ratio))
        for mode in ("delta", "rebuild"):
            workload = _churn_workload(1, cycles)
            graph = workload.graph
            if mode == "rebuild":
                graph.journal_limit = 0
            engine = ReachabilityEngine(graph, "bfs")
            pairs = _sample_pairs(graph, max(ratio, 8))
            _force_current(graph)
            writes = reads = 0
            started = time.perf_counter()
            for op in workload.churn[0]:
                apply_churn_op(graph, op)
                writes += 1
                for position in range(ratio):
                    source, target = pairs[position % len(pairs)]
                    engine.is_reachable(source, target, QUERY_EXPRESSION)
                    reads += 1
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "ratio": ratio,
                    "mode": mode,
                    "writes": writes,
                    "reads": reads,
                    "seconds": elapsed,
                    "ops_per_second": (writes + reads) / elapsed,
                }
            )
    # Pair up the modes per ratio for the speedup column.
    by_ratio = {}
    for row in rows:
        by_ratio.setdefault(row["ratio"], {})[row["mode"]] = row
    for ratio, modes in by_ratio.items():
        modes["delta"]["speedup"] = (
            modes["delta"]["ops_per_second"] / modes["rebuild"]["ops_per_second"]
        )
    return {"rows": rows}


def run_benchmark() -> dict:
    refresh = refresh_experiment()
    throughput = throughput_experiment()
    return {
        "experiment": "PERF-9 incremental snapshot maintenance under churn",
        "smoke": SMOKE,
        "users": refresh["users"],
        "relationships": refresh["relationships"],
        "burst_size": refresh["burst_size"],
        "speedup_target": SPEEDUP_TARGET,
        "refresh": refresh,
        "throughput": throughput,
    }


def _format_table(summary: dict) -> str:
    refresh = summary["refresh"]
    lines = [
        "PERF-9 — incremental snapshot maintenance under churn",
        f"graph: {summary['users']} users, {summary['relationships']} relationships"
        + (" (SMOKE)" if summary["smoke"] else ""),
        f"churn burst: {summary['burst_size']} mutations (~1% of |E|), "
        f"{refresh['rows'][0]['bursts']} bursts",
        "",
        "snapshot refresh after one burst (first query; settle = remaining labels):",
        f"{'mode':<10} {'first-query s':>14} {'settle s':>10} {'total s':>10}",
        "-" * 50,
    ]
    for row in refresh["rows"]:
        lines.append(
            f"{row['mode']:<10} {row['mean_refresh_seconds']:>14.4f} "
            f"{row['mean_settle_seconds']:>10.4f} {row['total_refresh_seconds']:>10.3f}"
        )
    lines += [
        f"delta-apply speedup: {refresh['speedup']:.1f}x "
        f"(target >= {summary['speedup_target']:.0f}x)",
        "",
        "interleaved write/query throughput (1 write, then <ratio> reads):",
        f"{'reads:writes':>12} {'mode':<10} {'ops/s':>10} {'speedup':>8}",
        "-" * 46,
    ]
    for row in summary["throughput"]["rows"]:
        speedup = f"{row['speedup']:.1f}x" if "speedup" in row else ""
        lines.append(
            f"{row['ratio']:>10}:1 {row['mode']:<10} "
            f"{row['ops_per_second']:>10.0f} {speedup:>8}"
        )
    return "\n".join(lines)


def _meets_target(summary: dict) -> bool:
    return summary["refresh"]["speedup"] >= SPEEDUP_TARGET


def test_delta_apply_beats_the_full_rebuild():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # equivalence already asserted; ratios are noise at smoke size
    assert _meets_target(summary), summary["refresh"]


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_churn_incremental.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf9_churn_incremental.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_target(summary)) else 1)
