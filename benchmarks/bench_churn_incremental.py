"""PERF-9 — incremental snapshot maintenance under churn vs full rebuild.

Every ``SocialGraph`` mutation bumps the epoch and stales the compiled CSR
snapshot.  Before delta maintenance the next query paid one O(|V| + |E|)
rebuild per mutation burst — rebuild-dominated as soon as writes interleave
with reads.  With the mutation journal, ``compile_graph`` hands the burst to
``CompiledGraph.apply_deltas``: attribute writes are free, edge writes queue
into per-label overflow side-tables folded in at the next adjacency read.

Four experiments on the 5000-user scalability graph (300 users in
``BENCH_SMOKE=1`` mode, the CI smoke job):

1. **Snapshot refresh cost** — apply one churn burst of ~1% of |E|
   (remove/add pairs plus attribute rewrites), then time the
   *time-to-first-query*: one ``is_reachable`` through a cache-disabled
   engine, which is exactly the moment the refresh bill lands (the full
   rebuild, or the delta absorption plus compacting the one label the
   query touches).  The residual cost of settling every remaining label —
   what later queries amortize — is reported in its own column.
   Delta-apply (journal on) vs full rebuild (``journal_limit = 0``); the
   acceptance row: delta-apply beats the rebuild by >= 5x at full size.
   Both modes must produce snapshots that answer identically.
2. **Interleaved write/query throughput** — one churn write followed by
   ``ratio`` reads (``is_reachable`` through a ``ReachabilityEngine``), for
   read/write ratios 1:1 to 1000:1, in both modes.
3. **Remove-heavy churn** (PR 7) — same refresh measurement, but >= 10% of
   the burst is ``remove_user`` (``churn_remove_user_fraction``): the
   regime that used to abandon every patch.  Tombstoned slots keep the
   delta path in O(|burst|); the acceptance row mirrors experiment 1's
   >= 5x at full size.  The arm also verifies ``SnapshotStore.checkpoint``
   emits a *delta segment* (not a rebase) for the removal-bearing journal.
4. **Index-backed refresh** (PR 7) — ``ClusterIndexEvaluator.refresh()``
   on a sparse forward-only graph (the regime where line-graph components
   stay small; oriented indexes tend to one giant SCC and fall back):
   bounded re-condensation of only the dirty components vs a cold
   ``build()`` per burst, timed to first ``find_targets`` answer.

Artifacts: ``benchmarks/results/BENCH_churn_incremental.json`` and
``perf9_churn_incremental.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_churn_incremental.py``.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from collections import Counter
from pathlib import Path

from repro.graph.compiled import compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.engine import ReachabilityEngine
from repro.workloads.generator import WorkloadSpec, apply_churn_op, build_workload

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 300 if SMOKE else 5000
REFRESH_BURSTS = 3 if SMOKE else 8
RATIOS = (1, 10) if SMOKE else (1, 10, 100, 1000)
INDEX_ROUNDS = 3 if SMOKE else 8
SEED = 43

#: Full-size acceptance floor: delta-apply vs full rebuild on the refresh
#: (both the edge-churn and the remove-heavy arm).
SPEEDUP_TARGET = 5.0

#: Floor on the remove-heavy arm's realized ``remove_user`` share.
REMOVE_USER_SHARE_FLOOR = 0.10

QUERY_EXPRESSION = "friend+[1,2]"
EQUIVALENCE_EXPRESSIONS = ("friend+[1,2]", "friend*[1,2]", "colleague+[1]")


def _churn_workload(bursts: int, burst_size: int):
    """One deterministic churn workload (graph + replayable bursts)."""
    return build_workload(
        WorkloadSpec(
            users=SIZE,
            seed=SEED,
            churn_bursts=bursts,
            churn_burst_size=burst_size,
            churn_attribute_fraction=0.25,
        )
    )


def _force_current(graph) -> float:
    """Bring the snapshot fully up to date; return the elapsed seconds.

    ``compile_graph`` alone absorbs attribute deltas and queues edge deltas;
    touching every label's adjacency forces the side-table compactions a
    query burst would trigger, so the delta path is charged its full
    (amortized) cost and the comparison against the rebuild stays honest.
    """
    started = time.perf_counter()
    snapshot = compile_graph(graph)
    for label_id in range(len(snapshot.labels)):
        snapshot.forward(label_id)
        snapshot.backward(label_id)
    return time.perf_counter() - started


def _sample_pairs(graph, count: int, stride: int = 17):
    users = sorted(graph.users(), key=str)
    return [
        (users[(i * stride) % len(users)], users[(i * stride * 3 + 1) % len(users)])
        for i in range(count)
    ]


def refresh_experiment() -> dict:
    burst_size = None
    rows = []
    snapshots = {}
    for mode in ("delta", "rebuild"):
        workload = _churn_workload(REFRESH_BURSTS, burst_size or 1)
        graph = workload.graph
        if burst_size is None:
            # ~1% of |E| per burst; regenerate with the real burst size.
            burst_size = max(10, graph.number_of_relationships() // 100)
            workload = _churn_workload(REFRESH_BURSTS, burst_size)
            graph = workload.graph
        if mode == "rebuild":
            graph.journal_limit = 0
        engine = ReachabilityEngine(graph, "bfs", cache_size=0)
        source, target = _sample_pairs(graph, 1)[0]
        _force_current(graph)  # warm: both modes start from a current snapshot
        engine.is_reachable(source, target, QUERY_EXPRESSION)
        refresh_seconds = []
        settle_seconds = []
        for burst in workload.churn:
            for op in burst:
                apply_churn_op(graph, op)
            started = time.perf_counter()
            engine.is_reachable(source, target, QUERY_EXPRESSION)
            refresh_seconds.append(time.perf_counter() - started)
            settle_seconds.append(_force_current(graph))
        snapshot = compile_graph(graph)
        rows.append(
            {
                "mode": mode,
                "bursts": len(workload.churn),
                "burst_size": burst_size,
                "mean_refresh_seconds": sum(refresh_seconds) / len(refresh_seconds),
                "total_refresh_seconds": sum(refresh_seconds),
                "mean_settle_seconds": sum(settle_seconds) / len(settle_seconds),
                "delta_events": dict(snapshot.delta_events),
            }
        )
        snapshots[mode] = (graph, snapshot)

    # Equivalence: both modes replayed identical bursts, so their graphs are
    # equal and their snapshots must answer identically.
    delta_graph, _ = snapshots["delta"]
    rebuild_graph, _ = snapshots["rebuild"]
    assert delta_graph == rebuild_graph
    delta_engine = ReachabilityEngine(delta_graph, "bfs", cache_size=0)
    rebuild_engine = ReachabilityEngine(rebuild_graph, "bfs", cache_size=0)
    for text in EQUIVALENCE_EXPRESSIONS:
        for source, target in _sample_pairs(delta_graph, 20):
            assert delta_engine.is_reachable(source, target, text) == (
                rebuild_engine.is_reachable(source, target, text)
            ), (text, source, target)

    delta_row = next(row for row in rows if row["mode"] == "delta")
    rebuild_row = next(row for row in rows if row["mode"] == "rebuild")
    return {
        "rows": rows,
        "burst_size": burst_size,
        "users": delta_graph.number_of_users(),
        "relationships": delta_graph.number_of_relationships(),
        "speedup": (
            rebuild_row["mean_refresh_seconds"] / delta_row["mean_refresh_seconds"]
        ),
    }


def _remove_heavy_workload(bursts: int, burst_size: int):
    """A churn workload where user removals are a first-class op."""
    return build_workload(
        WorkloadSpec(
            users=SIZE,
            seed=SEED + 1,
            churn_bursts=bursts,
            churn_burst_size=burst_size,
            churn_attribute_fraction=0.2,
            # Per-slot probability; user churn alternates remove/add, so the
            # realized remove_user share lands around (1 - 0.2) * 0.5 / 2 =
            # 20% of ops — comfortably over the 10% floor even at smoke
            # burst sizes.
            churn_remove_user_fraction=0.5,
        )
    )


def _checkpoint_action(burst_size: int) -> dict:
    """Checkpoint a removal-bearing journal; report which arm the store took.

    Before tombstones, ``remove_user`` ops were not persistable and any
    removal-bearing journal forced a full rebase.  Now they replay as
    tombstones, so a journal-covered burst must come back ``"delta"``.
    """
    workload = _remove_heavy_workload(1, burst_size)
    graph = workload.graph
    burst = workload.churn[0]
    with tempfile.TemporaryDirectory() as tmp:
        store = SnapshotStore(Path(tmp) / "perf9.snap")
        store.save(compile_graph(graph))
        for op in burst:
            apply_churn_op(graph, op)
        action = store.checkpoint(graph)
    return {
        "action": action,
        "removal_bearing": any(op[0] == "remove_user" for op in burst),
    }


def remove_heavy_experiment() -> dict:
    """Experiment 3: the refresh measurement under remove-heavy churn.

    Same protocol as :func:`refresh_experiment`, but >= 10% of each burst
    removes users outright (tombstoning their slots on the delta path) —
    the workload that used to abandon every patch and rebuild.  The query
    pair is re-sampled per burst because its endpoints can be removed.
    """
    burst_size = None
    rows = []
    graphs = {}
    op_counts: Counter = Counter()
    for mode in ("delta", "rebuild"):
        workload = _remove_heavy_workload(REFRESH_BURSTS, burst_size or 1)
        graph = workload.graph
        if burst_size is None:
            # ~1% of |E| per burst; regenerate with the real burst size.
            burst_size = max(10, graph.number_of_relationships() // 100)
            workload = _remove_heavy_workload(REFRESH_BURSTS, burst_size)
            graph = workload.graph
        if mode == "rebuild":
            graph.journal_limit = 0
        engine = ReachabilityEngine(graph, "bfs", cache_size=0)
        _force_current(graph)
        source, target = _sample_pairs(graph, 1)[0]
        engine.is_reachable(source, target, QUERY_EXPRESSION)
        refresh_seconds = []
        settle_seconds = []
        for burst in workload.churn:
            if mode == "delta":
                op_counts.update(op[0] for op in burst)
            for op in burst:
                apply_churn_op(graph, op)
            source, target = _sample_pairs(graph, 1)[0]
            started = time.perf_counter()
            engine.is_reachable(source, target, QUERY_EXPRESSION)
            refresh_seconds.append(time.perf_counter() - started)
            settle_seconds.append(_force_current(graph))
        snapshot = compile_graph(graph)
        rows.append(
            {
                "mode": mode,
                "bursts": len(workload.churn),
                "burst_size": burst_size,
                "mean_refresh_seconds": sum(refresh_seconds) / len(refresh_seconds),
                "total_refresh_seconds": sum(refresh_seconds),
                "mean_settle_seconds": sum(settle_seconds) / len(settle_seconds),
                "delta_events": dict(snapshot.delta_events),
            }
        )
        graphs[mode] = graph

    # Equivalence: identical bursts replayed, tombstoned state must answer
    # exactly like the rebuilt one.
    delta_graph = graphs["delta"]
    rebuild_graph = graphs["rebuild"]
    assert delta_graph == rebuild_graph
    delta_engine = ReachabilityEngine(delta_graph, "bfs", cache_size=0)
    rebuild_engine = ReachabilityEngine(rebuild_graph, "bfs", cache_size=0)
    for text in EQUIVALENCE_EXPRESSIONS:
        for source, target in _sample_pairs(delta_graph, 20):
            assert delta_engine.is_reachable(source, target, text) == (
                rebuild_engine.is_reachable(source, target, text)
            ), (text, source, target)

    total_ops = sum(op_counts.values())
    remove_user_share = op_counts.get("remove_user", 0) / max(1, total_ops)
    assert remove_user_share >= REMOVE_USER_SHARE_FLOOR, op_counts
    checkpoint = _checkpoint_action(burst_size)
    assert checkpoint["action"] == "delta", checkpoint

    delta_row = next(row for row in rows if row["mode"] == "delta")
    rebuild_row = next(row for row in rows if row["mode"] == "rebuild")
    assert delta_row["delta_events"].get("tombstones", 0) > 0, delta_row
    return {
        "rows": rows,
        "burst_size": burst_size,
        "op_counts": dict(op_counts),
        "remove_user_share": remove_user_share,
        "checkpoint": checkpoint,
        "speedup": (
            rebuild_row["mean_refresh_seconds"] / delta_row["mean_refresh_seconds"]
        ),
    }


def _sparse_graph(user_count: int, seed: int) -> SocialGraph:
    """A sparse community-structured forward-only friend-heavy graph.

    Sparse so the line graph condenses into many small components — the
    regime where the bounded re-condensation genuinely engages (dense or
    oriented ``include_reverse=True`` graphs collapse into one giant line
    SCC and the touched-fraction fallback correctly rebuilds instead) —
    and community-structured (edges stay within ~25-user neighbourhoods,
    the shape of real social graphs) so the line DAG's ancestor chains
    stay short and both arms run at interactive cost.  Note the honest
    finding this arm documents: the greedy 2-hop cover is recomputed in
    full on *both* paths and dominates them, so the wall-clock speedup
    hovers around 1x — the refresh's savings (skipped re-Tarjan and line
    construction) are real but cover-bound.  The arm's assertions are
    therefore engagement (the bounded path actually runs, every round)
    and equivalence (it answers exactly like a cold rebuild), not a
    speedup floor; bounded cover maintenance is the open item that would
    move the needle.
    """
    rng = random.Random(seed)
    graph = SocialGraph(name="perf9-sparse")
    users = [f"u{i}" for i in range(user_count)]
    for user in users:
        graph.add_user(user)
    labels = ("friend", "friend", "friend", "colleague", "parent")
    community = 25
    target = int(user_count * 1.3)
    edges = set()
    attempts = 0
    while len(edges) < target and attempts < target * 50:
        attempts += 1
        base = rng.randrange(user_count)
        other = (base // community) * community + rng.randrange(community)
        if other >= user_count or other == base:
            continue
        edge = (users[base], users[other], rng.choice(labels))
        if edge not in edges:
            edges.add(edge)
            graph.add_relationship(*edge)
    return graph


def _index_burst(graph: SocialGraph, rng: random.Random, size: int, tag: int):
    """One valid mixed burst (edge churn + some user churn) for the graph."""
    ops = []
    edges = [(rel.source, rel.target, rel.label) for rel in graph.relationships()]
    edge_set = set(edges)
    pool = sorted(graph.users(), key=str)
    serial = 0
    remove_next = True
    while len(ops) < size:
        if rng.random() < 0.12 and len(pool) > 2:
            user = pool.pop(rng.randrange(len(pool)))
            edges = [e for e in edges if user not in (e[0], e[1])]
            edge_set = set(edges)
            ops.append(("remove_user", user))
            name = f"nu{tag}-{serial}"
            serial += 1
            pool.append(name)
            ops.append(("add_user", name))
            continue
        if remove_next and edges:
            position = rng.randrange(len(edges))
            edge = edges[position]
            edges[position] = edges[-1]
            edges.pop()
            edge_set.discard(edge)
            ops.append(("remove_edge",) + edge)
            remove_next = False
            continue
        for _attempt in range(32):
            candidate = (rng.choice(pool), rng.choice(pool), "friend")
            if candidate[0] != candidate[1] and candidate not in edge_set:
                edge_set.add(candidate)
                edges.append(candidate)
                ops.append(("add_edge",) + candidate)
                break
        remove_next = True
    return ops


def index_refresh_experiment() -> dict:
    """Experiment 4: bounded cluster-index refresh vs cold rebuild per burst.

    Both arms replay identical bursts (same seed against identical graph
    replicas); the incremental arm keeps the journal on so
    ``ClusterIndexEvaluator.refresh()`` can hand the burst to
    ``InternedLineIndex.refresh_from_ops``, the rebuild arm disables it
    (``journal_limit = 0``) so every refresh is a cold ``build()``.  Timed
    to first ``find_targets`` answer after each burst.
    """
    expression = PathExpression.parse(QUERY_EXPRESSION)
    rows = []
    arms = {}
    for mode in ("incremental", "rebuild"):
        graph = _sparse_graph(SIZE, SEED + 2)
        burst_size = max(8, graph.number_of_relationships() // 100)
        if mode == "rebuild":
            graph.journal_limit = 0
        evaluator = ClusterIndexEvaluator(graph, include_reverse=False).build()
        rng = random.Random(SEED + 3)
        refresh_seconds = []
        modes_taken: Counter = Counter()
        for round_index in range(INDEX_ROUNDS):
            for op in _index_burst(graph, rng, burst_size, round_index):
                apply_churn_op(graph, op)
            owner = sorted(graph.users(), key=str)[
                (round_index * 17) % graph.number_of_users()
            ]
            started = time.perf_counter()
            evaluator.refresh()
            evaluator.find_targets(owner, expression)
            refresh_seconds.append(time.perf_counter() - started)
            modes_taken[evaluator.last_refresh_mode] += 1
        rows.append(
            {
                "mode": mode,
                "rounds": INDEX_ROUNDS,
                "burst_size": burst_size,
                "mean_refresh_seconds": sum(refresh_seconds) / len(refresh_seconds),
                "total_refresh_seconds": sum(refresh_seconds),
                "modes_taken": dict(modes_taken),
            }
        )
        arms[mode] = (graph, evaluator)

    # Equivalence: same bursts, so the incrementally maintained index must
    # answer exactly like the one rebuilt from scratch every round.
    inc_graph, inc_evaluator = arms["incremental"]
    rebuild_graph, rebuild_evaluator = arms["rebuild"]
    assert inc_graph == rebuild_graph
    for owner in sorted(inc_graph.users(), key=str)[::7][:24]:
        assert inc_evaluator.find_targets(owner, expression) == (
            rebuild_evaluator.find_targets(owner, expression)
        ), owner

    inc_row = next(row for row in rows if row["mode"] == "incremental")
    rebuild_row = next(row for row in rows if row["mode"] == "rebuild")
    # The whole point of the arm: the bounded path must actually engage.
    assert inc_row["modes_taken"].get("incremental", 0) > 0, inc_row
    return {
        "rows": rows,
        "users": inc_graph.number_of_users(),
        "relationships": inc_graph.number_of_relationships(),
        "incremental_rounds": inc_row["modes_taken"].get("incremental", 0),
        "speedup": (
            rebuild_row["mean_refresh_seconds"] / inc_row["mean_refresh_seconds"]
        ),
    }


def throughput_experiment() -> dict:
    rows = []
    for ratio in RATIOS:
        cycles = max(2, min(60, 2000 // ratio))
        for mode in ("delta", "rebuild"):
            workload = _churn_workload(1, cycles)
            graph = workload.graph
            if mode == "rebuild":
                graph.journal_limit = 0
            engine = ReachabilityEngine(graph, "bfs")
            pairs = _sample_pairs(graph, max(ratio, 8))
            _force_current(graph)
            writes = reads = 0
            started = time.perf_counter()
            for op in workload.churn[0]:
                apply_churn_op(graph, op)
                writes += 1
                for position in range(ratio):
                    source, target = pairs[position % len(pairs)]
                    engine.is_reachable(source, target, QUERY_EXPRESSION)
                    reads += 1
            elapsed = time.perf_counter() - started
            rows.append(
                {
                    "ratio": ratio,
                    "mode": mode,
                    "writes": writes,
                    "reads": reads,
                    "seconds": elapsed,
                    "ops_per_second": (writes + reads) / elapsed,
                }
            )
    # Pair up the modes per ratio for the speedup column.
    by_ratio = {}
    for row in rows:
        by_ratio.setdefault(row["ratio"], {})[row["mode"]] = row
    for ratio, modes in by_ratio.items():
        modes["delta"]["speedup"] = (
            modes["delta"]["ops_per_second"] / modes["rebuild"]["ops_per_second"]
        )
    return {"rows": rows}


def run_benchmark() -> dict:
    refresh = refresh_experiment()
    throughput = throughput_experiment()
    remove_heavy = remove_heavy_experiment()
    index_refresh = index_refresh_experiment()
    return {
        "experiment": "PERF-9 incremental snapshot maintenance under churn",
        "smoke": SMOKE,
        "users": refresh["users"],
        "relationships": refresh["relationships"],
        "burst_size": refresh["burst_size"],
        "speedup_target": SPEEDUP_TARGET,
        "refresh": refresh,
        "throughput": throughput,
        "remove_heavy": remove_heavy,
        "index_refresh": index_refresh,
    }


def _format_table(summary: dict) -> str:
    refresh = summary["refresh"]
    lines = [
        "PERF-9 — incremental snapshot maintenance under churn",
        f"graph: {summary['users']} users, {summary['relationships']} relationships"
        + (" (SMOKE)" if summary["smoke"] else ""),
        f"churn burst: {summary['burst_size']} mutations (~1% of |E|), "
        f"{refresh['rows'][0]['bursts']} bursts",
        "",
        "snapshot refresh after one burst (first query; settle = remaining labels):",
        f"{'mode':<10} {'first-query s':>14} {'settle s':>10} {'total s':>10}",
        "-" * 50,
    ]
    for row in refresh["rows"]:
        lines.append(
            f"{row['mode']:<10} {row['mean_refresh_seconds']:>14.4f} "
            f"{row['mean_settle_seconds']:>10.4f} {row['total_refresh_seconds']:>10.3f}"
        )
    lines += [
        f"delta-apply speedup: {refresh['speedup']:.1f}x "
        f"(target >= {summary['speedup_target']:.0f}x)",
        "",
        "interleaved write/query throughput (1 write, then <ratio> reads):",
        f"{'reads:writes':>12} {'mode':<10} {'ops/s':>10} {'speedup':>8}",
        "-" * 46,
    ]
    for row in summary["throughput"]["rows"]:
        speedup = f"{row['speedup']:.1f}x" if "speedup" in row else ""
        lines.append(
            f"{row['ratio']:>10}:1 {row['mode']:<10} "
            f"{row['ops_per_second']:>10.0f} {speedup:>8}"
        )
    remove_heavy = summary["remove_heavy"]
    lines += [
        "",
        "remove-heavy refresh (tombstoned slots; "
        f"{remove_heavy['remove_user_share']:.0%} of ops are remove_user):",
        f"{'mode':<10} {'first-query s':>14} {'settle s':>10} {'total s':>10}",
        "-" * 50,
    ]
    for row in remove_heavy["rows"]:
        lines.append(
            f"{row['mode']:<10} {row['mean_refresh_seconds']:>14.4f} "
            f"{row['mean_settle_seconds']:>10.4f} {row['total_refresh_seconds']:>10.3f}"
        )
    lines += [
        f"remove-heavy delta speedup: {remove_heavy['speedup']:.1f}x "
        f"(target >= {summary['speedup_target']:.0f}x); "
        f"checkpoint action: {remove_heavy['checkpoint']['action']}",
        "",
    ]
    index_refresh = summary["index_refresh"]
    lines += [
        "cluster-index refresh-to-first-query (sparse forward-only graph, "
        f"{index_refresh['users']} users / "
        f"{index_refresh['relationships']} edges):",
        f"{'mode':<12} {'first-query s':>14} {'total s':>10} {'modes taken'}",
        "-" * 60,
    ]
    for row in index_refresh["rows"]:
        lines.append(
            f"{row['mode']:<12} {row['mean_refresh_seconds']:>14.4f} "
            f"{row['total_refresh_seconds']:>10.3f} {row['modes_taken']}"
        )
    lines.append(
        f"index refresh speedup: {index_refresh['speedup']:.1f}x "
        f"({index_refresh['incremental_rounds']}/"
        f"{index_refresh['rows'][0]['rounds']} rounds incremental)"
    )
    return "\n".join(lines)


def _meets_target(summary: dict) -> bool:
    return (
        summary["refresh"]["speedup"] >= SPEEDUP_TARGET
        and summary["remove_heavy"]["speedup"] >= SPEEDUP_TARGET
    )


def test_delta_apply_beats_the_full_rebuild():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # equivalence already asserted; ratios are noise at smoke size
    assert _meets_target(summary), summary["refresh"]


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_churn_incremental.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf9_churn_incremental.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_target(summary)) else 1)
