"""PERF-6 — interned cluster-index stack and batched audience materialization.

Two baselines fall in this experiment:

* **string-id cluster index** — the seed pipeline built the 2-hop labeling
  from ``LineGraph.adjacency()`` (a dict of string-id sets) and matched line
  queries by chaining string vertex ids through per-vertex successor-set
  copies.  The interned stack (:mod:`repro.reachability.interned`) runs the
  same condensation + cover + matching on ``array('l')`` CSR structures
  derived from the compiled snapshot, decoding strings only for witnesses.
* **per-owner audience loop** — ``find_targets`` once per owner recompiles
  nothing (the automaton cache already helps) but pays per-call set churn;
  ``ReachabilityEngine.find_targets_many`` sweeps all owners over hoisted
  per-state CSR selections and bytearray seen-sets.

The experiment measures, on the 5000-user scalability graph (300 users in
``BENCH_SMOKE=1`` mode, the CI smoke job):

1. index build — interned vs string-id 2-hop construction (forward-only,
   the paper's setting);
2. cluster-index queries — ``evaluate`` mix + hub ``find_targets`` with
   ``interned=True`` vs ``interned=False`` (results must be identical);
3. audience materialization — per-owner loop vs batched sweep over the BFS
   backend (results must be identical).

Artifacts: ``benchmarks/results/BENCH_cluster_interned.json`` and
``perf6_cluster_interned.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_cluster_interned.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.compiled import compile_graph
from repro.graph.generators import preferential_attachment_graph
from repro.policy.path_expression import PathExpression
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.engine import ReachabilityEngine
from repro.reachability.interned import InternedLineIndex
from repro.reachability.linegraph import LineGraph
from repro.reachability.twohop import TwoHopIndex

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 300 if SMOKE else 5000
EVALUATE_PAIRS = 10 if SMOKE else 40
HUB_OWNERS = 10 if SMOKE else 40
AUDIENCE_OWNERS = 50 if SMOKE else 300

QUERY_EXPRESSIONS = (
    "friend+[1]",
    "friend+[1,2]",
    "friend+[2]/colleague+[1]",
    "friend+[1,2]/friend+[1]",
    "colleague+[1]/friend+[1,2]",
)
HUB_EXPRESSIONS = (
    "friend+[1,3]",
    "friend+[1,2]/friend+[1,2]",
    "friend+[2,3]/colleague+[1]",
)
AUDIENCE_EXPRESSIONS = ("friend+[1,3]", "friend*[1,2]")

# Full-size acceptance floors; smoke mode only checks agreement (tiny graphs
# make wall-clock ratios noise).
BUILD_TARGET = 1.2
QUERY_TARGET = 1.5
AUDIENCE_TARGET = 1.1


def _graph():
    return preferential_attachment_graph(SIZE, edges_per_node=3, seed=71)


def bench_build(graph) -> dict:
    """Interned vs string-id 2-hop construction (forward-only line graph)."""
    snapshot = compile_graph(graph)  # shared precondition for both paths
    started = time.perf_counter()
    interned = InternedLineIndex(snapshot, include_reverse=False)
    interned_seconds = time.perf_counter() - started

    started = time.perf_counter()
    line_graph = LineGraph(graph, include_reverse=False)
    two_hop = TwoHopIndex(line_graph.adjacency())
    string_seconds = time.perf_counter() - started

    assert interned.labeling_size() > 0 and two_hop.labeling_size() > 0
    return {
        "line_vertices": interned.count,
        "line_edges": interned.number_of_line_edges(),
        "components": interned.comp_count,
        "interned_seconds": interned_seconds,
        "string_seconds": string_seconds,
        "speedup": string_seconds / interned_seconds,
    }


def bench_queries(graph) -> dict:
    """The same cluster-index workload through the interned and string matchers."""
    users = sorted(graph.users(), key=str)
    hubs = sorted(users, key=lambda user: -graph.out_degree(user))[:HUB_OWNERS]
    pairs = [
        (users[(i * 37) % len(users)], users[(i * 91 + 13) % len(users)])
        for i in range(EVALUATE_PAIRS)
    ]
    evaluate_expressions = [PathExpression.parse(text) for text in QUERY_EXPRESSIONS]
    hub_expressions = [PathExpression.parse(text) for text in HUB_EXPRESSIONS]

    runs = {}
    for interned in (True, False):
        evaluator = ClusterIndexEvaluator(
            graph, include_reverse=False, interned=interned
        ).build()
        started = time.perf_counter()
        decisions = []
        for expression in evaluate_expressions:
            for source, target in pairs:
                decisions.append(
                    evaluator.evaluate(source, target, expression,
                                       collect_witness=False).reachable
                )
        evaluate_seconds = time.perf_counter() - started
        started = time.perf_counter()
        audiences = []
        for source in hubs:
            for expression in hub_expressions:
                audiences.append(frozenset(evaluator.find_targets(source, expression)))
        find_targets_seconds = time.perf_counter() - started
        runs["interned" if interned else "strings"] = {
            "evaluate_seconds": evaluate_seconds,
            "find_targets_seconds": find_targets_seconds,
            "total_seconds": evaluate_seconds + find_targets_seconds,
            "decisions": decisions,
            "audiences": audiences,
        }
    # The two matchers must agree on every decision and audience.
    assert runs["interned"]["decisions"] == runs["strings"]["decisions"]
    assert runs["interned"]["audiences"] == runs["strings"]["audiences"]
    return {
        "evaluate_queries": len(runs["interned"]["decisions"]),
        "audience_queries": len(runs["interned"]["audiences"]),
        "interned": {k: v for k, v in runs["interned"].items()
                     if k not in ("decisions", "audiences")},
        "strings": {k: v for k, v in runs["strings"].items()
                    if k not in ("decisions", "audiences")},
        "speedup": runs["strings"]["total_seconds"] / runs["interned"]["total_seconds"],
    }


def bench_batched_audiences(graph) -> dict:
    """Per-owner ``find_targets`` loop vs the batched ``find_targets_many`` sweep."""
    engine = ReachabilityEngine(graph, "bfs", cache_size=0)
    owners = sorted(graph.users(), key=str)[:AUDIENCE_OWNERS]
    loop_seconds = 0.0
    batched_seconds = 0.0
    for text in AUDIENCE_EXPRESSIONS:
        started = time.perf_counter()
        looped = {owner: engine.find_targets(owner, text) for owner in owners}
        loop_seconds += time.perf_counter() - started
        started = time.perf_counter()
        batched = engine.find_targets_many(owners, text)
        batched_seconds += time.perf_counter() - started
        assert looped == batched
    return {
        "owners": len(owners),
        "expressions": list(AUDIENCE_EXPRESSIONS),
        "loop_seconds": loop_seconds,
        "batched_seconds": batched_seconds,
        "speedup": loop_seconds / batched_seconds,
    }


def _format_table(summary: dict) -> str:
    build = summary["build"]
    queries = summary["queries"]
    audiences = summary["audiences"]
    lines = [
        "PERF-6 — interned cluster index + batched audience materialization",
        f"graph: {summary['users']} users, {summary['relationships']} relationships"
        + (" (SMOKE)" if summary["smoke"] else ""),
        "",
        f"{'stage':<28} {'string/loop s':>14} {'interned s':>11} {'speedup':>8}",
        "-" * 64,
        f"{'index build (2-hop)':<28} {build['string_seconds']:>14.3f} "
        f"{build['interned_seconds']:>11.3f} {build['speedup']:>7.1f}x",
        f"{'cluster queries':<28} {queries['strings']['total_seconds']:>14.3f} "
        f"{queries['interned']['total_seconds']:>11.3f} {queries['speedup']:>7.1f}x",
        f"{'audience materialization':<28} {audiences['loop_seconds']:>14.3f} "
        f"{audiences['batched_seconds']:>11.3f} {audiences['speedup']:>7.1f}x",
    ]
    return "\n".join(lines)


def run_benchmark() -> dict:
    graph = _graph()
    summary = {
        "experiment": "PERF-6 interned cluster index + batched audiences",
        "smoke": SMOKE,
        "users": graph.number_of_users(),
        "relationships": graph.number_of_relationships(),
        "targets": {
            "build": BUILD_TARGET,
            "queries": QUERY_TARGET,
            "audiences": AUDIENCE_TARGET,
        },
        "build": bench_build(graph),
        "queries": bench_queries(graph),
        "audiences": bench_batched_audiences(graph),
    }
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_cluster_interned.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf6_cluster_interned.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    return summary


def test_interned_cluster_stack_beats_the_string_baselines():
    summary = run_benchmark()
    if SMOKE:
        return  # agreement already asserted; ratios are noise at smoke size
    assert summary["build"]["speedup"] >= BUILD_TARGET, summary["build"]
    assert summary["queries"]["speedup"] >= QUERY_TARGET, summary["queries"]
    assert summary["audiences"]["speedup"] >= AUDIENCE_TARGET, summary["audiences"]


if __name__ == "__main__":
    import sys

    result = run_benchmark()
    ok = result["smoke"] or (
        result["build"]["speedup"] >= BUILD_TARGET
        and result["queries"]["speedup"] >= QUERY_TARGET
        and result["audiences"]["speedup"] >= AUDIENCE_TARGET
    )
    sys.exit(0 if ok else 1)
