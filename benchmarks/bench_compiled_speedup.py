"""PERF-4 — dict-of-dicts traversal versus the compiled CSR snapshot.

Every online backend used to walk ``SocialGraph``'s dict-of-dict-of-dict
adjacency, hashing arbitrary user ids and allocating ``Relationship`` /
``Traversal`` objects per edge.  The compiled layer
(:mod:`repro.graph.compiled`) interns users and labels to dense ints and
stores per-label CSR adjacency; this experiment quantifies the win on the
synthetic scalability graphs by running the *same* constrained-BFS workload
through both modes of :class:`OnlineBFSEvaluator`:

* ``evaluate`` (``is_reachable`` form, no witness collection) over a seeded
  random query mix, and
* ``find_targets`` (full audience materialization) from a fixed source set
  with a multi-hop expression.

The summary is printed, persisted to ``benchmarks/results/`` as both a text
table and ``BENCH_compiled.json``, and the 5000-user row asserts the >= 3x
speedup the compiled layer was built to deliver.  Also runnable directly:
``PYTHONPATH=src python benchmarks/bench_compiled_speedup.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.compiled import compile_graph
from repro.graph.generators import preferential_attachment_graph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.workloads.queries import random_query_mix

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: BENCH_SMOKE=1 (the CI smoke job) shrinks the sweep to one small graph and
#: drops the speedup floor — it only proves the script still runs end to end.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZES = (300,) if SMOKE else (1000, 5000)
QUERY_COUNT = 10 if SMOKE else 30
SOURCE_COUNT = 5 if SMOKE else 10
AUDIENCE_EXPRESSION = "friend+[1,3]"
TARGET_SPEEDUP = 0.0 if SMOKE else 3.0


def _scalability_graph(size: int):
    return preferential_attachment_graph(size, edges_per_node=3, seed=71)


def _measure(evaluator, queries, sources, audience_expression) -> dict:
    """Time the is_reachable mix and the find_targets sweep on one evaluator."""
    started = time.perf_counter()
    reachable = 0
    for source, target, expression in queries:
        if evaluator.evaluate(source, target, expression, collect_witness=False).reachable:
            reachable += 1
    evaluate_seconds = time.perf_counter() - started
    started = time.perf_counter()
    audience = 0
    for source in sources:
        audience += len(evaluator.find_targets(source, audience_expression))
    find_targets_seconds = time.perf_counter() - started
    return {
        "evaluate_seconds": evaluate_seconds,
        "find_targets_seconds": find_targets_seconds,
        "total_seconds": evaluate_seconds + find_targets_seconds,
        "reachable_queries": reachable,
        "audience_size": audience,
    }


def run_comparison(size: int) -> dict:
    """Run the dict-vs-CSR workload on one scalability graph; return the row."""
    graph = _scalability_graph(size)
    queries = random_query_mix(graph, QUERY_COUNT, seed=7, max_steps=2, max_depth=3,
                               condition_probability=0.2)
    sources = sorted(graph.users(), key=str)[:SOURCE_COUNT]
    audience_expression = PathExpression.parse(AUDIENCE_EXPRESSION)

    compiled_evaluator = OnlineBFSEvaluator(graph)
    build_started = time.perf_counter()
    snapshot = compile_graph(graph)
    snapshot_build_seconds = time.perf_counter() - build_started

    dict_run = _measure(OnlineBFSEvaluator(graph, compiled=False),
                        queries, sources, audience_expression)
    compiled_run = _measure(compiled_evaluator, queries, sources, audience_expression)
    # The two modes must agree on every decision, or the speedup is meaningless.
    assert dict_run["reachable_queries"] == compiled_run["reachable_queries"]
    assert dict_run["audience_size"] == compiled_run["audience_size"]

    return {
        "users": size,
        "relationships": graph.number_of_relationships(),
        "queries": len(queries),
        "audience_sources": len(sources),
        "audience_expression": AUDIENCE_EXPRESSION,
        "snapshot_build_seconds": snapshot_build_seconds,
        "dict": dict_run,
        "compiled": compiled_run,
        "evaluate_speedup": dict_run["evaluate_seconds"] / compiled_run["evaluate_seconds"],
        "find_targets_speedup": (
            dict_run["find_targets_seconds"] / compiled_run["find_targets_seconds"]
        ),
        "total_speedup": dict_run["total_seconds"] / compiled_run["total_seconds"],
    }


def _format_table(rows) -> str:
    lines = ["PERF-4 — compiled CSR snapshot speedup over dict traversal (BFS backend)"]
    header = (f"{'users':>7} {'edges':>7} {'dict s':>9} {'csr s':>9} "
              f"{'eval x':>7} {'targets x':>10} {'total x':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['users']:>7} {row['relationships']:>7} "
            f"{row['dict']['total_seconds']:>9.4f} {row['compiled']['total_seconds']:>9.4f} "
            f"{row['evaluate_speedup']:>7.1f} {row['find_targets_speedup']:>10.1f} "
            f"{row['total_speedup']:>8.1f}"
        )
    return "\n".join(lines)


def run_benchmark() -> dict:
    """Run every size, persist the JSON + text artifacts, return the summary."""
    rows = [run_comparison(size) for size in SIZES]
    summary = {
        "experiment": "PERF-4 compiled CSR snapshot speedup",
        "backend": "bfs",
        "target_speedup": TARGET_SPEEDUP,
        "rows": rows,
    }
    table = _format_table(rows)
    print()
    print(table)
    if not SMOKE:  # don't overwrite full-size artifacts from the smoke job
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_compiled.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf4_compiled_speedup.txt").write_text(table + "\n", encoding="utf-8")
    return summary


def test_compiled_snapshot_speedup():
    summary = run_benchmark()
    largest = summary["rows"][-1]
    assert largest["users"] == max(SIZES)
    # Acceptance bar: >= 3x on the 5k-user scalability graph.  The margin is
    # usually 4-8x; a miss here means the compiled path regressed.
    assert largest["total_speedup"] >= TARGET_SPEEDUP, largest


if __name__ == "__main__":
    import sys

    result = run_benchmark()
    worst = min(row["total_speedup"] for row in result["rows"])
    print(f"\nworst total speedup across sizes: {worst:.1f}x (target {TARGET_SPEEDUP}x)")
    sys.exit(0 if result["rows"][-1]["total_speedup"] >= TARGET_SPEEDUP else 1)
