"""FIG1 — rebuild the paper's Figure-1 social subgraph and report its shape.

Regenerates the example social network (7 users, 12 labelled relationships)
and prints the graph summary; the benchmark measures construction cost, which
is the baseline "data loading" step of every other experiment.
"""

from __future__ import annotations

from conftest import record_table

from repro.datasets.paper_graph import EDGES, USERS, paper_graph
from repro.graph.statistics import summarize
from repro.workloads.metrics import format_table


def test_build_paper_graph(benchmark):
    graph = benchmark(paper_graph)
    assert graph.number_of_users() == len(USERS) == 7
    assert graph.number_of_relationships() == len(EDGES) == 12

    summary = summarize(graph)
    rows = [
        {"metric": "users", "value": summary.users},
        {"metric": "relationships", "value": summary.relationships},
        {"metric": "relationship types", "value": ", ".join(summary.labels)},
        {"metric": "friend edges", "value": summary.label_counts["friend"]},
        {"metric": "colleague edges", "value": summary.label_counts["colleague"]},
        {"metric": "parent edges", "value": summary.label_counts["parent"]},
        {"metric": "average out-degree", "value": round(summary.average_out_degree, 3)},
        {"metric": "weakly connected components", "value": summary.weakly_connected_components},
    ]
    record_table(
        "figure1_paper_graph",
        format_table(["metric", "value"], rows, title="Figure 1 — example social subgraph"),
    )


def test_summarize_paper_graph(benchmark, figure1):
    summary = benchmark(summarize, figure1)
    assert summary.largest_component_size == 7
