"""FIG2 / FIG4 — query Q1: parsing, line-query transformation, evaluation.

Figure 2 defines Q1 = ``Alice/friend+[1,2]/colleague+[1]`` ("the colleagues
of Alice's friends within 2 hops"); Figure 4 transforms it into two line
queries.  This module regenerates the transformation and benchmarks the cost
of parsing, expanding and answering Q1 on every backend.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.datasets.paper_graph import ALICE, FRED, Q1_EXPECTED_AUDIENCE, Q1_EXPRESSION
from repro.policy import PathExpression
from repro.reachability import available_backends
from repro.reachability.query import expand_line_queries
from repro.workloads.metrics import format_table


def test_parse_q1(benchmark):
    expression = benchmark(PathExpression.parse, Q1_EXPRESSION)
    assert expression.labels() == ("friend", "colleague")


def test_expand_q1_into_line_queries(benchmark):
    expression = PathExpression.parse(Q1_EXPRESSION)
    queries = benchmark(expand_line_queries, expression)
    assert len(queries) == 2

    rows = [
        {
            "line query": query.describe(),
            "hops": len(query),
            "depth combination": "/".join(map(str, query.depths)),
        }
        for query in queries
    ]
    record_table(
        "figure2_q1_line_queries",
        format_table(
            ["line query", "hops", "depth combination"],
            rows,
            title=f"Figure 2/4 — Q1 = Alice/{Q1_EXPRESSION} expands into {len(queries)} line queries",
        ),
    )


@pytest.mark.parametrize("backend", available_backends())
def test_answer_q1(benchmark, figure1_engines, backend):
    evaluator = figure1_engines[backend]
    expression = PathExpression.parse(Q1_EXPRESSION)
    result = benchmark(evaluator.evaluate, ALICE, FRED, expression)
    assert result.reachable


@pytest.mark.parametrize("backend", available_backends())
def test_q1_audience(benchmark, figure1_engines, backend):
    evaluator = figure1_engines[backend]
    expression = PathExpression.parse(Q1_EXPRESSION)
    audience = benchmark(evaluator.find_targets, ALICE, expression)
    assert audience == Q1_EXPECTED_AUDIENCE
