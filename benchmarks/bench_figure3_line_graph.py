"""FIG3 — directed line graph L(G) of the example social graph.

Figure 3 shows the line graph of Figure 1: one vertex per edge of G, an arc
whenever the head of one edge meets the tail of another.  This module
regenerates the structure (and prints the vertex/adjacency inventory) and
benchmarks line-graph construction on the example graph and on a larger
synthetic graph.
"""

from __future__ import annotations

from conftest import record_table

from repro.reachability.linegraph import LineGraph
from repro.workloads.metrics import format_table


def test_build_line_graph_of_figure1(benchmark, figure1):
    line_graph = benchmark(LineGraph, figure1, include_reverse=False)
    assert line_graph.number_of_vertices() == 12

    rows = []
    for vertex_id in line_graph.vertex_ids():
        vertex = line_graph.vertex(vertex_id)
        rows.append(
            {
                "line vertex": vertex.describe(),
                "successors": ", ".join(
                    line_graph.vertex(successor).describe()
                    for successor in sorted(line_graph.successors(vertex_id))
                )
                or "-",
            }
        )
    record_table(
        "figure3_line_graph",
        format_table(
            ["line vertex", "successors"],
            rows,
            title=(
                "Figure 3 — line graph L(G) of the example graph: "
                f"{line_graph.number_of_vertices()} vertices, {line_graph.number_of_edges()} arcs"
            ),
        ),
    )


def test_build_oriented_line_graph_of_figure1(benchmark, figure1):
    line_graph = benchmark(LineGraph, figure1, include_reverse=True)
    assert line_graph.number_of_vertices() == 24


def test_build_line_graph_of_synthetic_graph(benchmark, scaling_graphs):
    graph = scaling_graphs[400]
    line_graph = benchmark(LineGraph, graph, include_reverse=False)
    assert line_graph.number_of_vertices() == graph.number_of_relationships()
