"""FIG5 — the reachability table: SCC condensation + interval labeling of L(G).

Figure 5 tabulates, for every line-graph vertex, its postorder number and
interval set in the forward labeling (G1) and in the reverse labeling (G2).
The concrete numbers depend on the traversal / tree-cover tie-breaking (the
paper itself picks SCC representatives "randomly"), so the artifact we
reproduce is the table *structure* plus the machine-checked guarantee that
interval containment coincides with reachability in L(G) — which the test
suite verifies exhaustively.
"""

from __future__ import annotations

from conftest import record_table

from repro.reachability.interval import ReachabilityTable
from repro.reachability.linegraph import LineGraph
from repro.workloads.metrics import format_table


def test_build_reachability_table_for_figure1(benchmark, figure1):
    line_graph = LineGraph(figure1, include_reverse=False)
    adjacency = line_graph.adjacency()
    table = benchmark(ReachabilityTable, adjacency)
    rows = [
        {
            "line vertex": str(row.node),
            "po down": row.postorder_down,
            "intervals down": ";".join(f"[{lo},{hi}]" for lo, hi in row.intervals_down),
            "po up": row.postorder_up,
            "intervals up": ";".join(f"[{lo},{hi}]" for lo, hi in row.intervals_up),
        }
        for row in table.rows()
    ]
    record_table(
        "figure5_reachability_table",
        format_table(
            ["line vertex", "po down", "intervals down", "po up", "intervals up"],
            rows,
            title=(
                "Figure 5 — reachability table over L(G) "
                f"({len(rows)} line vertices, {table.label_size()} intervals)"
            ),
        ),
    )
    # Spot-check the worked joins of Section 3.3 directly on the table.
    assert table.reaches("friend:Alice->Colin", "colleague:David->Fred")
    assert table.reaches("friend:Alice->Colin", "parent:Colin->Fred")
    assert not table.reaches("friend:Fred->George", "friend:Alice->Colin")


def test_build_reachability_table_for_synthetic_line_graph(benchmark, scaling_graphs):
    line_graph = LineGraph(scaling_graphs[200], include_reverse=False)
    adjacency = line_graph.adjacency()
    table = benchmark(ReachabilityTable, adjacency)
    assert len(table.rows()) == line_graph.number_of_vertices()
