"""FIG6 — the W-table: relevant 2-hop centers per ordered label pair.

Figure 6 lists, for every ordered pair of relationship types, the centers
whose clusters can contribute answers to the corresponding reachability join
(e.g. ``(Friend, Colleague) -> {...}``).  The concrete center identities
depend on the 2-hop cover heuristic, so the reproduced artifact is the table
shape plus the guarantee (checked in the test suite) that routing joins
through these centers returns exactly the reachable pairs.
"""

from __future__ import annotations

from conftest import record_table

from repro.reachability.join_index import JoinIndex
from repro.reachability.linegraph import LineGraph
from repro.workloads.metrics import format_table


def _build_forward_index(figure1):
    return JoinIndex(LineGraph(figure1, include_reverse=False)).build()


def test_build_join_index_with_wtable(benchmark, figure1):
    index = benchmark.pedantic(_build_forward_index, args=(figure1,), rounds=3, iterations=1)
    rows = [
        {
            "label pair": f"({first}, {second})",
            "centers": ", ".join(centers),
            "count": len(centers),
        }
        for first, second, centers in index.w_table_rows()
    ]
    record_table(
        "figure6_w_table",
        format_table(
            ["label pair", "centers", "count"],
            rows,
            title=f"Figure 6 — W-table of the example graph ({len(rows)} non-empty entries)",
        ),
    )
    assert rows  # at least the (friend, friend) entry exists


def test_wtable_lookup(benchmark, figure1):
    index = _build_forward_index(figure1)
    centers = benchmark(index.relevant_centers, ("friend", "+"), ("colleague", "+"))
    assert centers  # the Q1 join has at least one relevant center


def test_reachability_join_through_wtable(benchmark, figure1):
    index = _build_forward_index(figure1)
    pairs = benchmark(index.reachability_join, ("friend", "+"), ("parent", "+"))
    assert ("friend:Alice->Colin", "parent:Colin->Fred") in pairs


def test_reachability_join_baseline_over_base_tables(benchmark, figure1):
    index = _build_forward_index(figure1)
    pairs = benchmark(index.reachability_join_baseline, ("friend", "+"), ("parent", "+"))
    assert ("friend:Alice->Colin", "parent:Colin->Fred") in pairs
