"""FIG7 — the cluster-based join index (B+-tree of centers with U/V clusters).

Figure 7 depicts the cluster-based index: a B+-tree whose entries are 2-hop
centers, each holding the cluster of vertices that reach it (U_w) and the
cluster of vertices it reaches (V_w).  This module regenerates the structure
over the example graph, reports its composition, and benchmarks both its
construction and the per-center lookups queries perform.
"""

from __future__ import annotations

from conftest import record_table

from repro.reachability.join_index import JoinIndex
from repro.reachability.linegraph import LineGraph
from repro.workloads.metrics import format_table


def _build(figure1, include_reverse=False):
    return JoinIndex(LineGraph(figure1, include_reverse=include_reverse)).build()


def test_build_cluster_index(benchmark, figure1):
    index = benchmark.pedantic(_build, args=(figure1,), rounds=3, iterations=1)
    rows = []
    for center, entry in index.cluster_index.items():
        rows.append(
            {
                "center": center,
                "|U| (reach the center)": len(entry.u_vertices()),
                "|V| (reached from it)": len(entry.v_vertices()),
            }
        )
    stats = index.statistics()
    rows.append({"center": "TOTAL", "|U| (reach the center)": "", "|V| (reached from it)": ""})
    record_table(
        "figure7_cluster_index",
        format_table(
            ["center", "|U| (reach the center)", "|V| (reached from it)"],
            rows[:-1],
            title=(
                "Figure 7 — cluster-based join index of the example graph: "
                f"{int(stats['centers'])} centers, 2-hop labeling size {int(stats['index_entries'])}, "
                f"B+-tree with {int(stats['btree_internal_nodes'])} internal / "
                f"{int(stats['btree_leaf_nodes'])} leaf nodes"
            ),
        ),
    )
    assert len(index.cluster_index) >= 1


def test_cluster_lookup_by_center(benchmark, figure1):
    index = _build(figure1)
    center = next(iter(index.cluster_index.keys()))
    entry = benchmark(index.cluster, center)
    assert entry is not None


def test_vertex_reachability_through_labels(benchmark, figure1):
    index = _build(figure1)
    reachable = benchmark(index.vertex_reaches, "friend:Alice->Colin", "friend:Fred->George")
    assert reachable


def test_build_cluster_index_for_synthetic_graph(benchmark, scaling_graphs):
    graph = scaling_graphs[100]

    def build():
        return JoinIndex(LineGraph(graph, include_reverse=True)).build()

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert index.statistics()["centers"] >= 1
