"""PERF-2a — index construction cost versus graph size.

The introduction contrasts the two classic options: online search (no
precomputation at all) and full transitive closure (``O(|V|·|E|)`` time).
The paper's pipeline (line graph + SCC + interval labeling + 2-hop cover +
cluster index) sits in between: more expensive than nothing, cheaper to store
than the closure, and paid once, offline.  This experiment measures the
construction wall-clock of both precomputed structures across graph sizes.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.workloads.metrics import MetricSeries, Timer

_SERIES = MetricSeries(
    "PERF-2a — index construction seconds vs graph size",
    ["index", "users", "relationships", "build_seconds"],
)

SIZES = (50, 100, 200, 400)


@pytest.mark.parametrize("size", SIZES)
def test_transitive_closure_construction(benchmark, index_scale_graphs, size):
    graph = index_scale_graphs[size]

    def build():
        return TransitiveClosureIndex(graph).build()

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    with Timer() as timer:
        TransitiveClosureIndex(graph).build()
    _SERIES.add(
        index="transitive-closure",
        users=size,
        relationships=graph.number_of_relationships(),
        build_seconds=timer.elapsed,
    )
    assert index.size() > 0


@pytest.mark.parametrize("size", SIZES)
def test_cluster_index_construction(benchmark, index_scale_graphs, size):
    graph = index_scale_graphs[size]

    def build():
        return ClusterIndexEvaluator(graph).build()

    evaluator = benchmark.pedantic(build, rounds=1, iterations=1)
    with Timer() as timer:
        ClusterIndexEvaluator(graph).build()
    _SERIES.add(
        index="cluster-index",
        users=size,
        relationships=graph.number_of_relationships(),
        build_seconds=timer.elapsed,
    )
    assert evaluator.statistics()["index_entries"] > 0


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf2a_index_construction", _SERIES.to_table())
    assert len(_SERIES.rows) == 2 * len(SIZES)
