"""PERF-2b — index storage size versus graph size.

The introduction's second claim about the transitive-closure baseline is its
storage cost (``O(|E|^2)`` in the worst case, and in practice one entry per
reachable pair per label).  The 2-hop labeling is the paper's answer: its
size is ``sum |Lin(v)| + |Lout(v)|``, typically far below the materialized
closure.  This experiment reports both sizes, plus the breakdown of the
cluster-index structures (base-table rows, centers, W-table entries), across
graph sizes.  Since PERF-11 the compiled CSR snapshot accounts for its own
buffer bytes (:attr:`CompiledGraph.nbytes` — the same number
``GraphService.statistics()`` and ``SnapshotStore.stat()`` report), so the
table carries the measured figure instead of recomputing an estimate.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.graph.compiled import compile_graph
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.workloads.metrics import MetricSeries

_SERIES = MetricSeries(
    "PERF-2b — index size (stored entries) vs graph size",
    [
        "users", "relationships",
        "closure_entries", "two_hop_entries", "ratio_closure_over_2hop",
        "base_table_rows", "centers", "w_table_entries", "csr_nbytes",
    ],
)

SIZES = (50, 100, 200, 400)


def _measure(graph):
    closure = TransitiveClosureIndex(graph).build()
    cluster = ClusterIndexEvaluator(graph).build()
    stats = cluster.statistics()
    return closure, stats


@pytest.mark.parametrize("size", SIZES)
def test_index_sizes(benchmark, index_scale_graphs, size):
    graph = index_scale_graphs[size]
    closure, stats = benchmark.pedantic(_measure, args=(graph,), rounds=1, iterations=1)
    closure_entries = closure.size()
    two_hop_entries = int(stats["index_entries"])
    _SERIES.add(
        users=size,
        relationships=graph.number_of_relationships(),
        closure_entries=closure_entries,
        two_hop_entries=two_hop_entries,
        ratio_closure_over_2hop=round(closure_entries / max(1, two_hop_entries), 2),
        base_table_rows=int(stats["base_table_rows"]),
        centers=int(stats["centers"]),
        w_table_entries=int(stats["w_table_entries"]),
        csr_nbytes=compile_graph(graph).nbytes,
    )
    assert closure_entries > 0 and two_hop_entries > 0


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf2b_index_size", _SERIES.to_table())
    assert len(_SERIES.rows) == len(SIZES)
