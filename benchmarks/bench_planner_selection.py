"""PERF-10 — planner-driven backend auto-selection (the PR 5 service layer).

Two promises of the `GraphService` query planner are measured:

1. **Warm-path overhead** — a stream of repeated reach queries is replayed
   through the service with auto-selection and with a pinned backend; both
   paths end in the engines' decision memos, so the difference isolates
   planning (one plan-cache probe plus two integer comparisons).
   Acceptance: auto <= 1.05x the pinned replay (overhead < 5%).  A raw
   ``ReachabilityEngine`` replay is reported as context for the facade's
   total overhead.

2. **Mixed-stream win** — a churn-then-analyze stream over one graph:

   * *phase 1* interleaves mutation bursts with cheap point queries
     (``friend+[1]``): every burst stales the indexes and resets the
     service's stability counter;
   * *phase 2* is a long, **denial-heavy** tail of forward-only point
     queries on the now-quiet graph (7 in 8 requesters are not reachable
     from the owner by *any* forward path — the common case of access
     control: most of the network is not in the audience).

   Pinned ``bfs`` / ``dfs`` explore the owner's whole reachable ball for
   every denial; pinned ``cluster-index`` does too, more slowly, *and*
   rebuilds its index after every phase-1 burst (the service refuses to
   serve from a stale index); pinned ``transitive-closure`` answers denials
   in O(1) but pays its enormous build once per phase-1 burst.  Auto stays
   online while writes keep arriving — the build estimate never amortizes
   over a stability that keeps resetting — then, with the observed
   unreachable rate feeding the closure's prune discount and stability
   accruing, flips mid-tail, builds the closure once, and prunes the rest.
   Acceptance: auto beats **every** single pinned backend on total
   wall-clock and routes through at least two distinct backends.

Artifacts: ``benchmarks/results/BENCH_planner_selection.json`` and
``perf10_planner_selection.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_planner_selection.py``
(``BENCH_SMOKE=1`` shrinks the stream and keeps only the agreement
assertions — timing floors need full size).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path

from repro.graph.generators import preferential_attachment_graph
from repro.reachability.engine import ReachabilityEngine
from repro.service import GraphService
from repro.workloads.generator import WorkloadSpec, apply_churn_op, build_workload

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 120 if SMOKE else 500
EDGES_PER_NODE = 5
SEED = 61

# Overhead experiment.
WARM_PAIRS = 8 if SMOKE else 40
WARM_ROUNDS = 5 if SMOKE else 40
WARM_EXPRESSION = "friend+[1,2]"
OVERHEAD_CEILING = 1.05  # auto <= 1.05x pinned

# Mixed-stream experiment.
CHURN_BURSTS = 3 if SMOKE else 10
BURST_SIZE = 4
CHEAP_PER_BURST = 5
TAIL_QUERIES = 40 if SMOKE else 5000
REACHABLE_EVERY = 8  # 1 tail query in 8 is a grant; the rest are denials
CHEAP_EXPRESSION = "friend+[1]"
TAIL_EXPRESSIONS = (
    "friend+[1,3]/colleague+[1,2]",
    "friend+[1,4]",
    "friend+[1,2]/parent+[1,2]/colleague+[1,2]",
)
PINNED_CONTENDERS = ("bfs", "dfs", "cluster-index", "transitive-closure")


def _pairs(graph, count: int, stride: int = 13):
    users = sorted(graph.users(), key=str)
    return [
        (users[(i * stride) % len(users)], users[(i * stride * 5 + 3) % len(users)])
        for i in range(count)
    ]


# ---------------------------------------------------------------- overhead


def overhead_experiment() -> dict:
    graph = preferential_attachment_graph(SIZE, edges_per_node=3, seed=SEED)
    # Reachable-only pairs (one edge away): the warm stream must measure
    # planning overhead, not trip the denial-rate feedback into an index
    # build mid-measurement.
    pairs = [
        (rel.source, rel.target)
        for rel in graph.relationships()
        if rel.label == "friend"
    ][:WARM_PAIRS] or _pairs(graph, WARM_PAIRS)

    def service_replay(service: GraphService) -> float:
        def one_round():
            for source, target in pairs:
                service.reach(source, target, WARM_EXPRESSION, collect_witness=False)

        one_round()  # warm: memos and plan cache populated
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for _round in range(WARM_ROUNDS):
                one_round()
            best = min(best, time.perf_counter() - started)
        return best

    def engine_replay() -> float:
        engine = ReachabilityEngine(graph, "bfs")
        for source, target in pairs:
            engine.is_reachable(source, target, WARM_EXPRESSION)
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for _round in range(WARM_ROUNDS):
                for source, target in pairs:
                    engine.is_reachable(source, target, WARM_EXPRESSION)
            best = min(best, time.perf_counter() - started)
        return best

    auto_seconds = service_replay(GraphService(graph))
    pinned_seconds = service_replay(GraphService(graph, default_backend="bfs"))
    raw_seconds = engine_replay()
    queries = len(pairs) * WARM_ROUNDS
    return {
        "queries": queries,
        "auto_seconds": auto_seconds,
        "pinned_seconds": pinned_seconds,
        "raw_engine_seconds": raw_seconds,
        "auto_us_per_query": 1e6 * auto_seconds / queries,
        "pinned_us_per_query": 1e6 * pinned_seconds / queries,
        "raw_us_per_query": 1e6 * raw_seconds / queries,
        "overhead_ratio": auto_seconds / pinned_seconds,
        "overhead_ceiling": OVERHEAD_CEILING,
    }


# ------------------------------------------------------------ mixed stream


def _forward_ball(graph, source):
    """Forward-reachable set of ``source`` over any labels (dict API)."""
    seen = {source}
    queue = deque([source])
    while queue:
        user = queue.popleft()
        for neighbor in graph.successors(user):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen


def _mixed_stream_material():
    """Base workload + the tail's pair list (pre-classified on the final graph).

    The tail pairs are chosen against the *post-churn* graph (every strategy
    replays the same deterministic bursts): 7 of 8 targets sit outside the
    source's forward-reachable ball — a denial by any forward-only rule —
    and every 8th inside it.
    """
    workload = build_workload(
        WorkloadSpec(
            users=SIZE,
            seed=SEED,
            family_options=(("edges_per_node", EDGES_PER_NODE),),
            churn_bursts=CHURN_BURSTS,
            churn_burst_size=BURST_SIZE,
            churn_attribute_fraction=0.0,  # structural churn: indexes must stale
        )
    )
    final = workload.graph.copy()
    for burst in workload.churn:
        for op in burst:
            apply_churn_op(final, op)
    users = sorted(final.users(), key=str)
    tail_pairs = []
    cursor = 0
    for source in users:
        ball = _forward_ball(final, source)
        inside = sorted(ball - {source}, key=str)
        outside = [user for user in users if user not in ball]
        if not inside or not outside:
            continue
        # A run of denials plus one grant per source keeps the mix exact.
        for _ in range(REACHABLE_EVERY - 1):
            if len(tail_pairs) >= TAIL_QUERIES:
                break
            tail_pairs.append((source, outside[cursor % len(outside)]))
            cursor += 1
        if len(tail_pairs) >= TAIL_QUERIES:
            break
        tail_pairs.append((source, inside[cursor % len(inside)]))
        if len(tail_pairs) >= TAIL_QUERIES:
            break
    if len(tail_pairs) < TAIL_QUERIES:
        # Tiny smoke graphs can be fully forward-connected (no denials to
        # stage); pad with arbitrary pairs — the smoke run only asserts that
        # every strategy answers identically.
        tail_pairs.extend(_pairs(final, TAIL_QUERIES - len(tail_pairs), stride=29))
    cheap_pairs = _pairs(workload.graph, CHEAP_PER_BURST * CHURN_BURSTS)
    return workload, cheap_pairs, tail_pairs


def _replay_stream(service: GraphService, bursts, cheap_pairs, tail_pairs):
    """Run the churn-then-analyze stream; returns (seconds, decisions, routing)."""
    decisions = []
    started = time.perf_counter()
    cheap_cursor = 0
    for burst in bursts:
        for op in burst:
            apply_churn_op(service.graph, op)
        for _ in range(CHEAP_PER_BURST):
            source, target = cheap_pairs[cheap_cursor % len(cheap_pairs)]
            cheap_cursor += 1
            result = service.reach(
                source, target, CHEAP_EXPRESSION, collect_witness=False
            )
            decisions.append(result.reachable)
    for index, (source, target) in enumerate(tail_pairs):
        expression = TAIL_EXPRESSIONS[index % len(TAIL_EXPRESSIONS)]
        result = service.reach(source, target, expression, collect_witness=False)
        decisions.append(result.reachable)
    elapsed = time.perf_counter() - started
    routing = {
        name: engine.cache_hits + engine.cache_misses
        for name, engine in service._engines.items()
    }
    return elapsed, decisions, routing


def mixed_stream_experiment() -> dict:
    rows = []
    decisions_by_mode = {}
    denials = None
    for mode in ("planner-auto",) + PINNED_CONTENDERS:
        workload, cheap_pairs, tail_pairs = _mixed_stream_material()
        graph = workload.graph  # fresh graph per mode: same seed, same bursts
        pin = None if mode == "planner-auto" else mode
        service = GraphService(graph, default_backend=pin)
        elapsed, decisions, routing = _replay_stream(
            service, workload.churn, cheap_pairs, tail_pairs
        )
        decisions_by_mode[mode] = decisions
        denials = sum(1 for reachable in decisions if not reachable)
        rows.append(
            {
                "mode": mode,
                "seconds": elapsed,
                "queries": len(decisions),
                "backends_used": sorted(
                    name for name, count in routing.items() if count
                ),
            }
        )
    # Whatever was routed where, every strategy must answer identically.
    reference = decisions_by_mode["planner-auto"]
    for mode, decisions in decisions_by_mode.items():
        assert decisions == reference, f"{mode} diverged from planner-auto"

    auto_row = next(row for row in rows if row["mode"] == "planner-auto")
    pinned_rows = [row for row in rows if row["mode"] != "planner-auto"]
    best_pinned = min(pinned_rows, key=lambda row: row["seconds"])
    for row in rows:
        row["vs_auto"] = row["seconds"] / auto_row["seconds"]
    return {
        "rows": rows,
        "queries": auto_row["queries"],
        "denials": denials,
        "auto_seconds": auto_row["seconds"],
        "auto_backends_used": auto_row["backends_used"],
        "best_pinned_mode": best_pinned["mode"],
        "best_pinned_seconds": best_pinned["seconds"],
        "win_ratio": best_pinned["seconds"] / auto_row["seconds"],
    }


# ------------------------------------------------------------------ harness


def run_benchmark() -> dict:
    overhead = overhead_experiment()
    mixed = mixed_stream_experiment()
    return {
        "experiment": "PERF-10 planner-driven backend auto-selection",
        "smoke": SMOKE,
        "users": SIZE,
        "overhead": overhead,
        "mixed_stream": {
            "churn_bursts": CHURN_BURSTS,
            "burst_size": BURST_SIZE,
            "cheap_per_burst": CHEAP_PER_BURST,
            "tail_queries": TAIL_QUERIES,
            "reachable_every": REACHABLE_EVERY,
            **mixed,
        },
    }


def _format_table(summary: dict) -> str:
    overhead = summary["overhead"]
    mixed = summary["mixed_stream"]
    lines = [
        "PERF-10 — planner-driven backend auto-selection",
        f"graph: {summary['users']} users" + (" (SMOKE)" if summary["smoke"] else ""),
        "",
        f"warm-path overhead ({overhead['queries']} memo-hit reach queries):",
        f"{'path':<18} {'us/query':>10}",
        "-" * 30,
        f"{'service auto':<18} {overhead['auto_us_per_query']:>10.2f}",
        f"{'service pinned':<18} {overhead['pinned_us_per_query']:>10.2f}",
        f"{'raw engine':<18} {overhead['raw_us_per_query']:>10.2f}",
        f"planning overhead: {100 * (overhead['overhead_ratio'] - 1):+.1f}% "
        f"(ceiling {100 * (overhead['overhead_ceiling'] - 1):.0f}%)",
        "",
        "mixed stream (churn+cheap phase, then a denial-heavy analysis tail):",
        f"{CHURN_BURSTS} bursts x {BURST_SIZE} mutations + {CHEAP_PER_BURST} cheap "
        f"queries, then {mixed['queries'] - CHURN_BURSTS * CHEAP_PER_BURST} "
        f"forward-only tail queries ({mixed['denials']}/{mixed['queries']} denied)",
        f"{'mode':<20} {'seconds':>9} {'vs auto':>8}   backends used",
        "-" * 68,
    ]
    for row in mixed["rows"]:
        lines.append(
            f"{row['mode']:<20} {row['seconds']:>9.3f} {row['vs_auto']:>7.2f}x   "
            f"{', '.join(row['backends_used'])}"
        )
    lines.append(
        f"auto wins by {mixed['win_ratio']:.2f}x over the best pinned backend "
        f"({mixed['best_pinned_mode']})"
    )
    return "\n".join(lines)


def _meets_targets(summary: dict) -> bool:
    overhead_ok = (
        summary["overhead"]["overhead_ratio"] <= summary["overhead"]["overhead_ceiling"]
    )
    mixed = summary["mixed_stream"]
    win_ok = mixed["win_ratio"] > 1.0
    adaptive_ok = len(mixed["auto_backends_used"]) >= 2
    return overhead_ok and win_ok and adaptive_ok


def test_planner_overhead_and_mixed_stream_win():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        # Decision agreement was already asserted inside the experiment;
        # timings are noise at smoke size.
        return
    assert _meets_targets(summary), summary


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_planner_selection.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf10_planner_selection.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_targets(summary)) else 1)
