"""PERF-1 — per-query latency versus graph size, per backend.

The paper's motivation: answering a constraint-labelled reachability query
with an online search costs ``O(|V| + |E|)`` per query, "which is too costly
when dealing with large graphs", while an index-based approach should keep
the per-query cost (nearly) independent of graph size.  This experiment fixes
a query mix (the paper's scenario expressions) and measures the mean decision
latency on Barabási–Albert graphs of increasing size for every backend.

Expected shape (recorded in docs/benchmarks.md): online BFS/DFS latency grows
with graph size; the cluster-index per-query latency stays roughly flat once
the (expensive, offline) index has been built; the transitive-closure backend
sits in between (O(1) pruning, online search for the rest).
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.policy import PathExpression
from repro.reachability import create_evaluator
from repro.workloads.metrics import MetricSeries, Timer
from repro.workloads.queries import random_query_mix

QUERY_EXPRESSIONS = [
    "friend+[1,2]",
    "friend+[1,2]/colleague+[1]",
    "friend+[1]/parent+[1]/friend+[1]",
    "colleague*[1,2]",
]

# Which sizes each backend is exercised on: the index pipelines are capped so
# that their (quadratic-ish) offline construction keeps the harness fast; the
# online baselines run on every size.
BACKEND_SIZES = {
    "bfs": (50, 100, 200, 400, 800),
    "dfs": (50, 100, 200, 400, 800),
    "transitive-closure": (50, 100, 200, 400, 800),
    "cluster-index": (50, 100, 200, 400),
}

_EVALUATOR_CACHE = {}
_SERIES = MetricSeries(
    "PERF-1 — mean query latency (ms) vs graph size",
    ["backend", "users", "relationships", "mean_latency_ms", "queries"],
)


def _evaluator(backend, size, graph):
    key = (backend, size)
    if key not in _EVALUATOR_CACHE:
        _EVALUATOR_CACHE[key] = create_evaluator(backend, graph)
    return _EVALUATOR_CACHE[key]


def _query_mix(graph, size):
    users = sorted(graph.users())
    expressions = [PathExpression.parse(text) for text in QUERY_EXPRESSIONS]
    mix = []
    for index, (source, target, _expr) in enumerate(
        random_query_mix(graph, 40, seed=size, max_steps=2, max_depth=2)
    ):
        mix.append((source, target, expressions[index % len(expressions)]))
    return mix


def _cases():
    cases = []
    for backend, sizes in BACKEND_SIZES.items():
        for size in sizes:
            cases.append((backend, size))
    return cases


@pytest.mark.parametrize("backend,size", _cases())
def test_query_latency(benchmark, scaling_graphs, backend, size):
    graph = scaling_graphs[size]
    evaluator = _evaluator(backend, size, graph)
    mix = _query_mix(graph, size)

    def run_mix():
        grants = 0
        for source, target, expression in mix:
            if evaluator.evaluate(source, target, expression, collect_witness=False).reachable:
                grants += 1
        return grants

    benchmark.pedantic(run_mix, rounds=3, iterations=1)

    with Timer() as timer:
        run_mix()
    _SERIES.add(
        backend=backend,
        users=size,
        relationships=graph.number_of_relationships(),
        mean_latency_ms=1000.0 * timer.elapsed / len(mix),
        queries=len(mix),
    )


def test_zzz_report(benchmark):
    """Print / persist the PERF-1 series (runs last thanks to the zzz prefix)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf1_query_latency_scaling", _SERIES.to_table())
    assert len(_SERIES.rows) == sum(len(sizes) for sizes in BACKEND_SIZES.values())
