"""PERF-4 — ablation: how query shape drives evaluation cost.

The class of queries the paper introduces is parameterized by (a) the number
of steps in the path expression and (b) the width of each step's depth
interval (which multiplies the number of line queries after expansion:
``prod(width_i)``, Section 3.1).  This experiment sweeps both knobs on a
fixed graph and compares the online BFS evaluator with the cluster-index
evaluator, reporting latency and the number of line queries evaluated.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.reachability import create_evaluator
from repro.workloads.metrics import MetricSeries, Timer
from repro.workloads.queries import expression_of_shape

_SERIES = MetricSeries(
    "PERF-4 — query-shape ablation (300-user scale-free graph)",
    ["backend", "steps", "depth_width", "line_queries", "mean_latency_ms"],
)

STEP_COUNTS = (1, 2, 3, 4)
DEPTH_WIDTHS = (1, 2, 3)
_EVALUATORS = {}


def _graph(scaling_graphs):
    return scaling_graphs[200]


def _evaluator(backend, graph):
    if backend not in _EVALUATORS:
        _EVALUATORS[backend] = create_evaluator(backend, graph)
    return _EVALUATORS[backend]


def _pairs(graph, count=15):
    users = sorted(graph.users())
    step = max(1, len(users) // count)
    sources = users[::step][:count]
    targets = list(reversed(users))[::step][:count]
    return list(zip(sources, targets))


def _cases():
    return [
        (backend, steps, width)
        for backend in ("bfs", "cluster-index")
        for steps in STEP_COUNTS
        for width in DEPTH_WIDTHS
        if steps * width <= 9  # keep expansions (width ** steps) modest
    ]


@pytest.mark.parametrize("backend,steps,width", _cases())
def test_query_shape(benchmark, scaling_graphs, backend, steps, width):
    graph = _graph(scaling_graphs)
    evaluator = _evaluator(backend, graph)
    expression = expression_of_shape(graph.labels(), steps=steps, depth_width=width)
    pairs = _pairs(graph)

    def run():
        hits = 0
        for source, target in pairs:
            if evaluator.evaluate(source, target, expression, collect_witness=False).reachable:
                hits += 1
        return hits

    benchmark.pedantic(run, rounds=3, iterations=1)
    with Timer() as timer:
        run()
    _SERIES.add(
        backend=backend,
        steps=steps,
        depth_width=width,
        line_queries=expression.expansion_count(),
        mean_latency_ms=1000.0 * timer.elapsed / len(pairs),
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_table("perf4_query_shape_ablation", _SERIES.to_table())
    assert len(_SERIES.rows) == len(_cases())
