"""PERF-12 — what the PR 8 reliability layer costs when nothing is failing.

The reliability layer's contract is that the hot paths only pay for it when
it is engaged.  Three prices are measured on a healthy service:

1. **Guard overhead** — a warm point-query replay and a cold audience sweep,
   run unguarded vs guarded with a generous budget (one context-variable
   read per sweep plus one ``spend()`` per frontier pop).  Acceptance:
   guarded <= ``GUARD_CEILING`` x unguarded on the sweep replay.
2. **Breaker overhead** — the same warm replay with the default breakers
   vs ``breakers={}`` (the per-query cost is one ``_vetoed()`` scan of two
   breaker objects).  Acceptance: <= ``BREAKER_CEILING`` x.
3. **Recovery cost** — wall-clock of a full ``fsck()`` heal on a store with
   a corrupt delta chain, for the docs' recovery-budget table (no
   acceptance gate: it is a cold-path cost, reported for visibility).

Artifacts: ``benchmarks/results/BENCH_reliability_overhead.json`` and
``perf12_reliability_overhead.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_reliability_overhead.py``
(``BENCH_SMOKE=1`` shrinks sizes and skips the timing assertions).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.generators import preferential_attachment_graph
from repro.graph.snapshot import SnapshotStore
from repro.reliability.guard import QueryGuard
from repro.service import GraphService

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 120 if SMOKE else 500
REPLAY_PAIRS = 8 if SMOKE else 40
REPLAY_ROUNDS = 5 if SMOKE else 40
SWEEP_OWNERS = 4 if SMOKE else 16
SWEEP_ROUNDS = 2 if SMOKE else 10
EXPRESSION = "friend+[1,2]"
SWEEP_EXPRESSION = "friend+[1,4]"
SEED = 83

GUARD_CEILING = 1.30
BREAKER_CEILING = 1.15


def _graph():
    return preferential_attachment_graph(SIZE, edges_per_node=3, seed=SEED)


def _reach_pairs(graph):
    pairs = [
        (rel.source, rel.target)
        for rel in graph.relationships()
        if rel.label == "friend"
    ]
    return pairs[:REPLAY_PAIRS]


def _best_of(repeat, runs=3):
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        repeat()
        best = min(best, time.perf_counter() - started)
    return best


def guard_experiment() -> dict:
    graph = _graph()
    pairs = _reach_pairs(graph)
    owners = sorted(graph.users(), key=str)[:SWEEP_OWNERS]

    def replay(service):
        def one_round():
            for source, target in pairs:
                service.reach(source, target, EXPRESSION, collect_witness=False)

        one_round()  # warm memos + plan cache
        return _best_of(lambda: [one_round() for _ in range(REPLAY_ROUNDS)])

    def sweep(service):
        # cache_size=0: every round re-runs the real multi-source sweep,
        # which is where the per-pop spend() lives.
        return _best_of(
            lambda: [
                service.audience(owners, SWEEP_EXPRESSION)
                for _ in range(SWEEP_ROUNDS)
            ]
        )

    unguarded = GraphService(graph)
    guarded = GraphService(
        graph, query_guard=QueryGuard(max_steps=1_000_000_000)
    )
    unguarded_sweep = GraphService(graph, cache_size=0)
    guarded_sweep = GraphService(
        graph, cache_size=0, query_guard=QueryGuard(max_steps=1_000_000_000)
    )
    warm_off = replay(unguarded)
    warm_on = replay(guarded)
    sweep_off = sweep(unguarded_sweep)
    sweep_on = sweep(guarded_sweep)
    assert guarded.statistics()["guard_trips"] == 0.0
    assert guarded_sweep.statistics()["guard_trips"] == 0.0
    return {
        "warm_reach_off_seconds": warm_off,
        "warm_reach_on_seconds": warm_on,
        "warm_reach_ratio": warm_on / warm_off,
        "sweep_off_seconds": sweep_off,
        "sweep_on_seconds": sweep_on,
        "sweep_ratio": sweep_on / sweep_off,
        "ceiling": GUARD_CEILING,
    }


def breaker_experiment() -> dict:
    graph = _graph()
    pairs = _reach_pairs(graph)

    def replay(service):
        def one_round():
            for source, target in pairs:
                service.reach(source, target, EXPRESSION, collect_witness=False)

        one_round()
        return _best_of(lambda: [one_round() for _ in range(REPLAY_ROUNDS)])

    without = replay(GraphService(graph, breakers={}))
    with_breakers = replay(GraphService(graph))
    return {
        "without_seconds": without,
        "with_seconds": with_breakers,
        "ratio": with_breakers / without,
        "ceiling": BREAKER_CEILING,
    }


def recovery_experiment(scratch: Path) -> dict:
    graph = _graph()
    store = SnapshotStore(scratch / "g.snap", sleep=lambda seconds: None)
    store.checkpoint(graph)
    segments = 4 if SMOKE else 8
    for index in range(segments):
        graph.add_user(f"burst-{index}")
        store.checkpoint(graph)
    # Corrupt the middle of the chain: fsck must truncate half of it.
    (scratch / f"g.delta.{segments // 2}").write_bytes(b"corrupt segment")
    fresh = SnapshotStore(scratch / "g.snap", sleep=lambda seconds: None)
    started = time.perf_counter()
    report = fresh.fsck()
    fsck_seconds = time.perf_counter() - started
    assert report.healthy
    assert report.quarantined
    return {
        "segments": segments,
        "quarantined": len(report.quarantined),
        "fsck_seconds": fsck_seconds,
    }


def run_benchmark() -> dict:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-rel-") as scratch:
        return {
            "smoke": SMOKE,
            "size": SIZE,
            "guard": guard_experiment(),
            "breaker": breaker_experiment(),
            "recovery": recovery_experiment(Path(scratch)),
        }


def _format_table(summary: dict) -> str:
    guard = summary["guard"]
    breaker = summary["breaker"]
    recovery = summary["recovery"]
    lines = [
        "PERF-12: reliability-layer overhead on a healthy service",
        f"  graph size: {summary['size']} users (smoke={summary['smoke']})",
        "  guard (generous budget, zero trips):",
        f"    warm reach replay: {guard['warm_reach_ratio']:.3f}x unguarded",
        f"    cold audience sweep: {guard['sweep_ratio']:.3f}x unguarded "
        f"(ceiling {guard['ceiling']:.2f}x)",
        "  breakers (all closed):",
        f"    warm reach replay: {breaker['ratio']:.3f}x without breakers "
        f"(ceiling {breaker['ceiling']:.2f}x)",
        "  recovery (cold path, reported only):",
        f"    fsck over {recovery['segments']} segments with a mid-chain "
        f"corruption: {1e3 * recovery['fsck_seconds']:.1f} ms, "
        f"{recovery['quarantined']} files quarantined",
    ]
    return "\n".join(lines)


def _meets_targets(summary: dict) -> bool:
    return (
        summary["guard"]["sweep_ratio"] <= summary["guard"]["ceiling"]
        and summary["breaker"]["ratio"] <= summary["breaker"]["ceiling"]
    )


def test_reliability_overhead():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # correctness asserted inside the experiments; timing is noise
    assert _meets_targets(summary), summary


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_reliability_overhead.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf12_reliability_overhead.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_targets(summary)) else 1)
