"""PERF-14 — async serving front-end: coalescing vs request-at-a-time.

The serving layer (PR 10) batches concurrent in-flight requests that share
a path expression into ONE bulk execution on the tenant's worker thread
(:meth:`~repro.service.GraphService.reach_many` / multi-owner audience
sweeps).  This benchmark drives an **open-loop** load — requests arrive on
a seeded Poisson schedule whether or not earlier ones finished, the regime
where queueing actually builds — through one :class:`~repro.serving.
TenantSession` twice:

1. **coalesced** — the production configuration (gather window + batch
   cap), and
2. **baseline** — the same machinery with ``window=0, max_batch=1``:
   request-at-a-time dispatch, PR 9's status quo phrased through the same
   code path so only batching differs.

The workload is ``CLIENTS`` concurrent clients sharing ``len(EXPRESSIONS)``
(<= 8) path expressions, every request carrying a **unique owner** so no
answer can come from a warm per-owner memo — the baseline pays one real
sweep per request, the coalesced run one shared sweep per batch.  Every
served answer (both modes) is differentially asserted equal to a
sequential replay on an identically-seeded twin service.

Acceptance (full size, asserted): coalescing improves tail latency
(p99 below baseline's) and raises throughput by >= 1.5x.

Artifacts: ``benchmarks/results/BENCH_serving_latency.json`` and
``perf14_serving_latency.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_serving_latency.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

USERS = 600 if SMOKE else 20_000
CLIENTS = 8 if SMOKE else 32
REQUESTS_PER_CLIENT = 4 if SMOKE else 8
SEED = 17
#: Arrival rate: the full request population lands within ~this horizon.
#: Tight enough that same-expression arrivals overlap a gather window —
#: the concurrency regime the coalescer exists for.
ARRIVAL_HORIZON_SECONDS = 0.05
WINDOW = 0.02
MAX_BATCH = 64

#: <= 8 path expressions shared by the whole client population.
EXPRESSIONS = (
    "friend+[1]",
    "friend+[1,2]",
    "friend+[1,2]/colleague+[1]",
    "colleague+[1,2]",
    "friend+[1]/colleague+[1]",
    "parent+[1]/friend+[1]",
    "colleague*[1,2]",
    "friend*[1,2]",
)

#: Full-size acceptance floor: coalesced throughput over request-at-a-time.
THROUGHPUT_TARGET = 1.5


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_requests():
    """The shared request list: unique owner per request, <= 8 expressions.

    Owners are unique across the WHOLE population so neither mode is ever
    served from a per-owner memo warmed by an earlier request — the
    comparison measures execution, not cache luck.
    """
    from repro.workloads import WorkloadSpec, build_graph

    spec = WorkloadSpec(users=USERS, seed=SEED)
    graph = build_graph(spec)
    users = sorted(graph.users(), key=str)
    total = CLIENTS * REQUESTS_PER_CLIENT
    if total > len(users):
        raise RuntimeError("graph too small for unique owners per request")
    requests = [
        (users[i], EXPRESSIONS[i % len(EXPRESSIONS)]) for i in range(total)
    ]
    return graph, requests


def _arrival_schedule(total: int):
    from repro.workloads import open_loop_arrivals

    rate = total / ARRIVAL_HORIZON_SECONDS
    return open_loop_arrivals(total, rate, seed=SEED)


async def _drive(session, requests, offsets):
    """Open-loop: issue request i at its scheduled offset, measure latency."""
    loop = asyncio.get_running_loop()
    epoch = loop.time()

    async def one(offset, owner, expression):
        delay = epoch + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        started = time.perf_counter()
        served = await session.audience(owner, expression)
        return time.perf_counter() - started, served

    started = time.perf_counter()
    outcomes = await asyncio.gather(
        *(
            one(offset, owner, expression)
            for offset, (owner, expression) in zip(offsets, requests)
        )
    )
    wall = time.perf_counter() - started
    latencies = [latency for latency, _served in outcomes]
    answers = [served for _latency, served in outcomes]
    return wall, latencies, answers


def _run_mode(graph, requests, offsets, *, window: float, max_batch: int):
    from repro.serving.session import TenantSession
    from repro.service.facade import GraphService

    service = GraphService(graph)
    # Steady-state warmup: compile the snapshot and warm parse/plan caches
    # with an owner OUTSIDE the request population (owners stay unique, so
    # no benchmarked answer is memo-served).  Without this, whichever mode
    # runs first pays the one-off compile inside its first batch.
    warm_owner = sorted(graph.users(), key=str)[-1]
    for expression in EXPRESSIONS:
        service.audience(warm_owner, expression)
    mode = {}

    async def main():
        session = TenantSession(
            "bench",
            service,
            window=window,
            max_batch=max_batch,
            max_pending=len(requests) + 1,
        )
        try:
            return await _drive(session, requests, offsets)
        finally:
            await session.close()

    wall, latencies, answers = asyncio.run(main())
    stats = service.statistics()
    mode.update(
        {
            "window": window,
            "max_batch": max_batch,
            "requests": len(requests),
            "wall_seconds": wall,
            "throughput_requests_per_second": len(requests) / wall,
            "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
            "latency_max_ms": max(latencies) * 1e3,
            "batches_executed": stats["coalescer_batches_executed"],
            "requests_coalesced": stats["coalescer_requests_coalesced"],
            "batch_histogram": {
                key.replace("coalescer_batch_", ""): value
                for key, value in stats.items()
                if key.startswith("coalescer_batch_")
            },
        }
    )
    return mode, answers


def _sequential_truth(requests):
    """Ground truth: the identical requests on an identically-seeded twin."""
    from repro.service.facade import GraphService
    from repro.workloads import WorkloadSpec, build_graph

    service = GraphService(build_graph(WorkloadSpec(users=USERS, seed=SEED)))
    truth = []
    for owner, expression in requests:
        result = service.audience(owner, expression)
        assert result.partial is False
        truth.append(set(result.audiences.get(owner, set())))
    return truth


def run_benchmark() -> dict:
    graph, requests = _build_requests()
    offsets = _arrival_schedule(len(requests))

    coalesced, coalesced_answers = _run_mode(
        graph, requests, offsets, window=WINDOW, max_batch=MAX_BATCH
    )
    baseline, baseline_answers = _run_mode(
        graph, requests, offsets, window=0.0, max_batch=1
    )

    # Differential acceptance: EVERY served answer — both modes — equals
    # the sequential replay's, and the coalesced run actually batched.
    truth = _sequential_truth(requests)
    for index, ((owner, expression), expected) in enumerate(zip(requests, truth)):
        served = coalesced_answers[index]
        assert set(served.audience) == expected, (owner, expression)
        assert served.partial is False
        solo = baseline_answers[index]
        assert set(solo.audience) == expected, (owner, expression)
    assert baseline["batches_executed"] == len(requests)
    assert coalesced["requests_coalesced"] > 0

    return {
        "experiment": "PERF-14 serving latency under open-loop load",
        "smoke": SMOKE,
        "users": USERS,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "expressions": list(EXPRESSIONS),
        "arrival_horizon_seconds": ARRIVAL_HORIZON_SECONDS,
        "throughput_target": THROUGHPUT_TARGET,
        "coalesced": coalesced,
        "baseline": baseline,
        "speedup_throughput": (
            coalesced["throughput_requests_per_second"]
            / baseline["throughput_requests_per_second"]
        ),
        "p99_improvement": (
            baseline["latency_p99_ms"] / max(1e-9, coalesced["latency_p99_ms"])
        ),
        "answers_verified": len(requests) * 2,
    }


def _format_table(summary: dict) -> str:
    lines = [
        "PERF-14 — serving latency: coalesced vs request-at-a-time"
        + (" (SMOKE)" if summary["smoke"] else ""),
        f"{summary['users']} users; {summary['clients']} clients x "
        f"{summary['requests_per_client']} requests over "
        f"{len(summary['expressions'])} shared expressions; "
        f"open-loop Poisson arrivals within ~{summary['arrival_horizon_seconds']}s; "
        f"{summary['answers_verified']} answers verified against sequential replay",
        "",
        f"{'mode':>12} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'max ms':>8} {'batches':>8}",
        "-" * 58,
    ]
    for name in ("baseline", "coalesced"):
        mode = summary[name]
        lines.append(
            f"{name:>12} {mode['throughput_requests_per_second']:>8.0f} "
            f"{mode['latency_p50_ms']:>8.1f} {mode['latency_p99_ms']:>8.1f} "
            f"{mode['latency_max_ms']:>8.1f} {mode['batches_executed']:>8.0f}"
        )
    lines.append(
        f"throughput speedup: {summary['speedup_throughput']:.2f}x "
        f"(target >= {summary['throughput_target']:.1f}x); "
        f"p99 improvement: {summary['p99_improvement']:.2f}x"
    )
    histogram = summary["coalesced"]["batch_histogram"]
    buckets = ", ".join(
        f"{bucket}={int(count)}"
        for bucket, count in histogram.items()
        if count
    )
    lines.append(f"coalesced batch sizes: {buckets}")
    return "\n".join(lines)


def _meets_target(summary: dict) -> bool:
    return (
        summary["speedup_throughput"] >= THROUGHPUT_TARGET
        and summary["coalesced"]["latency_p99_ms"]
        < summary["baseline"]["latency_p99_ms"]
    )


def test_coalescing_beats_request_at_a_time():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # every answer was differentially asserted; ratios are noise
    assert _meets_target(summary), (
        summary["speedup_throughput"],
        summary["coalesced"]["latency_p99_ms"],
        summary["baseline"]["latency_p99_ms"],
    )


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_serving_latency.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf14_serving_latency.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_target(summary)) else 1)
