"""PERF-13 — community-sharded audience serving: worker scaling vs PR 3.

The sharding layer splits the social graph into community-aligned shard
mirrors, persists each through the PERF-11 snapshot store, and serves bulk
audience queries from one worker process per shard
(:class:`~repro.sharding.ShardServingPool`), exchanging boundary masks in
bulk-synchronous rounds.  This benchmark measures what that buys over the
PR 3 status quo — a single process running the owner-bitset
:func:`~repro.reachability.compiled_search.audience_sweep` over the whole
unsharded CSR:

1. **Worker scaling** — the same owner batch swept by pools of 1/2/4/8
   workers (the graph re-partitioned to match, since the pool runs one
   worker per shard).  Every benchmarked query is differentially asserted:
   each owner's pooled audience must equal the single-process sweep's.
   The acceptance row — pool of 4 >= 2x the pool of 1 — is asserted only
   when the machine has >= 4 usable cores (PERF-11 precedent: CPU-bound
   sweeps cannot parallelize on a single-core runner, while the
   architectural numbers — rounds, boundary traffic, partition balance —
   are still reported).

2. **Locality probe** — the in-process :class:`~repro.sharding.ShardRouter`
   on the 4-shard partition answers a batch of point reach queries and one
   owner sweep, reporting the shard-local hit rate, the escalation
   fraction, and how often the boundary summary refuted a crossing without
   running the global fanout.

Graphs are planted-partition (``community_graph``) at 50k / 100k / 200k
users — the community-structured regime the partitioner targets — or one
2000-user graph under ``BENCH_SMOKE=1`` (the CI smoke job, ratios not
asserted).

Artifacts: ``benchmarks/results/BENCH_shard_scaling.json`` and
``perf13_shard_scaling.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_shard_scaling.py``.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZES = (2000,) if SMOKE else (50_000, 100_000, 200_000)
COMMUNITIES = 16
OWNER_STRIDE = 40 if SMOKE else 100
POINT_QUERIES = 20 if SMOKE else 200
SWEEP_REPEATS = 3
WORKER_COUNTS = (1, 2, 4, 8)
SEED = 11

EXPRESSION = "friend+[1,2]"

#: Full-size acceptance floor: pool of 4 vs pool of 1; needs >= 4 cores.
SCALING_TARGET = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _build_graph(size: int):
    from repro.graph.generators import community_graph

    return community_graph(
        size,
        communities=COMMUNITIES,
        intra_edges_per_node=4,
        inter_fraction=0.05,
        seed=SEED,
    )


def _baseline_sweep(graph, owners) -> dict:
    """PR 3 status quo: one process, one unsharded CSR, one owner sweep."""
    from repro.graph.compiled import compile_graph
    from repro.policy.path_expression import PathExpression
    from repro.reachability.compiled_search import (
        CompiledAutomaton,
        audience_sweep,
    )

    snapshot = compile_graph(graph)
    automaton = CompiledAutomaton(PathExpression.parse(EXPRESSION), snapshot)
    sources = [snapshot.index_of(owner) for owner in owners]
    seconds = []
    sweep = None
    for _ in range(SWEEP_REPEATS):
        started = time.perf_counter()
        sweep = audience_sweep(snapshot, automaton, sources)
        seconds.append(time.perf_counter() - started)
    audiences = {
        owner: {snapshot.node_ids[node] for node in audience}
        for owner, audience in zip(owners, sweep.audiences)
    }
    best = min(seconds)
    return {
        "audiences": audiences,
        "best_seconds": best,
        "throughput_owner_audiences_per_second": len(owners) / best,
    }


def _pool_row(graph, owners, workers: int, baseline: dict) -> dict:
    """Partition into ``workers`` shards, serve from a pool, differential."""
    from repro.sharding import ShardServingPool, ShardedGraph

    started = time.perf_counter()
    sharded = ShardedGraph(graph, shards=workers, seed=SEED)
    partition_seconds = time.perf_counter() - started
    with tempfile.TemporaryDirectory(prefix="bench-shards-") as tmp:
        started = time.perf_counter()
        sharded.save(Path(tmp))
        save_seconds = time.perf_counter() - started
        with ShardServingPool(tmp) as pool:
            assert all(info["mapped"] for info in pool.worker_info)
            seconds = []
            audiences = None
            for _ in range(SWEEP_REPEATS):
                started = time.perf_counter()
                audiences = pool.bulk_audience(owners, EXPRESSION)
                seconds.append(time.perf_counter() - started)
            rounds, messages = pool.rounds, pool.messages
    # Every benchmarked query is differentially asserted against PR 3.
    for owner in owners:
        assert audiences[owner] == baseline["audiences"][owner], (
            workers,
            owner,
        )
    best = min(seconds)
    return {
        "workers": workers,
        "boundary_edges": sharded.boundary_edge_count,
        "ghost_users": len(sharded.boundary_users()),
        "partition_seconds": partition_seconds,
        "save_seconds": save_seconds,
        "sweep_seconds_best": best,
        "throughput_owner_audiences_per_second": len(owners) / best,
        "speedup_vs_statusquo": (
            (len(owners) / best)
            / baseline["throughput_owner_audiences_per_second"]
        ),
        "rounds": rounds,
        "messages": messages,
    }


def _locality_probe(graph, owners) -> dict:
    """In-process router on the 4-shard cut: local hits and escalations."""
    from repro.policy.path_expression import PathExpression
    from repro.sharding import ShardRouter, ShardedGraph

    router = ShardRouter(ShardedGraph(graph, shards=4, seed=SEED))
    expression = PathExpression.parse(EXPRESSION)
    rng = random.Random(SEED)
    users = sorted(graph.users(), key=str)
    started = time.perf_counter()
    for _ in range(POINT_QUERIES):
        router.evaluate(rng.choice(users), rng.choice(users), expression)
    point_seconds = time.perf_counter() - started
    router.sweep_targets_many(owners[: max(1, len(owners) // 4)], expression)
    stats = router.statistics()
    return {
        "point_queries": POINT_QUERIES,
        "point_seconds": point_seconds,
        "local_hit_rate": stats["local_queries"] / max(1.0, stats["point_queries"]),
        "escalation_fraction": router.escalation_rate,
        "summary_prunes": stats["summary_prunes"],
        "messages_sent": stats["messages"],
        "rounds_run": stats["rounds"],
    }


def run_benchmark() -> dict:
    experiments = []
    for size in SIZES:
        graph = _build_graph(size)
        users = sorted(graph.users(), key=str)
        owners = users[::OWNER_STRIDE]
        baseline = _baseline_sweep(graph, owners)
        rows = [
            _pool_row(graph, owners, workers, baseline)
            for workers in WORKER_COUNTS
        ]
        by_workers = {row["workers"]: row for row in rows}
        experiments.append(
            {
                "users": graph.number_of_users(),
                "relationships": graph.number_of_relationships(),
                "owners": len(owners),
                "baseline_sweep_seconds_best": baseline["best_seconds"],
                "baseline_throughput_owner_audiences_per_second": baseline[
                    "throughput_owner_audiences_per_second"
                ],
                "rows": rows,
                "scaling_4v1": (
                    by_workers[4]["throughput_owner_audiences_per_second"]
                    / by_workers[1]["throughput_owner_audiences_per_second"]
                ),
                "locality": _locality_probe(graph, owners),
            }
        )
    return {
        "experiment": "PERF-13 community-sharded audience serving",
        "smoke": SMOKE,
        "expression": EXPRESSION,
        "worker_counts": list(WORKER_COUNTS),
        "scaling_target": SCALING_TARGET,
        "usable_cpus": _usable_cpus(),
        "sizes": experiments,
    }


def _format_table(summary: dict) -> str:
    lines = [
        "PERF-13 — community-sharded audience serving (pool of N shard workers)",
        f"expression: `{summary['expression']}`; "
        f"{summary['usable_cpus']} usable cpu(s)"
        + (" (SMOKE)" if summary["smoke"] else ""),
        "",
    ]
    for experiment in summary["sizes"]:
        lines.append(
            f"graph: {experiment['users']} users, "
            f"{experiment['relationships']} relationships; "
            f"{experiment['owners']} owners per sweep "
            f"(status quo {experiment['baseline_sweep_seconds_best']:.3f} s, "
            f"{experiment['baseline_throughput_owner_audiences_per_second']:.0f}"
            " owner-audiences/s)"
        )
        lines.append(
            f"{'workers':>7} {'boundary':>9} {'sweep s':>8} {'audiences/s':>12} "
            f"{'vs PR 3':>8} {'rounds':>6} {'messages':>9}"
        )
        lines.append("-" * 66)
        for row in experiment["rows"]:
            lines.append(
                f"{row['workers']:>7} {row['boundary_edges']:>9} "
                f"{row['sweep_seconds_best']:>8.3f} "
                f"{row['throughput_owner_audiences_per_second']:>12.0f} "
                f"{row['speedup_vs_statusquo']:>7.2f}x "
                f"{row['rounds']:>6} {row['messages']:>9}"
            )
        locality = experiment["locality"]
        lines.append(
            f"scaling 4v1: {experiment['scaling_4v1']:.2f}x "
            f"(target >= {summary['scaling_target']:.0f}x with >= 4 cores); "
            f"local hits {locality['local_hit_rate']:.0%}, "
            f"escalations {locality['escalation_fraction']:.0%}, "
            f"summary prunes {locality['summary_prunes']}"
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def _meets_target(summary: dict) -> bool:
    if summary["usable_cpus"] < 4:
        return True  # single-core runner: differential already asserted
    return all(
        experiment["scaling_4v1"] >= SCALING_TARGET
        for experiment in summary["sizes"]
    )


def test_sharded_serving_matches_single_process():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # every query was differentially asserted; ratios are noise
    assert _meets_target(summary), summary["sizes"]


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_shard_scaling.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf13_shard_scaling.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_target(summary)) else 1)
