"""PERF-11 — shared-memory persistent snapshots: mmap cold start + fan-out.

Before the :mod:`repro.graph.snapshot` store, every process that wanted the
compiled CSR paid ``compile_graph`` from a freshly built ``SocialGraph`` —
an O(|V| + |E|) walk plus Python-dict churn that dominates
refresh-to-first-query, and N serving workers meant N private copies of the
adjacency arrays.  With the store, one process saves the snapshot once and
every reader wraps a read-only ``mmap`` in zero-copy ``memoryview``s: the
kernel shares the CSR pages between all workers and the page cache.

Two experiments on the 50 000-user preferential-attachment graph (2000
users in ``BENCH_SMOKE=1`` mode, the CI smoke job):

1. **Cold start** — ``compile_graph`` from the in-memory graph vs
   ``load_snapshot`` from disk, best-of-N.  The acceptance row: the mmap
   load beats the compile by >= 20x at full size.  Both snapshots must
   answer the PR 3 owner-bitset audience sweep identically (audience-size
   checksum), and a delta-segment load (base + replayed checkpoint) is
   timed alongside.

2. **Multi-process serving** — N workers (``multiprocessing``, fork and
   spawn) each map the ONE saved file and run the owner sweep against it.
   Aggregate throughput of 4 mmap workers (cold starts included) is
   compared against the status quo: a single process paying the
   ``compile_graph`` cold start before sweeping.  The acceptance row:
   >= 3x at full size (fork).  Per-worker RSS is read from
   ``/proc/self/smaps_rollup`` before and after the load+sweep so the
   table shows the mapping staying file-backed (``Shared_Clean``) instead
   of multiplying private pages per worker.  The pure core-scaling ratio
   (4 mmap workers vs 1 mmap worker) is reported too, but only asserted
   when the machine actually has >= 4 usable cores — on a single-core
   runner CPU-bound sweeps cannot parallelize, while the architectural
   win (skipping N-1 compiles and sharing the pages) still shows.

``SNAPSHOT_START_METHOD=fork|spawn`` restricts the exercised start
methods (the CI matrix uses it to force a spawn-only pass).

Artifacts: ``benchmarks/results/BENCH_snapshot_store.json`` and
``perf11_snapshot_store.txt``.  Runnable directly:
``PYTHONPATH=src python benchmarks/bench_snapshot_store.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
SIZE = 2000 if SMOKE else 50_000
OWNER_STRIDE = 10 if SMOKE else 50
LOAD_REPEATS = 3
SEED = 11

EXPRESSION = "friend+[1,2]"
WORKER_COUNTS = (1, 4)
JOIN_TIMEOUT = 300.0

#: Full-size acceptance floors.
COLD_START_TARGET = 20.0  # mmap load vs compile_graph
FANOUT_TARGET = 3.0  # 4 mmap workers vs 1 status-quo (compile) process
CORE_SCALING_TARGET = 3.0  # 4 mmap workers vs 1 mmap worker; needs >= 4 cores


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _start_methods() -> tuple:
    forced = os.environ.get("SNAPSHOT_START_METHOD", "").strip()
    available = multiprocessing.get_all_start_methods()
    if forced:
        if forced not in available:
            raise RuntimeError(f"start method {forced!r} not in {available}")
        return (forced,)
    return tuple(m for m in ("fork", "spawn") if m in available)


def _read_rss() -> dict:
    """Memory counters for this process, in kB, from smaps_rollup."""
    wanted = ("Rss", "Pss", "Shared_Clean", "Private_Clean", "Private_Dirty")
    counters = {}
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        return {key: 0 for key in wanted}
    for line in text.splitlines():
        key, _, rest = line.partition(":")
        if key in wanted:
            counters[key] = int(rest.split()[0])
    return {key: counters.get(key, 0) for key in wanted}


def _sweep_checksum(snapshot, owners) -> int:
    from repro.policy.path_expression import PathExpression
    from repro.reachability.compiled_search import CompiledAutomaton, audience_sweep

    automaton = CompiledAutomaton(PathExpression.parse(EXPRESSION), snapshot)
    sweep = audience_sweep(snapshot, automaton, owners, direction="forward")
    return sum(len(audience) for audience in sweep.audiences)


def _serve_worker(path, owners, queue) -> None:
    """One serving worker: mmap the shared file, sweep, report timings + RSS.

    Module-level so both fork and spawn can pickle it by reference; spawn
    children re-import this module (multiprocessing ships ``sys.path`` in
    its preparation data, so ``PYTHONPATH=src`` reaches them).
    """
    from repro.graph.snapshot import load_snapshot

    rss_before = _read_rss()
    started = time.perf_counter()
    snapshot = load_snapshot(path)
    load_seconds = time.perf_counter() - started
    started = time.perf_counter()
    checksum = _sweep_checksum(snapshot, owners)
    sweep_seconds = time.perf_counter() - started
    rss_after = _read_rss()
    queue.put(
        {
            "pid": os.getpid(),
            "load_seconds": load_seconds,
            "sweep_seconds": sweep_seconds,
            "checksum": checksum,
            "rss_before_kb": rss_before,
            "rss_after_kb": rss_after,
        }
    )


def _run_workers(method: str, path, owners, count: int) -> dict:
    """Launch ``count`` serving workers against one file; wall-clock the lot."""
    context = multiprocessing.get_context(method)
    queue = context.Queue()
    workers = [
        context.Process(target=_serve_worker, args=(str(path), owners, queue))
        for _ in range(count)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    reports = [queue.get(timeout=JOIN_TIMEOUT) for _ in workers]
    for worker in workers:
        worker.join(timeout=JOIN_TIMEOUT)
    wall_seconds = time.perf_counter() - started
    for worker in workers:
        if worker.exitcode != 0:
            raise RuntimeError(f"worker exited with {worker.exitcode}")
    private_delta = [
        (r["rss_after_kb"]["Private_Clean"] + r["rss_after_kb"]["Private_Dirty"])
        - (r["rss_before_kb"]["Private_Clean"] + r["rss_before_kb"]["Private_Dirty"])
        for r in reports
    ]
    return {
        "method": method,
        "workers": count,
        "wall_seconds": wall_seconds,
        "sweeps": count * len(owners),
        "throughput_owner_sweeps_per_second": (count * len(owners)) / wall_seconds,
        "checksums": sorted({r["checksum"] for r in reports}),
        "mean_load_seconds": sum(r["load_seconds"] for r in reports) / count,
        "mean_sweep_seconds": sum(r["sweep_seconds"] for r in reports) / count,
        "mean_private_delta_kb": sum(private_delta) / count,
        "mean_shared_clean_kb": (
            sum(r["rss_after_kb"]["Shared_Clean"] for r in reports) / count
        ),
        "mean_rss_after_kb": sum(r["rss_after_kb"]["Rss"] for r in reports) / count,
        "mean_pss_after_kb": sum(r["rss_after_kb"]["Pss"] for r in reports) / count,
    }


def cold_start_experiment(workdir: Path) -> dict:
    from repro.graph.compiled import _SNAPSHOT_ATTR, compile_graph
    from repro.graph.generators import preferential_attachment_graph
    from repro.graph.snapshot import SnapshotStore, load_snapshot

    graph = preferential_attachment_graph(SIZE, edges_per_node=4, seed=SEED)
    owners = list(range(0, SIZE, OWNER_STRIDE))

    started = time.perf_counter()
    snapshot = compile_graph(graph)
    compile_seconds = time.perf_counter() - started

    store = SnapshotStore(workdir / "serving.snap")
    started = time.perf_counter()
    base_bytes = store.save(snapshot)
    save_seconds = time.perf_counter() - started

    load_seconds = []
    loaded = None
    for _ in range(LOAD_REPEATS):
        started = time.perf_counter()
        loaded = load_snapshot(store.base_path)
        load_seconds.append(time.perf_counter() - started)
    best_load = min(load_seconds)

    checksum = _sweep_checksum(snapshot, owners)
    assert _sweep_checksum(loaded, owners) == checksum

    # A small churn burst -> checkpoint() writes a delta segment; time the
    # load that replays it so the delta path has a number in the artifact.
    added = 0
    for index in range(SIZE):
        source, target = f"u{index}", f"u{(index + SIZE // 2 - 1) % SIZE}"
        if not graph.has_relationship(source, target, "friend"):
            graph.add_relationship(source, target, "friend")
            added += 1
        if added == 8:
            break
    outcome = store.checkpoint(graph)
    started = time.perf_counter()
    replayed = store.load()
    delta_load_seconds = time.perf_counter() - started
    assert replayed.epoch == store.tip_epoch() == graph.epoch

    # Status-quo baseline for the fan-out experiment: one process compiles
    # from scratch (cache cleared first) and then sweeps.
    delattr(graph, _SNAPSHOT_ATTR)
    started = time.perf_counter()
    baseline_snapshot = compile_graph(graph)
    baseline_compile_seconds = time.perf_counter() - started
    started = time.perf_counter()
    baseline_checksum = _sweep_checksum(baseline_snapshot, owners)
    baseline_sweep_seconds = time.perf_counter() - started

    store.save(baseline_snapshot)  # re-base so workers see the churned graph
    return {
        "users": graph.number_of_users(),
        "relationships": graph.number_of_relationships(),
        "owners": len(owners),
        "base_bytes": base_bytes,
        "compile_seconds": compile_seconds,
        "save_seconds": save_seconds,
        "load_seconds_best": best_load,
        "load_seconds_all": load_seconds,
        "delta_checkpoint_outcome": outcome,
        "delta_load_seconds": delta_load_seconds,
        "cold_start_speedup": compile_seconds / best_load,
        "checksum": checksum,
        "baseline_compile_seconds": baseline_compile_seconds,
        "baseline_sweep_seconds": baseline_sweep_seconds,
        "baseline_checksum": baseline_checksum,
        "store_stat": store.stat(),
        "owners_list": owners,
        "store_path": str(store.base_path),
    }


def serving_experiment(cold: dict) -> dict:
    owners = cold["owners_list"]
    path = cold["store_path"]
    baseline_wall = cold["baseline_compile_seconds"] + cold["baseline_sweep_seconds"]
    baseline_throughput = len(owners) / baseline_wall
    rows = []
    for method in _start_methods():
        for count in WORKER_COUNTS:
            row = _run_workers(method, path, owners, count)
            assert row["checksums"] == [cold["baseline_checksum"]], row["checksums"]
            row["speedup_vs_statusquo"] = (
                row["throughput_owner_sweeps_per_second"] / baseline_throughput
            )
            rows.append(row)
    by_key = {(row["method"], row["workers"]): row for row in rows}
    scaling = {}
    for method in {row["method"] for row in rows}:
        one = by_key.get((method, 1))
        four = by_key.get((method, 4))
        if one and four:
            scaling[method] = (
                four["throughput_owner_sweeps_per_second"]
                / one["throughput_owner_sweeps_per_second"]
            )
    return {
        "rows": rows,
        "baseline_wall_seconds": baseline_wall,
        "baseline_throughput_owner_sweeps_per_second": baseline_throughput,
        "core_scaling_4v1": scaling,
        "usable_cpus": _usable_cpus(),
    }


def run_benchmark() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-snapshot-") as tmp:
        cold = cold_start_experiment(Path(tmp))
        serving = serving_experiment(cold)
        cold.pop("owners_list")
        cold.pop("store_path")
    return {
        "experiment": "PERF-11 shared-memory persistent snapshots",
        "smoke": SMOKE,
        "users": cold["users"],
        "relationships": cold["relationships"],
        "expression": EXPRESSION,
        "cold_start_target": COLD_START_TARGET,
        "fanout_target": FANOUT_TARGET,
        "core_scaling_target": CORE_SCALING_TARGET,
        "start_methods": list(_start_methods()),
        "cold_start": cold,
        "serving": serving,
    }


def _format_table(summary: dict) -> str:
    cold = summary["cold_start"]
    serving = summary["serving"]
    lines = [
        "PERF-11 — shared-memory persistent snapshots (mmap CSR + delta segments)",
        f"graph: {summary['users']} users, {summary['relationships']} relationships"
        + (" (SMOKE)" if summary["smoke"] else ""),
        f"snapshot file: {cold['base_bytes']} bytes; sweep: {cold['owners']} owners"
        f" x `{summary['expression']}`",
        "",
        "cold start (refresh-to-first-query):",
        f"  compile_graph            {cold['compile_seconds']:>9.4f} s",
        f"  save_snapshot            {cold['save_seconds']:>9.4f} s",
        f"  load_snapshot (mmap)     {cold['load_seconds_best']:>9.4f} s  "
        f"(best of {LOAD_REPEATS})",
        f"  load + delta replay      {cold['delta_load_seconds']:>9.4f} s  "
        f"(checkpoint -> {cold['delta_checkpoint_outcome']})",
        f"  cold-start speedup: {cold['cold_start_speedup']:.1f}x "
        f"(target >= {summary['cold_start_target']:.0f}x)",
        "",
        f"multi-process serving ({serving['usable_cpus']} usable cpu(s); "
        "status quo = 1 process compiling then sweeping, "
        f"{serving['baseline_throughput_owner_sweeps_per_second']:.0f} owner-sweeps/s):",
        f"{'method':<7} {'workers':>7} {'wall s':>8} {'sweeps/s':>10} "
        f"{'vs status quo':>13} {'priv ΔkB':>9} {'shared kB':>10}",
        "-" * 70,
    ]
    for row in serving["rows"]:
        lines.append(
            f"{row['method']:<7} {row['workers']:>7} {row['wall_seconds']:>8.3f} "
            f"{row['throughput_owner_sweeps_per_second']:>10.0f} "
            f"{row['speedup_vs_statusquo']:>12.1f}x "
            f"{row['mean_private_delta_kb']:>9.0f} {row['mean_shared_clean_kb']:>10.0f}"
        )
    for method, ratio in sorted(serving["core_scaling_4v1"].items()):
        lines.append(
            f"core scaling {method} 4v1: {ratio:.2f}x "
            f"(asserted only with >= 4 cores; this run has "
            f"{serving['usable_cpus']})"
        )
    lines.append(
        f"fan-out acceptance: 4 fork workers vs status quo >= "
        f"{summary['fanout_target']:.0f}x"
    )
    return "\n".join(lines)


def _meets_target(summary: dict) -> bool:
    cold_ok = summary["cold_start"]["cold_start_speedup"] >= COLD_START_TARGET
    fanout_ok = True
    for row in summary["serving"]["rows"]:
        if row["method"] == "fork" and row["workers"] == 4:
            fanout_ok = row["speedup_vs_statusquo"] >= FANOUT_TARGET
    scaling_ok = True
    if summary["serving"]["usable_cpus"] >= 4:
        for method, ratio in summary["serving"]["core_scaling_4v1"].items():
            if method == "fork":
                scaling_ok = ratio >= CORE_SCALING_TARGET
    return cold_ok and fanout_ok and scaling_ok


def test_mmap_serving_beats_the_statusquo_cold_start():
    summary = run_benchmark()
    print()
    print(_format_table(summary))
    if SMOKE:
        return  # checksum agreement already asserted; ratios are noise here
    assert _meets_target(summary), summary["cold_start"]


if __name__ == "__main__":
    import sys

    summary = run_benchmark()
    table = _format_table(summary)
    print()
    print(table)
    if not SMOKE:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_snapshot_store.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "perf11_snapshot_store.txt").write_text(
            table + "\n", encoding="utf-8"
        )
    sys.exit(0 if (summary["smoke"] or _meets_target(summary)) else 1)
