"""EX-Q1 — the Section-3.4 worked example, end to end through the policy engine.

Alice protects a resource with the rule ``friend/parent/friend`` ("the friends
of my friends' parents"); George requests access and must be granted through
the path Alice -> Colin -> Fred -> George, everyone else must be denied.  The
benchmark measures the full access-control decision (policy lookup + query
evaluation + explanation) on every backend.
"""

from __future__ import annotations

import pytest
from conftest import record_table

from repro.datasets.paper_graph import (
    ALICE,
    GEORGE,
    WORKED_EXAMPLE_EXPRESSION,
    WORKED_EXAMPLE_WITNESS_NODES,
)
from repro.policy import AccessControlEngine, PolicyStore
from repro.reachability import available_backends
from repro.workloads.metrics import format_table


def _engine(figure1, backend):
    store = PolicyStore()
    store.share(ALICE, "alice-resource", kind="note")
    store.allow("alice-resource", WORKED_EXAMPLE_EXPRESSION,
                description="friends of my friends' parents")
    # The benchmark replays identical decisions; disable the decision memo so
    # the rounds keep measuring backend evaluation, not cache lookups.
    return AccessControlEngine(figure1, store, backend=backend, cache_size=0)


@pytest.mark.parametrize("backend", available_backends())
def test_worked_example_decision(benchmark, figure1, backend):
    engine = _engine(figure1, backend)
    decision = benchmark(engine.check_access, GEORGE, "alice-resource")
    assert decision.granted
    witnesses = decision.witnesses()
    assert witnesses and witnesses[0].nodes() == WORKED_EXAMPLE_WITNESS_NODES


def test_worked_example_full_audience_table(benchmark, figure1):
    engine = _engine(figure1, "bfs")

    def audience_for_everyone():
        return {user: engine.is_allowed(user, "alice-resource") for user in figure1.users()}

    decisions = benchmark(audience_for_everyone)
    rows = [
        {"requester": user, "decision": "GRANT" if granted else "DENY"}
        for user, granted in sorted(decisions.items())
    ]
    record_table(
        "worked_example_decisions",
        format_table(
            ["requester", "decision"],
            rows,
            title=(
                "Section 3.4 worked example — rule Alice/"
                f"{WORKED_EXAMPLE_EXPRESSION}: decision per requester"
            ),
        ),
    )
    assert decisions[GEORGE] and decisions[ALICE]
    assert sum(decisions.values()) == 2  # only the owner and George
