"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*`` module regenerates one artifact of docs/benchmarks.md's experiment
index (a figure of the paper or one of the PERF-* studies).  Besides the
wall-clock numbers collected by ``pytest-benchmark``, each experiment prints
its result table and appends it to ``benchmarks/results/`` so that
docs/benchmarks.md can quote stable artifacts.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def record_table(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def figure1():
    """The paper's Figure-1 graph."""
    from repro.datasets.paper_graph import paper_graph

    return paper_graph()


@pytest.fixture(scope="session")
def figure1_engines(figure1):
    """All four reachability backends built over the Figure-1 graph."""
    from repro.reachability import available_backends, create_evaluator

    return {name: create_evaluator(name, figure1) for name in available_backends()}


@pytest.fixture(scope="session")
def scaling_graphs():
    """Barabási–Albert graphs of increasing size (PERF-1 / PERF-2 sweeps)."""
    from repro.graph.generators import preferential_attachment_graph

    sizes = (50, 100, 200, 400, 800)
    return {n: preferential_attachment_graph(n, edges_per_node=3, seed=71) for n in sizes}


@pytest.fixture(scope="session")
def index_scale_graphs(scaling_graphs):
    """The subset of the scaling graphs small enough for full index construction."""
    return {n: graph for n, graph in scaling_graphs.items() if n <= 400}
