#!/usr/bin/env python3
"""Enterprise collaboration scenario: org-chart-aware access control.

Social-network access control is not limited to consumer OSNs: the same
reachability constraints express organizational policies ("my direct
reports", "colleagues of my reports", "managers of people I befriended at
other departments").  This example builds a layered organization graph,
protects a handful of documents with such rules, validates the policy with
the administration tooling, and compares decisions across all four
reachability backends.

Run with::

    python examples/enterprise_collaboration.py
"""

from __future__ import annotations

from repro import GraphService, PolicyStore
from repro.graph.generators import layered_organization_graph
from repro.policy.administration import analyze_policy
from repro.reachability import available_backends


def main() -> None:
    graph = layered_organization_graph(departments=4, members_per_department=8, seed=7)
    print(f"organization graph: {graph}")
    managers = sorted(user for user in graph.users() if graph.attribute(user, "role") == "manager")
    cto = managers[0]

    store = PolicyStore()

    # 1. The roadmap: direct reports only.
    store.share(cto, "roadmap", kind="document", title="2027 roadmap")
    store.allow("roadmap", "manages+[1]", description="my direct reports")

    # 2. Retro notes: reports and the colleagues of reports (i.e. the department).
    store.share(cto, "retro-notes", kind="document")
    store.allow("retro-notes", "manages+[1]/colleague+[1]", description="the whole department")
    store.allow("retro-notes", "manages+[1]", description="reports themselves")

    # 3. A cross-team design doc: people my reports befriended in other teams,
    #    as long as they are not students/interns (attribute condition).
    store.share(cto, "design-doc", kind="document")
    store.allow(
        "design-doc",
        "manages+[1]/friend*[1]{job != student}",
        description="friends of my reports, interns excluded",
    )

    # 4. A salary review: nobody but the owner (no rule at all).
    store.share(cto, "salary-review", kind="document")

    # Validate the policy before enforcing it.
    report = analyze_policy(store, graph)
    print(f"policy analysis: {len(report.errors())} errors, {len(report.warnings())} warnings, "
          f"{len(report.unprotected_resources)} unprotected resources "
          f"({', '.join(map(str, report.unprotected_resources)) or 'none'})")

    # One service pinned to the paper's cluster index; the bulk call
    # materializes every document's audience in a single pass and carries
    # the executed sweep plans on the result.
    service = GraphService(graph, store, default_backend="cluster-index")
    documents = ("roadmap", "retro-notes", "design-doc", "salary-review")
    bulk = service.bulk_access(documents)
    print()
    print(f"{'resource':<14} {'audience size':>13}   sample of authorized users")
    print("-" * 70)
    for resource in documents:
        audience = sorted(bulk[resource])
        sample = ", ".join(str(user) for user in audience[:4])
        more = f" (+{len(audience) - 4} more)" if len(audience) > 4 else ""
        print(f"{resource:<14} {len(audience):>13}   {sample}{more}")

    # A concrete denied request, explained.
    outsider = [user for user in graph.users() if graph.attribute(user, "department") == 3][0]
    print()
    print(service.explain(outsider, "roadmap"))

    # All backends agree on every decision (spot-check on the roadmap):
    # the same service routes the query through each backend via a plan pin.
    print()
    print("cross-backend agreement on 'roadmap':")
    agreement = GraphService(graph, store)
    for backend in available_backends():
        audience = agreement.bulk_access(["roadmap"], backend=backend)["roadmap"]
        print(f"  {backend:<19} audience size = {len(audience)}")


if __name__ == "__main__":
    main()
