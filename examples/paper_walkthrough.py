#!/usr/bin/env python3
"""Walk through every worked example of the paper on the Figure-1 graph.

Reproduces, step by step and with printed artifacts:

* the Figure-1 social subgraph,
* query Q1 of Figure 2 and its line-query expansion (Figure 4),
* the line graph (Figure 3), reachability table (Figure 5), W-table
  (Figure 6) and cluster index (Figure 7),
* the Section-3.4 worked example (George requesting Alice's resource),
* the Section-2 audience examples around David.

Run with::

    python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro.datasets.paper_graph import (
    ALICE,
    DAVID,
    GEORGE,
    Q1_EXPRESSION,
    WORKED_EXAMPLE_EXPRESSION,
    paper_graph,
)
from repro import GraphService
from repro.policy import PathExpression, PolicyStore
from repro.reachability import ClusterIndexEvaluator, LineGraph, ReachabilityTable
from repro.reachability.join_index import JoinIndex
from repro.reachability.query import expand_line_queries


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    graph = paper_graph()

    section("Figure 1 — the example social subgraph")
    print(graph)
    for rel in sorted(graph.relationships(), key=lambda r: (r.label, str(r.source))):
        print(f"  {rel}")

    section("Figure 2 / Figure 4 — query Q1 and its line queries")
    q1 = PathExpression.parse(Q1_EXPRESSION)
    print(f"Q1 = {ALICE}/{q1}")
    for line_query in expand_line_queries(q1):
        print(f"  line query: {line_query.describe()}  (depths {line_query.depths})")

    section("Figure 3 — line graph L(G)")
    line_graph = LineGraph(graph, include_reverse=False)
    print(line_graph)
    for vertex_id in line_graph.vertex_ids():
        successors = sorted(line_graph.successors(vertex_id))
        print(f"  {vertex_id:<28} -> {', '.join(successors) if successors else '-'}")

    section("Figure 5 — reachability table (postorder + intervals, both directions)")
    table = ReachabilityTable(line_graph.adjacency())
    print(table.format())

    section("Figures 6 and 7 — W-table and cluster-based join index")
    join_index = JoinIndex(line_graph).build()
    for first, second, centers in join_index.w_table_rows():
        print(f"  ({first}, {second}) -> {{{', '.join(centers)}}}")
    print()
    stats = join_index.statistics()
    print(
        f"cluster index: {int(stats['centers'])} centers, "
        f"2-hop labeling size {int(stats['index_entries'])}, "
        f"base tables {join_index.catalog.table_names()}"
    )
    pairs = join_index.reachability_join(("friend", "+"), ("parent", "+"))
    print(f"T_friend ⋈ T_parent = {sorted(pairs)}")

    section("Section 3.4 — the worked example (George requests Alice's resource)")
    store = PolicyStore()
    store.share(ALICE, "alice-resource", kind="note")
    store.allow("alice-resource", WORKED_EXAMPLE_EXPRESSION,
                description="friends of my friends' parents")
    service = GraphService(graph, store, default_backend="cluster-index")
    print(service.explain(GEORGE, "alice-resource"))
    print()
    print("full audience:", sorted(service.authorized_audience("alice-resource")))

    section("Section 2 — David's audiences")
    evaluator = ClusterIndexEvaluator(graph).build()
    incoming = evaluator.find_targets(DAVID, PathExpression.parse("friend-[1]"))
    extended = evaluator.find_targets(DAVID, PathExpression.parse("friend-[1]/friend+[1]"))
    print(f"users who consider David a friend: {sorted(incoming)}")
    print(f"...extended to their friends:      {sorted(extended)}")


if __name__ == "__main__":
    main()
