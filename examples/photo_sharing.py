#!/usr/bin/env python3
"""Photo-sharing scenario on a synthetic online social network.

The introduction of the paper motivates the model with sharing situations
such as "only my family and my friends can view my birthday photos" or "only
my children and their friends can read my notes".  This example generates a
realistic scale-free network, lets a few users publish albums under those
policies (taken from the scenario catalogue), and contrasts the resulting
audiences with the coarse friend-list model the introduction criticizes.

Run with::

    python examples/photo_sharing.py
"""

from __future__ import annotations

from repro import AuditLog, GraphService, PolicyStore
from repro.graph.generators import preferential_attachment_graph
from repro.graph.statistics import summarize
from repro.workloads.scenarios import scenario


def main() -> None:
    graph = preferential_attachment_graph(400, edges_per_node=3, seed=2026)
    summary = summarize(graph)
    print(f"synthetic network: {summary.users} users, {summary.relationships} relationships, "
          f"labels {summary.labels}, effective diameter ≈ {summary.effective_diameter}")

    # Pick three owners with very different connectivity.
    by_degree = sorted(graph.users(), key=graph.out_degree)
    owners = {
        "low-degree owner": by_degree[len(by_degree) // 10],
        "median owner": by_degree[len(by_degree) // 2],
        "hub owner": by_degree[-1],
    }

    policies = {
        "birthday photos": scenario("family-and-friends"),
        "simpsons notes": scenario("children-of-friends-of-friends"),
        "work documents": scenario("q1-colleagues-of-friends"),
    }

    audit = AuditLog()
    store = PolicyStore()
    # The service facade: rules are evaluated through whichever backend the
    # planner picks per query (pin one with default_backend="bfs" if needed).
    service = GraphService(graph, store, audit_log=audit)

    print()
    header = f"{'owner':<18} {'out-degree':>10} {'resource':<18} {'policy':<40} {'audience':>9}"
    print(header)
    print("-" * len(header))
    for owner_kind, owner in owners.items():
        for resource_kind, policy in policies.items():
            resource_id = f"{owner}:{resource_kind}"
            store.share(owner, resource_id, kind=resource_kind)
            store.allow(resource_id, list(policy.expressions), description=policy.description)
            audience = service.authorized_audience(resource_id)
            print(
                f"{owner_kind:<18} {graph.out_degree(owner):>10} {resource_kind:<18} "
                f"{'; '.join(policy.expressions):<40} {len(audience) - 1:>9}"
            )

    # Contrast with the "all friends" list model for the hub owner.
    hub = owners["hub owner"]
    store.share(hub, "hub:all-friends-list", kind="photos")
    store.allow("hub:all-friends-list", "friend+[1]", description="the Facebook-list baseline")
    flat_audience = service.authorized_audience("hub:all-friends-list")
    fine_audience = service.authorized_audience(f"{hub}:birthday photos")
    print()
    print(f"hub owner {hub!r}: a flat friend list reaches {len(flat_audience) - 1} users, "
          f"the 'family and friends' rule reaches {len(fine_audience) - 1}.")

    # A few concrete access requests, audited.
    print()
    some_users = sorted(graph.users())[:5]
    for requester in some_users:
        result = service.check(requester, f"{hub}:birthday photos")
        print(f"  request by {requester:<6}: {'GRANTED' if result.granted else 'DENIED'}")
    print()
    print(f"audit log: {len(audit)} decisions recorded, grant rate {audit.grant_rate():.2f}, "
          f"average latency {1000 * audit.average_latency():.2f} ms")


if __name__ == "__main__":
    main()
