#!/usr/bin/env python3
"""Quickstart: protect a resource with a reachability-based access rule.

Builds a tiny social network, shares a photo album, writes one access rule in
the paper's path-expression language, and checks a few access requests with
explanations.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AccessControlEngine, AuditLog, GraphBuilder, PolicyStore


def main() -> None:
    # 1. A small social graph: users carry attributes, relationships carry types.
    builder = GraphBuilder(name="quickstart", symmetric_labels={"friend"})
    builder.user("alice", age=24, gender="female", city="paris")
    builder.user("bob", age=31, city="paris")
    builder.user("carol", age=27, city="berlin")
    builder.user("dan", age=16, city="paris")
    builder.user("erin", age=45, city="rome")
    builder.relate("alice", "bob", "friend", trust=0.9)
    builder.relate("bob", "carol", "friend", trust=0.7)
    builder.relate("alice", "erin", "colleague")
    builder.relate("carol", "dan", "parent")
    graph = builder.build()
    print(f"built {graph}")

    # 2. Alice shares an album and states who may see it: her friends and the
    #    friends of her friends, as long as they are adults.
    store = PolicyStore()
    store.share("alice", "holiday-album", kind="photos", title="Holidays 2026")
    rule = store.allow(
        "holiday-album",
        "friend*[1,2]{age >= 18}",
        description="adult friends up to two hops away",
    )
    print()
    print(rule.describe())

    # 3. The engine intercepts access requests and evaluates the rule as a
    #    reachability query between Alice and the requester.
    audit = AuditLog()
    engine = AccessControlEngine(graph, store, audit_log=audit)

    print()
    for requester in ("bob", "carol", "dan", "erin"):
        decision = engine.check_access(requester, "holiday-album")
        verdict = "GRANTED" if decision.granted else "DENIED"
        print(f"  {requester:>6}: {verdict}")

    # 4. Decisions come with explanations (which rule matched, via which path).
    print()
    print(engine.explain("carol", "holiday-album"))

    # 5. The whole authorized audience can be materialized at once.
    print()
    print("authorized audience:", sorted(engine.authorized_audience("holiday-album")))

    # 6. Audiences for MANY resources are answered in one bulk pass:
    #    authorized_audiences groups the access conditions by path expression
    #    and runs one multi-source sweep per distinct expression, instead of
    #    one traversal per resource.
    store.share("bob", "board-games", kind="wishlist")
    store.allow("board-games", "friend*[1,2]", description="friends of friends")
    store.share("carol", "travel-notes", kind="notes")
    store.allow("travel-notes", "friend*[1,2]", description="friends of friends")
    print()
    audiences = engine.authorized_audiences(["holiday-album", "board-games", "travel-notes"])
    for resource_id, audience in sorted(audiences.items()):
        print(f"  {resource_id:>13}: {sorted(audience)}")
    # The shared "friend*[1,2]" condition of bob and carol was materialized
    # by ONE sweep; the planner's verdict is recorded per expression.
    for text, plan in engine.last_audience_plans.items():
        print(f"  sweep for {text!r}: direction={plan.direction} ({plan.owners} owners)")

    # 7. The same batching exists one layer down on the reachability engine:
    #    find_targets_many materializes several owners' reachable sets in one
    #    shared product walk (here: everyone's adult friend-of-friend ball).
    reach = engine.reachability
    audiences = reach.find_targets_many(["alice", "bob", "carol"], "friend*[1,2]{age >= 18}")
    print()
    for owner, targets in sorted(audiences.items()):
        print(f"  {owner} reaches {sorted(targets)}")

    print()
    print(f"audit log: {len(audit)} decisions, grant rate {audit.grant_rate():.2f}")


if __name__ == "__main__":
    main()
