#!/usr/bin/env python3
"""Quickstart: protect a resource with a reachability-based access rule.

Builds a tiny social network, shares a photo album, writes one access rule in
the paper's path-expression language, and checks a few access requests — all
through the :class:`repro.GraphService` facade, the one session object that
owns the graph, the policy store, the query planner and every backend.
Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AuditLog, GraphBuilder, GraphService, PolicyStore


def main() -> None:
    # 1. A small social graph: users carry attributes, relationships carry types.
    builder = GraphBuilder(name="quickstart", symmetric_labels={"friend"})
    builder.user("alice", age=24, gender="female", city="paris")
    builder.user("bob", age=31, city="paris")
    builder.user("carol", age=27, city="berlin")
    builder.user("dan", age=16, city="paris")
    builder.user("erin", age=45, city="rome")
    builder.relate("alice", "bob", "friend", trust=0.9)
    builder.relate("bob", "carol", "friend", trust=0.7)
    builder.relate("alice", "erin", "colleague")
    builder.relate("carol", "dan", "parent")
    graph = builder.build()
    print(f"built {graph}")

    # 2. Alice shares an album and states who may see it: her friends and the
    #    friends of her friends, as long as they are adults.
    store = PolicyStore()
    store.share("alice", "holiday-album", kind="photos", title="Holidays 2026")
    rule = store.allow(
        "holiday-album",
        "friend*[1,2]{age >= 18}",
        description="adult friends up to two hops away",
    )
    print()
    print(rule.describe())

    # 3. One service fronts everything: it plans each query (picking a
    #    reachability backend), executes it, and returns a result that
    #    carries its own ExecutionPlan.
    audit = AuditLog()
    service = GraphService(graph, store, audit_log=audit)

    print()
    for requester in ("bob", "carol", "dan", "erin"):
        result = service.check(requester, "holiday-album")
        verdict = "GRANTED" if result.granted else "DENIED"
        print(f"  {requester:>6}: {verdict}  (backend: {result.plan.backend})")

    # 4. Decisions come with explanations (which rule matched, via which path).
    print()
    print(service.explain("carol", "holiday-album"))

    # 5. The whole authorized audience can be materialized at once.
    print()
    print("authorized audience:", sorted(service.authorized_audience("holiday-album")))

    # 6. Audiences for MANY resources are answered in one bulk pass: the
    #    service groups access conditions by path expression and runs one
    #    multi-source sweep per distinct expression.  The result carries the
    #    executed sweep plans — no side-channel to read afterwards.
    store.share("bob", "board-games", kind="wishlist")
    store.allow("board-games", "friend*[1,2]", description="friends of friends")
    store.share("carol", "travel-notes", kind="notes")
    store.allow("travel-notes", "friend*[1,2]", description="friends of friends")
    print()
    bulk = service.bulk_access(["holiday-album", "board-games", "travel-notes"])
    for resource_id, audience in sorted(bulk.audiences.items()):
        print(f"  {resource_id:>13}: {sorted(audience)}")
    # The shared "friend*[1,2]" condition of bob and carol was materialized
    # by ONE sweep; its plan travels on the result.
    for text, plan in bulk.sweep_plans.items():
        print(f"  sweep for {text!r}: direction={plan.direction} ({plan.owners} owners)")

    # 7. The same batching exists for raw reachability: one AudienceQuery
    #    materializes several owners' reachable sets in one shared product
    #    walk (here: everyone's adult friend-of-friend ball).
    result = service.audience(["alice", "bob", "carol"], "friend*[1,2]{age >= 18}")
    print()
    for owner, targets in sorted(result.audiences.items()):
        print(f"  {owner} reaches {sorted(targets)}")
    print(f"  (planned: {result.plan.reason})")

    print()
    print(f"audit log: {len(audit)} decisions, grant rate {audit.grant_rate():.2f}")


if __name__ == "__main__":
    main()
