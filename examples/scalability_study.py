#!/usr/bin/env python3
"""Mini scalability study: backends compared across graph sizes.

A scripted, smaller version of the PERF-1 / PERF-2 benchmark experiments,
meant to be read and re-run interactively: it generates scale-free networks
of increasing size, builds every backend, and prints index construction time,
index size and mean per-query latency side by side.

Run with::

    python examples/scalability_study.py            # default sizes
    python examples/scalability_study.py 100 400    # custom sizes
"""

from __future__ import annotations

import sys

from repro import GraphService
from repro.graph.generators import preferential_attachment_graph
from repro.policy import PathExpression
from repro.reachability import available_backends
from repro.workloads.metrics import MetricSeries, Timer
from repro.workloads.queries import random_query_mix

QUERY_EXPRESSIONS = (
    "friend+[1,2]",
    "friend+[1,2]/colleague+[1]",
    "colleague*[1,2]",
)


#: Owners whose full audiences are materialized in ONE bulk call per backend
#: (find_targets_many: one compiled automaton, one shared multi-source sweep).
AUDIENCE_EXPRESSION = "friend*[1,2]"
AUDIENCE_OWNERS = 16


def study(sizes) -> MetricSeries:
    series = MetricSeries(
        "backend comparison (Barabási–Albert graphs, 30 queries per size)",
        ["users", "backend", "build_seconds", "index_entries", "mean_query_ms",
         "bulk_audience_ms"],
    )
    expressions = [PathExpression.parse(text) for text in QUERY_EXPRESSIONS]
    audience_expression = PathExpression.parse(AUDIENCE_EXPRESSION)
    for size in sizes:
        graph = preferential_attachment_graph(size, edges_per_node=3, seed=99)
        pairs = [(s, t) for s, t, _e in random_query_mix(graph, 30, seed=size)]
        owners = sorted(graph.users(), key=str)[:AUDIENCE_OWNERS]
        # One service per size; plan pins route the same queries through
        # every backend, "planner-auto" lets the cost model choose per query.
        service = GraphService(graph, cache_size=0)
        for backend in list(available_backends()) + ["planner-auto"]:
            pin = None if backend == "planner-auto" else backend
            with Timer() as build_timer:
                if pin is not None:
                    evaluator = service.engine(pin).evaluator
            with Timer() as query_timer:
                for index, (source, target) in enumerate(pairs):
                    expression = expressions[index % len(expressions)]
                    service.reach(
                        source, target, expression,
                        collect_witness=False, backend=pin,
                    )
            # The bulk audience API: one AudienceQuery materializes many
            # owners' audiences in one shared sweep, not |owners|
            # independent traversals.
            with Timer() as audience_timer:
                service.audience(owners, audience_expression, backend=pin)
            series.add(
                users=size,
                backend=backend,
                build_seconds=build_timer.elapsed,
                index_entries=int(
                    service.engine(pin).statistics().get("index_entries", 0)
                ) if pin is not None else 0,
                mean_query_ms=1000.0 * query_timer.elapsed / max(1, len(pairs)),
                bulk_audience_ms=1000.0 * audience_timer.elapsed,
            )
    return series


def main() -> None:
    sizes = [int(argument) for argument in sys.argv[1:]] or [50, 100, 200]
    print(f"running the study for sizes {sizes} (backends: {', '.join(available_backends())})")
    print()
    series = study(sizes)
    print(series.to_table())
    print()
    print("reading guide: 'bfs'/'dfs' pay nothing up front and everything per query;")
    print("'transitive-closure' and 'cluster-index' pay an offline build (and storage)")
    print("to keep per-query latency flat as the graph grows.  'planner-auto' lets the")
    print("service's cost model pick a backend per query (build times show as zero")
    print("because auto-selection only builds an index once enough mutation-free")
    print(f"queries amortize it).  'bulk_audience_ms' is one AudienceQuery")
    print(f"materializing {AUDIENCE_OWNERS} owners' '{AUDIENCE_EXPRESSION}' audiences")
    print("in a single multi-source sweep.")


if __name__ == "__main__":
    main()
