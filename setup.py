"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that the package can also be installed in environments without the ``wheel``
package (offline boxes), via ``python setup.py develop`` or legacy
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
