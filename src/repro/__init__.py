"""repro — reachability-based access control for social networks.

A faithful, self-contained reproduction of

    Imen Ben Dhia (advisor: Talel Abdessalem),
    "Access Control in Social Networks: A Reachability-Based Approach",
    EDBT/ICDT Workshops 2012.

The library has these layers (see docs/architecture.md for how they fit):

* :mod:`repro.graph` — the directed, edge-labelled social graph substrate
  (Definition 1), plus synthetic-network generators and serialization.
* :mod:`repro.policy` — the access-control model (Definitions 2–3): path
  expressions, access conditions and rules, the policy store, the
  enforcement engine, auditing, and the Carminati-style baseline.
* :mod:`repro.reachability` — ordered label-constraint reachability query
  evaluation (Section 3): online BFS/DFS, transitive closure, and the
  line-graph + 2-hop-cover + cluster-join-index pipeline.
* :mod:`repro.storage` — the in-memory relational substrate (tables,
  B+-tree, reachability joins) the index is stored in.
* :mod:`repro.service` — the stable public surface: typed queries, the
  query planner (per-query backend auto-selection), plan-carrying results
  and the :class:`~repro.service.GraphService` session facade.
* :mod:`repro.serving` — the asyncio serving front end: request
  coalescing, per-tenant sessions, admission control with deadlines, and
  the JSON-lines TCP protocol server (``python -m repro.serving``).
* :mod:`repro.reliability` — deterministic fault injection over the
  snapshot I/O seam, the crash-consistency simulator, query budgets
  (:class:`~repro.reliability.QueryGuard`) and the index-maintenance
  circuit breaker (:class:`~repro.reliability.CircuitBreaker`).

Quickstart
----------
>>> from repro import GraphService, PolicyStore, SocialGraph
>>> graph = SocialGraph()
>>> for user in ("alice", "bob", "carol"):
...     graph.add_user(user)
>>> _ = graph.add_relationship("alice", "bob", "friend")
>>> _ = graph.add_relationship("bob", "carol", "friend")
>>> store = PolicyStore()
>>> _ = store.share("alice", "holiday-album", kind="photos")
>>> _ = store.allow("holiday-album", "friend+[1,2]")
>>> service = GraphService(graph, store)
>>> service.is_allowed("carol", "holiday-album")
True
>>> service.check("carol", "holiday-album").plan.backend in service.backends
True
"""

from repro.graph import (
    GraphBuilder,
    Relationship,
    SnapshotStore,
    SocialGraph,
    graph_from_edges,
)
from repro.policy import (
    AccessControlEngine,
    AccessCondition,
    AccessDecision,
    AccessRule,
    AttributeCondition,
    AuditLog,
    CarminatiEngine,
    CarminatiRule,
    DepthInterval,
    Direction,
    Effect,
    PathExpression,
    PolicyStore,
    Resource,
    Step,
)
from repro.reachability import (
    ClusterIndexEvaluator,
    EvaluationResult,
    OnlineBFSEvaluator,
    OnlineDFSEvaluator,
    ReachabilityEngine,
    ReachabilityQuery,
    TransitiveClosureEvaluator,
    available_backends,
    create_evaluator,
)
from repro.reliability import (
    CircuitBreaker,
    CrashConsistencySimulator,
    FaultInjector,
    QueryGuard,
    RecoveryReport,
)
from repro.service import (
    AccessQuery,
    AccessResult,
    AudienceQuery,
    AudienceResult,
    BackendEstimate,
    BulkAccessQuery,
    BulkAccessResult,
    BulkReachResult,
    ExecutionPlan,
    GraphService,
    PlannedResult,
    QueryPlanner,
    ReachQuery,
    ReachResult,
)
from repro.serving import (
    AdmissionController,
    AdmissionRejected,
    AsyncGraphClient,
    RequestCoalescer,
    ServingServer,
    TenantRegistry,
    TenantSession,
    UnknownTenantError,
)
from repro.sharding import (
    BoundarySummary,
    CommunityPartitioner,
    Partition,
    ShardedGraph,
    ShardRouter,
    ShardServingPool,
    ShardSweepPlan,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # graph
    "SocialGraph",
    "Relationship",
    "GraphBuilder",
    "graph_from_edges",
    "SnapshotStore",
    # policy
    "PathExpression",
    "Step",
    "Direction",
    "DepthInterval",
    "AttributeCondition",
    "AccessCondition",
    "AccessRule",
    "Resource",
    "PolicyStore",
    "AccessControlEngine",
    "AccessDecision",
    "Effect",
    "AuditLog",
    "CarminatiEngine",
    "CarminatiRule",
    # reachability
    "ReachabilityEngine",
    "ReachabilityQuery",
    "EvaluationResult",
    "OnlineBFSEvaluator",
    "OnlineDFSEvaluator",
    "TransitiveClosureEvaluator",
    "ClusterIndexEvaluator",
    "available_backends",
    "create_evaluator",
    # service (the stable query/plan/result surface)
    "GraphService",
    "QueryPlanner",
    "ExecutionPlan",
    "BackendEstimate",
    "ReachQuery",
    "AudienceQuery",
    "AccessQuery",
    "BulkAccessQuery",
    "PlannedResult",
    "ReachResult",
    "AudienceResult",
    "AccessResult",
    "BulkAccessResult",
    "BulkReachResult",
    # serving (async front-end: coalescing, tenants, admission control)
    "AdmissionController",
    "AdmissionRejected",
    "AsyncGraphClient",
    "RequestCoalescer",
    "ServingServer",
    "TenantRegistry",
    "TenantSession",
    "UnknownTenantError",
    # reliability (fault injection, crash recovery, degradation)
    "CircuitBreaker",
    "CrashConsistencySimulator",
    "FaultInjector",
    "QueryGuard",
    "RecoveryReport",
    # sharding (community partitions, boundary summaries, multiprocess)
    "BoundarySummary",
    "CommunityPartitioner",
    "Partition",
    "ShardRouter",
    "ShardServingPool",
    "ShardSweepPlan",
    "ShardedGraph",
]
