"""Shared helper for the PR 5 API-redesign deprecation shims.

The old mutable side-channels (``last_sweep_plan`` on every backend and on
:class:`~repro.reachability.engine.ReachabilityEngine`,
``last_audience_plans`` on
:class:`~repro.policy.engine.AccessControlEngine`) survive as properties
that emit a :class:`DeprecationWarning` on read and point at the
result-carried replacement.  Python's default warning filter deduplicates
by call site, so a hot loop reading a deprecated attribute warns once.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit a :class:`DeprecationWarning` attributed to the caller's caller."""
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
