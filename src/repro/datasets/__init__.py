"""Bundled datasets: the Figure-1 example graph and real-graph fixtures."""

from repro.datasets.real_graphs import KARATE_CLUB_PATH, karate_club
from repro.datasets.paper_graph import (
    EDGES,
    LABELS,
    Q1_EXPECTED_AUDIENCE,
    Q1_EXPRESSION,
    USERS,
    WORKED_EXAMPLE_EXPECTED_AUDIENCE,
    WORKED_EXAMPLE_EXPRESSION,
    WORKED_EXAMPLE_WITNESS_NODES,
    paper_graph,
)

__all__ = [
    "paper_graph",
    "karate_club",
    "KARATE_CLUB_PATH",
    "USERS",
    "EDGES",
    "LABELS",
    "Q1_EXPRESSION",
    "Q1_EXPECTED_AUDIENCE",
    "WORKED_EXAMPLE_EXPRESSION",
    "WORKED_EXAMPLE_EXPECTED_AUDIENCE",
    "WORKED_EXAMPLE_WITNESS_NODES",
]
