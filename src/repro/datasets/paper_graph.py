"""The paper's running example: the Figure-1 social subgraph and its known facts.

Seven users (Alice, Bill, Colin, David, Elena, Fred, George) connected by
twelve labelled relationships over the alphabet ``{friend, colleague,
parent}``.  The edge list is taken from the enumeration under Figure 5
(``Friend A-C``, ``Colleague A-D``, ``Friend A-B``, ``Friend C-D``,
``Friend E-B``, ``Friend B-E``, ``Parent C-F``, ``Colleague D-F``,
``Parent D-G``, ``Friend E-D``, ``Friend E-G``, ``Friend F-G``), which is the
authoritative machine-readable description of the figure.  Alice's attribute
tuple ``(gender=female, age=24)`` is given explicitly in the paper; the other
users receive plausible attributes (documented below) so that
attribute-condition examples have something to bite on.

Besides the graph itself, this module records the *expected outcomes* of the
paper's worked examples (query Q1 of Figure 2, the ``friend/parent/friend``
example of Section 3.4, the audience examples of Section 2), which the golden
tests and the figure benchmarks assert against.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.social_graph import SocialGraph

__all__ = [
    "ALICE", "BILL", "COLIN", "DAVID", "ELENA", "FRED", "GEORGE",
    "USERS", "EDGES", "LABELS",
    "paper_graph",
    "Q1_EXPRESSION", "Q1_EXPECTED_AUDIENCE",
    "WORKED_EXAMPLE_EXPRESSION", "WORKED_EXAMPLE_EXPECTED_AUDIENCE",
    "WORKED_EXAMPLE_WITNESS_NODES",
    "DAVID_INCOMING_FRIENDS", "DAVID_EXTENDED_AUDIENCE",
    "FRIEND_PATH_ALICE_GEORGE",
]

ALICE = "Alice"
BILL = "Bill"
COLIN = "Colin"
DAVID = "David"
ELENA = "Elena"
FRED = "Fred"
GEORGE = "George"

USERS: Dict[str, Dict[str, object]] = {
    # Alice's tuple is the one spelled out in the paper (Definition 1 example).
    ALICE: {"gender": "female", "age": 24, "job": "engineer", "city": "paris"},
    BILL: {"gender": "male", "age": 31, "job": "teacher", "city": "paris"},
    COLIN: {"gender": "male", "age": 29, "job": "biologist", "city": "berlin"},
    DAVID: {"gender": "male", "age": 35, "job": "biologist", "city": "paris"},
    ELENA: {"gender": "female", "age": 27, "job": "doctor", "city": "rome"},
    FRED: {"gender": "male", "age": 12, "job": "student", "city": "berlin"},
    GEORGE: {"gender": "male", "age": 14, "job": "student", "city": "paris"},
}

# (source, target, label, attributes) — the twelve edges of Figure 1.
EDGES: List[Tuple[str, str, str, Dict[str, object]]] = [
    (ALICE, COLIN, "friend", {"topic": "babysitting", "trust": 0.8}),
    (ALICE, DAVID, "colleague", {"topic": "biology", "trust": 0.6}),
    (ALICE, BILL, "friend", {}),
    (COLIN, DAVID, "friend", {}),
    (ELENA, BILL, "friend", {}),
    (BILL, ELENA, "friend", {}),
    (COLIN, FRED, "parent", {}),
    (DAVID, FRED, "colleague", {}),
    (DAVID, GEORGE, "parent", {}),
    (ELENA, DAVID, "friend", {}),
    (ELENA, GEORGE, "friend", {}),
    (FRED, GEORGE, "friend", {}),
]

LABELS: Tuple[str, ...] = ("colleague", "friend", "parent")


def paper_graph() -> SocialGraph:
    """Build and return the Figure-1 social subgraph."""
    graph = SocialGraph(name="edbt2012-figure1")
    for user, attributes in USERS.items():
        graph.add_user(user, **attributes)
    for source, target, label, attributes in EDGES:
        graph.add_relationship(source, target, label, **attributes)
    return graph


# --------------------------------------------------------------------------
# Worked examples and their expected outcomes
# --------------------------------------------------------------------------

# Figure 2 / query Q1: "the colleagues of Alice's friends within 2 hops",
# written Alice/friend+[1,2]/colleague+[1].  Friends of Alice within two hops
# are {Colin, Bill, David, Elena}; the only outgoing colleague edge from that
# set is David -> Fred, so the authorized audience is exactly {Fred}.
Q1_EXPRESSION = "friend+[1,2]/colleague+[1]"
Q1_EXPECTED_AUDIENCE: Set[str] = {FRED}

# Section 3.4 worked example: Alice shares with "the friends of her friends'
# parents" (path /friend/parent/friend); George requests access and the
# system grants it through Alice -> Colin -> Fred -> George.
WORKED_EXAMPLE_EXPRESSION = "friend+[1]/parent+[1]/friend+[1]"
WORKED_EXAMPLE_EXPECTED_AUDIENCE: Set[str] = {GEORGE}
WORKED_EXAMPLE_WITNESS_NODES: List[str] = [ALICE, COLIN, FRED, GEORGE]

# Section 2 audience examples around David: "David is able to share his jokes
# with those who consider him as a friend (Elena and Colin), and he can extend
# the audience to their friends (George and Bill, for Elena)".
DAVID_INCOMING_FRIENDS: Set[str] = {ELENA, COLIN}
DAVID_INCOMING_FRIENDS_EXPRESSION = "friend-[1]"
DAVID_EXTENDED_AUDIENCE_EXPRESSION = "friend-[1]/friend+[1]"
# Friends of Elena: Bill, David, George; friends of Colin: David.  David, the
# owner, is excluded when materializing the audience of *other* users, but the
# raw reachability set contains him as well.
DAVID_EXTENDED_AUDIENCE: Set[str] = {BILL, GEORGE, DAVID}

# Definition 1 example: "from Alice to George, there is a friend-typed path
# (Alice-Bill-Elena-George) of length 3".
FRIEND_PATH_ALICE_GEORGE: List[str] = [ALICE, BILL, ELENA, GEORGE]
FRIEND_PATH_EXPRESSION = "friend+[3]"
