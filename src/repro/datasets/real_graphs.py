"""Bundled real-graph fixtures in SNAP edge-list form.

Synthetic generators (:mod:`repro.graph.generators`) cover scale, but their
degree sequences are tame; the scenario-diversity benchmarks also want a
*real* topology — hubs, a heavy clustering coefficient, two communities.
The classic here is **Zachary's karate club** (W. W. Zachary, *An
information flow model for conflict and fission in small groups*, Journal of
Anthropological Research 33, 1977): 34 members, 78 undirected friendship
ties, the fruit-fly of social-network analysis and small enough to commit
as a fixture.

The file is stored exactly the way SNAP distributes graphs — ``#`` comment
header, one whitespace-separated node pair per line — so it doubles as the
test fixture for :func:`repro.graph.io.load_edge_list`.
"""

from __future__ import annotations

from pathlib import Path

from repro.graph.io import load_edge_list
from repro.graph.social_graph import SocialGraph

__all__ = ["KARATE_CLUB_PATH", "karate_club"]

#: The bundled SNAP-style edge-list file (78 undirected pairs, 34 nodes).
KARATE_CLUB_PATH = Path(__file__).parent / "data" / "karate_club.txt"


def karate_club(*, label: str = "friend", directed: bool = False) -> SocialGraph:
    """Load the karate-club fixture as a labelled :class:`SocialGraph`.

    Every tie gets ``label`` (the file itself is unlabelled, like all SNAP
    archives); ``directed=False`` (the default, matching the source data)
    materializes both directions of each pair, yielding 156 directed
    relationships over 34 users.
    """
    return load_edge_list(
        KARATE_CLUB_PATH, label=label, name="karate-club", directed=directed
    )
