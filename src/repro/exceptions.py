"""Exception hierarchy shared by every subpackage of :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError`, so that
callers embedding the library can catch a single base class.  Each subsystem
(graph, policy, reachability, storage) has its own intermediate base class,
mirroring the package layout described in ``docs/architecture.md``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Graph substrate errors
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for errors raised by the social-graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A user id was referenced that is not present in the graph."""

    def __init__(self, node):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its args; keep it readable.
        return f"user {self.node!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """A (source, target, label) relationship was referenced but not found."""

    def __init__(self, source, target, label):
        super().__init__((source, target, label))
        self.source = source
        self.target = target
        self.label = label

    def __str__(self) -> str:
        return (
            f"relationship {self.source!r} -[{self.label}]-> {self.target!r} "
            "is not in the graph"
        )


class DuplicateNodeError(GraphError):
    """A user id was added twice to the same graph."""


class DuplicateEdgeError(GraphError):
    """The same (source, target, label) relationship was added twice."""


class GraphFormatError(GraphError):
    """A serialized graph document could not be parsed."""


class SnapshotFormatError(GraphFormatError):
    """A persisted compiled-graph snapshot (or delta segment) is unreadable.

    Raised for corrupt, truncated or version-mismatched snapshot files —
    never a raw :class:`struct.error` and never silently wrong CSR rows.
    Carries the offending ``path`` and the header/section ``field`` that
    failed validation, so operators can tell a torn write from a format
    bump.  Callers are expected to fall back to a clean recompile
    (:meth:`SnapshotStore.load_or_compile` does exactly that).
    """

    def __init__(self, path, field: str, message: str):
        super().__init__(f"{path}: bad snapshot field {field!r}: {message}")
        self.path = path
        self.field = field
        self.reason = message


class SnapshotStaleError(GraphError):
    """A persisted snapshot is readable but cannot serve the live graph.

    The snapshot's source epoch does not match the graph and the gap is not
    covered by the mutation journal (or the structural cross-checks failed).
    Loading refuses rather than serving silently stale data; callers fall
    back to a recompile and rewrite the store.
    """

    def __init__(self, path, message: str):
        super().__init__(f"{path}: stale snapshot: {message}")
        self.path = path
        self.reason = message


# ---------------------------------------------------------------------------
# Policy (access-control model) errors
# ---------------------------------------------------------------------------


class PolicyError(ReproError):
    """Base class for errors raised by the access-control model."""


class PathExpressionSyntaxError(PolicyError, ValueError):
    """A textual path expression could not be parsed.

    Carries the offending expression and the position of the error so that
    user interfaces can point at the mistake.
    """

    def __init__(self, expression: str, position: int, message: str):
        super().__init__(f"{message} (at position {position} in {expression!r})")
        self.expression = expression
        self.position = position
        self.reason = message


class RuleValidationError(PolicyError):
    """An access rule is structurally invalid (e.g. empty condition set)."""


class ResourceNotFoundError(PolicyError, KeyError):
    """A resource id was referenced that is not registered in the store."""

    def __init__(self, resource_id):
        super().__init__(resource_id)
        self.resource_id = resource_id

    def __str__(self) -> str:
        return f"resource {self.resource_id!r} is not registered"


class RuleNotFoundError(PolicyError, KeyError):
    """An access-rule id was referenced that is not registered in the store."""

    def __init__(self, rule_id):
        super().__init__(rule_id)
        self.rule_id = rule_id

    def __str__(self) -> str:
        return f"access rule {self.rule_id!r} is not registered"


class UnknownOperatorError(PolicyError, ValueError):
    """An attribute condition used a comparison operator we do not support."""


# ---------------------------------------------------------------------------
# Reachability / query-evaluation errors
# ---------------------------------------------------------------------------


class ReachabilityError(ReproError):
    """Base class for errors raised by the reachability query engines."""


class UnknownBackendError(ReachabilityError, KeyError):
    """An evaluation backend name was requested that is not registered."""

    def __init__(self, name, available=()):
        super().__init__(name)
        self.name = name
        self.available = tuple(available)

    def __str__(self) -> str:
        hint = f" (available: {', '.join(self.available)})" if self.available else ""
        return f"unknown reachability backend {self.name!r}{hint}"


class IndexNotBuiltError(ReachabilityError, RuntimeError):
    """A query was submitted to an index-backed evaluator before ``build()``."""


class QueryError(ReachabilityError, ValueError):
    """A reachability query is malformed (e.g. empty step sequence)."""


class QueryBudgetExceeded(ReachabilityError):
    """A query exhausted its :class:`~repro.reliability.guard.QueryGuard` budget.

    Raised cooperatively from inside the traversal sweep loops when the
    active guard runs in ``"raise"`` mode (point-shaped queries, where a
    partial answer would be *wrong* rather than merely incomplete).  Bulk
    query shapes run the guard in ``"partial"`` mode instead and surface a
    truncated result with ``partial=True`` — they never raise this.
    Carries what tripped (``"steps"`` or ``"deadline"``) plus the budget and
    the amount spent, so callers can distinguish a runaway traversal from a
    too-tight deadline.
    """

    def __init__(self, limit: str, budget, spent):
        super().__init__(
            f"query budget exceeded: {limit} limit {budget!r} reached "
            f"after spending {spent!r}"
        )
        self.limit = limit
        self.budget = budget
        self.spent = spent


# ---------------------------------------------------------------------------
# Serving front-end errors
# ---------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for errors raised by the async serving front-end."""


class AdmissionRejected(ServingError):
    """A request was refused at admission because the pending queue is full.

    The serving layer bounds the number of admitted-but-unfinished requests
    per tenant; past that bound, overload degrades to an immediate typed
    rejection instead of unbounded queueing latency.  Carries the tenant,
    the observed ``pending`` depth and the configured ``limit`` so clients
    can implement informed backoff.
    """

    def __init__(self, tenant, pending: int, limit: int):
        super().__init__(
            f"tenant {tenant!r}: admission rejected, {pending} requests "
            f"already pending (limit {limit})"
        )
        self.tenant = tenant
        self.pending = pending
        self.limit = limit


class UnknownTenantError(ServingError, KeyError):
    """A tenant id was referenced that is not registered with the serving layer."""

    def __init__(self, tenant, available=()):
        super().__init__(tenant)
        self.tenant = tenant
        self.available = tuple(available)

    def __str__(self) -> str:
        hint = (
            f" (registered: {', '.join(map(repr, self.available))})"
            if self.available
            else ""
        )
        return f"unknown tenant {self.tenant!r}{hint}"


class ProtocolError(ServingError, ValueError):
    """A serving-protocol frame is malformed (bad JSON, missing fields...)."""


# ---------------------------------------------------------------------------
# Storage substrate errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for errors raised by the in-memory relational substrate."""


class SchemaError(StorageError, ValueError):
    """A row does not match the schema of the table it is inserted into."""


class DuplicateKeyError(StorageError):
    """A unique key constraint was violated."""


class TableNotFoundError(StorageError, KeyError):
    """A table name was referenced that is not present in the catalog."""

    def __init__(self, name):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"table {self.name!r} is not in the catalog"
