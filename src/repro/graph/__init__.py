"""Social graph substrate: the directed, edge-labelled graph of Definition 1.

Public entry points:

* :class:`~repro.graph.social_graph.SocialGraph` — the graph itself.
* :class:`~repro.graph.builder.GraphBuilder` / :func:`~repro.graph.builder.graph_from_edges`
  — convenient construction.
* :mod:`~repro.graph.generators` — synthetic OSN topologies for benchmarks.
* :mod:`~repro.graph.io` — JSON / edge-list serialization.
* :mod:`~repro.graph.statistics` — workload characterization.
* :mod:`~repro.graph.compiled` — derived CSR snapshots the reachability
  engines traverse (rebuilt lazily from the canonical graph by epoch).
* :mod:`~repro.graph.snapshot` — the persistent mmap snapshot format and
  :class:`~repro.graph.snapshot.SnapshotStore` (base file + delta segments,
  zero-copy multi-process serving).
"""

from repro.graph.builder import GraphBuilder, graph_from_edges
from repro.graph.compiled import CompiledGraph, LabelDegreeStats, compile_graph
from repro.graph.paths import Path, Traversal, is_adjacent_chain, path_from_nodes
from repro.graph.snapshot import SnapshotStore, load_snapshot, save_snapshot
from repro.graph.social_graph import AttributeMap, Relationship, SocialGraph
from repro.graph.views import GraphView, label_view, trust_view, user_filter_view

__all__ = [
    "SocialGraph",
    "Relationship",
    "AttributeMap",
    "CompiledGraph",
    "LabelDegreeStats",
    "compile_graph",
    "SnapshotStore",
    "save_snapshot",
    "load_snapshot",
    "GraphBuilder",
    "graph_from_edges",
    "Path",
    "Traversal",
    "is_adjacent_chain",
    "path_from_nodes",
    "GraphView",
    "label_view",
    "trust_view",
    "user_filter_view",
]
