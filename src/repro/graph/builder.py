"""Fluent construction helpers for :class:`~repro.graph.social_graph.SocialGraph`.

The raw graph API requires endpoints to exist before a relationship is added,
which is the right contract for algorithmic code but tedious for examples,
tests and data loaders.  :class:`GraphBuilder` auto-creates users, supports
declaring relationships in bulk, and tracks symmetric relationship types so
that mutual links (``friend``) are added in both directions automatically.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.graph.social_graph import SocialGraph, UserId

__all__ = ["GraphBuilder", "graph_from_edges"]

EdgeSpec = Union[
    Tuple[UserId, UserId, str],
    Tuple[UserId, UserId, str, Mapping[str, Any]],
]


class GraphBuilder:
    """Incrementally build a :class:`SocialGraph` with a forgiving API.

    Examples
    --------
    >>> builder = GraphBuilder(symmetric_labels={"friend"})
    >>> builder.user("alice", age=24).user("bill", age=31)
    <repro.graph.builder.GraphBuilder ...>
    >>> builder.relate("alice", "bill", "friend")    # adds both directions
    <repro.graph.builder.GraphBuilder ...>
    >>> graph = builder.build()
    >>> graph.has_relationship("bill", "alice", "friend")
    True
    """

    def __init__(
        self,
        name: str = "",
        symmetric_labels: Optional[Iterable[str]] = None,
    ) -> None:
        self._graph = SocialGraph(name=name)
        self._symmetric: Set[str] = set(symmetric_labels or ())

    # -------------------------------------------------------------- declare

    def symmetric(self, *labels: str) -> "GraphBuilder":
        """Declare relationship types that should always be added both ways."""
        self._symmetric.update(labels)
        return self

    def user(self, user: UserId, **attributes: Any) -> "GraphBuilder":
        """Add (or update) a user with the given attributes."""
        self._graph.ensure_user(user, **attributes)
        return self

    def users(self, users: Iterable[UserId], **attributes: Any) -> "GraphBuilder":
        """Add several users sharing the same attribute defaults."""
        for user in users:
            self._graph.ensure_user(user, **attributes)
        return self

    def relate(
        self,
        source: UserId,
        target: UserId,
        label: str,
        **attributes: Any,
    ) -> "GraphBuilder":
        """Add a relationship, creating endpoints as needed.

        If the label was declared symmetric (or passed to ``symmetric_labels``
        at construction time) the reverse relationship is added as well.
        Re-adding an existing relationship is a no-op rather than an error,
        which makes data loaders idempotent.
        """
        self._graph.ensure_user(source)
        self._graph.ensure_user(target)
        if not self._graph.has_relationship(source, target, label):
            self._graph.add_relationship(source, target, label, **attributes)
        if label in self._symmetric and not self._graph.has_relationship(target, source, label):
            self._graph.add_relationship(target, source, label, **attributes)
        return self

    def relate_many(self, edges: Iterable[EdgeSpec]) -> "GraphBuilder":
        """Add relationships from ``(source, target, label[, attributes])`` tuples."""
        for edge in edges:
            if len(edge) == 3:
                source, target, label = edge  # type: ignore[misc]
                attrs: Mapping[str, Any] = {}
            else:
                source, target, label, attrs = edge  # type: ignore[misc]
            self.relate(source, target, label, **dict(attrs))
        return self

    def chain(self, users: Sequence[UserId], label: str, **attributes: Any) -> "GraphBuilder":
        """Link consecutive users of ``users`` with ``label`` relationships."""
        for source, target in zip(users, users[1:]):
            self.relate(source, target, label, **attributes)
        return self

    def star(self, center: UserId, leaves: Iterable[UserId], label: str, **attributes: Any) -> "GraphBuilder":
        """Link ``center`` to every user in ``leaves`` with ``label`` relationships."""
        for leaf in leaves:
            self.relate(center, leaf, label, **attributes)
        return self

    # ---------------------------------------------------------------- build

    def build(self) -> SocialGraph:
        """Return the constructed graph (the builder can keep being used)."""
        return self._graph

    def __repr__(self) -> str:
        return f"<repro.graph.builder.GraphBuilder {self._graph!r}>"


def graph_from_edges(
    edges: Iterable[EdgeSpec],
    *,
    name: str = "",
    symmetric_labels: Optional[Iterable[str]] = None,
    node_attributes: Optional[Mapping[UserId, Mapping[str, Any]]] = None,
) -> SocialGraph:
    """Build a graph in one call from an edge list and optional node attributes."""
    builder = GraphBuilder(name=name, symmetric_labels=symmetric_labels)
    if node_attributes:
        for user, attrs in node_attributes.items():
            builder.user(user, **dict(attrs))
    builder.relate_many(edges)
    return builder.build()
