"""Compiled CSR snapshots of a :class:`~repro.graph.social_graph.SocialGraph`.

The canonical graph structure is a dict-of-dict-of-dict adjacency keyed by
arbitrary hashable user ids — ideal for mutation and for the paper-facing
API, terrible for the traversal hot paths: every hop hashes a user id,
walks two dictionary levels and touches per-edge ``Relationship`` objects.

:class:`CompiledGraph` is the derived, rebuildable index layer on top: a
frozen snapshot that interns user ids and relationship labels to dense
integers and stores, per label, forward and reverse adjacency in CSR form
(one ``array('l')`` of offsets, one of targets).  The evaluation engines in
:mod:`repro.reachability` run their product searches entirely on these
integer arrays; user ids, attributes and witness ``Relationship`` objects
are translated back only at the API boundary.

Staleness contract
------------------
``SocialGraph`` stamps every mutation with an ``epoch`` counter.  A snapshot
remembers the epoch it was compiled at; :func:`compile_graph` returns the
cached snapshot while the epoch still matches and transparently rebuilds it
otherwise.  The snapshot is therefore always *lazily* consistent: engines
that call :func:`compile_graph` per query observe every committed mutation,
at the cost of one O(|V| + |E|) rebuild per burst of mutations.  Attribute
dictionaries are shared with the canonical graph (not copied), so reads
through :meth:`CompiledGraph.attributes_of` always see current values; only
*structural* interning (node set, label set, adjacency) needs the rebuild.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from dataclasses import dataclass

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import Relationship, SocialGraph, UserId

__all__ = ["CompiledGraph", "LabelDegreeStats", "build_csr", "compile_graph"]

#: CSR adjacency: ``targets[offsets[u]:offsets[u + 1]]`` are ``u``'s neighbours.
CSR = Tuple[array, array]

_SNAPSHOT_ATTR = "_compiled_snapshot"


def build_csr(pairs: Sequence[Tuple[int, int]], node_count: int) -> CSR:
    """Counting-sort ``(source, target)`` int pairs into a CSR adjacency.

    The one CSR builder of the codebase — the snapshot's per-label adjacency
    and every dense structure in :mod:`repro.reachability.interned` go
    through it.
    """
    counts = [0] * node_count
    for source, _target in pairs:
        counts[source] += 1
    offsets = array("l", [0]) * (node_count + 1)
    total = 0
    for node in range(node_count):
        offsets[node] = total
        total += counts[node]
    offsets[node_count] = total
    cursor = offsets.tolist()
    targets = array("l", [0]) * total
    for source, target in pairs:
        targets[cursor[source]] = target
        cursor[source] += 1
    return offsets, targets


@dataclass(frozen=True)
class LabelDegreeStats:
    """Degree statistics of one relationship label at snapshot time.

    ``mean_degree`` is edges over nodes (identical for the out and in sides
    — every edge has one source and one target); the max degrees expose
    hubs.  The audience direction planner consumes these to estimate
    forward-vs-reverse sweep fan-out.
    """

    label: str
    edges: int
    mean_degree: float
    max_out_degree: int
    max_in_degree: int


class CompiledGraph:
    """A frozen, integer-interned CSR snapshot of one :class:`SocialGraph`."""

    __slots__ = (
        "graph",
        "epoch",
        "node_ids",
        "node_index",
        "labels",
        "label_index",
        "attrs",
        "_forward",
        "_backward",
        "_forward_all",
        "_backward_all",
        "derived",
    )

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        self.epoch: int = getattr(graph, "epoch", 0)
        #: dense index -> user id, in the graph's (deterministic) insertion order
        self.node_ids: List[UserId] = list(graph.users())
        #: user id -> dense index
        self.node_index: Dict[UserId, int] = {
            user: index for index, user in enumerate(self.node_ids)
        }
        #: dense label id -> label (sorted, matching ``SocialGraph.labels()``)
        self.labels: Tuple[str, ...] = graph.labels()
        self.label_index: Dict[str, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        #: dense index -> live attribute mapping (shared with the graph)
        self.attrs: List[Mapping[str, Any]] = [
            graph._nodes[user] for user in self.node_ids
        ]
        per_label: List[List[Tuple[int, int]]] = [[] for _ in self.labels]
        everything: List[Tuple[int, int]] = []
        node_index = self.node_index
        label_index = self.label_index
        for user, index in node_index.items():
            for target, edges in graph._succ[user].items():
                target_index = node_index[target]
                seen_pair = False
                for label in edges:
                    per_label[label_index[label]].append((index, target_index))
                    if not seen_pair:
                        # The merged adjacency collapses parallel labels: one
                        # entry per (source, target) pair is enough for plain
                        # reachability sweeps.
                        everything.append((index, target_index))
                        seen_pair = True
        count = len(self.node_ids)
        self._forward: List[CSR] = [build_csr(pairs, count) for pairs in per_label]
        self._backward: List[CSR] = [
            build_csr([(target, source) for source, target in pairs], count)
            for pairs in per_label
        ]
        self._forward_all: CSR = build_csr(everything, count)
        self._backward_all: CSR = build_csr(
            [(target, source) for source, target in everything], count
        )
        #: derived per-snapshot indexes (e.g. the interned line index),
        #: keyed by the deriving module; they share this snapshot's lifetime,
        #: so epoch-based invalidation comes for free.
        self.derived: Dict[Any, Any] = {}

    # -------------------------------------------------------------- identity

    def is_stale(self) -> bool:
        """Whether the canonical graph has mutated since this snapshot was built."""
        return self.epoch != getattr(self.graph, "epoch", self.epoch)

    def number_of_nodes(self) -> int:
        """Return ``|V|`` at snapshot time."""
        return len(self.node_ids)

    def number_of_labels(self) -> int:
        """Return the size of the interned label alphabet."""
        return len(self.labels)

    def index_of(self, user: UserId) -> int:
        """Return the dense index of ``user`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self.node_index[user]
        except (KeyError, TypeError):
            raise NodeNotFoundError(user) from None

    def user_of(self, index: int) -> UserId:
        """Return the user id interned at ``index``."""
        return self.node_ids[index]

    def label_id(self, label: str) -> int:
        """Return the dense id of ``label``, or ``-1`` when the graph has no such edges."""
        return self.label_index.get(label, -1)

    def attributes_of(self, index: int) -> Mapping[str, Any]:
        """Return the (live) attribute mapping of the node at ``index``."""
        return self.attrs[index]

    # ------------------------------------------------------------- adjacency

    def forward(self, label_id: Optional[int] = None) -> CSR:
        """Return the forward CSR ``(offsets, targets)`` for one label (or merged)."""
        if label_id is None:
            return self._forward_all
        return self._forward[label_id]

    def backward(self, label_id: Optional[int] = None) -> CSR:
        """Return the reverse CSR ``(offsets, sources)`` for one label (or merged)."""
        if label_id is None:
            return self._backward_all
        return self._backward[label_id]

    def out_neighbors(self, index: int, label_id: Optional[int] = None) -> array:
        """Return the targets of edges leaving the node at ``index``."""
        offsets, targets = self.forward(label_id)
        return targets[offsets[index]:offsets[index + 1]]

    def in_neighbors(self, index: int, label_id: Optional[int] = None) -> array:
        """Return the sources of edges entering the node at ``index``."""
        offsets, sources = self.backward(label_id)
        return sources[offsets[index]:offsets[index + 1]]

    def out_degree(self, index: int, label_id: Optional[int] = None) -> int:
        """Return the snapshot out-degree of the node at ``index``."""
        offsets, _targets = self.forward(label_id)
        return offsets[index + 1] - offsets[index]

    def in_degree(self, index: int, label_id: Optional[int] = None) -> int:
        """Return the snapshot in-degree of the node at ``index``."""
        offsets, _sources = self.backward(label_id)
        return offsets[index + 1] - offsets[index]

    def number_of_edges(self, label_id: Optional[int] = None) -> int:
        """Return the number of CSR entries for one label (or distinct node pairs)."""
        offsets, _targets = self.forward(label_id)
        return offsets[-1]

    def degree_statistics(self) -> Tuple[LabelDegreeStats, ...]:
        """Per-label degree statistics, indexed by label id.

        Computed once per snapshot (one O(|V|) offset scan per label) and
        cached in :attr:`derived`, so epoch-based invalidation is inherited.
        The audience direction planner reads these to decide forward vs
        reverse sweeps.
        """
        stats: Optional[Tuple[LabelDegreeStats, ...]] = self.derived.get(
            "degree_statistics"
        )
        if stats is None:
            node_count = max(1, len(self.node_ids))
            rows = []
            for label_id, label in enumerate(self.labels):
                offsets, _targets = self._forward[label_id]
                reverse_offsets, _sources = self._backward[label_id]
                edges = offsets[-1]
                max_out = max(
                    (offsets[i + 1] - offsets[i] for i in range(len(offsets) - 1)),
                    default=0,
                )
                max_in = max(
                    (
                        reverse_offsets[i + 1] - reverse_offsets[i]
                        for i in range(len(reverse_offsets) - 1)
                    ),
                    default=0,
                )
                rows.append(
                    LabelDegreeStats(label, edges, edges / node_count, max_out, max_in)
                )
            stats = tuple(rows)
            self.derived["degree_statistics"] = stats
        return stats

    # --------------------------------------------------------------- witness

    def relationship(self, source: int, target: int, label_id: int) -> Relationship:
        """Return the canonical :class:`Relationship` behind one CSR edge.

        Witness paths are reconstructed on demand through this lookup, so the
        search cores never touch per-edge objects.
        """
        return self.graph.get_relationship(
            self.node_ids[source], self.node_ids[target], self.labels[label_id]
        )

    def __repr__(self) -> str:
        return (
            f"<CompiledGraph epoch={self.epoch}: {self.number_of_nodes()} nodes, "
            f"{self.number_of_edges()} node pairs, {len(self.labels)} labels>"
        )


def compile_graph(graph: SocialGraph) -> CompiledGraph:
    """Return the (lazily rebuilt) compiled snapshot of ``graph``.

    The snapshot is cached on the graph instance and reused until the graph's
    ``epoch`` moves, so repeated queries between mutations share one build.
    """
    snapshot: Optional[CompiledGraph] = getattr(graph, _SNAPSHOT_ATTR, None)
    if snapshot is None or snapshot.is_stale():
        snapshot = CompiledGraph(graph)
        setattr(graph, _SNAPSHOT_ATTR, snapshot)
    return snapshot
