"""Compiled CSR snapshots of a :class:`~repro.graph.social_graph.SocialGraph`.

The canonical graph structure is a dict-of-dict-of-dict adjacency keyed by
arbitrary hashable user ids — ideal for mutation and for the paper-facing
API, terrible for the traversal hot paths: every hop hashes a user id,
walks two dictionary levels and touches per-edge ``Relationship`` objects.

:class:`CompiledGraph` is the derived, rebuildable index layer on top: a
frozen snapshot that interns user ids and relationship labels to dense
integers and stores, per label, forward and reverse adjacency in CSR form
(one ``array('l')`` of offsets, one of targets).  The evaluation engines in
:mod:`repro.reachability` run their product searches entirely on these
integer arrays; user ids, attributes and witness ``Relationship`` objects
are translated back only at the API boundary.

Staleness contract
------------------
``SocialGraph`` stamps every mutation with an ``epoch`` counter.  A snapshot
remembers the epoch it was compiled at; :func:`compile_graph` returns the
cached snapshot while the epoch still matches and transparently brings it up
to date otherwise.  The snapshot is therefore always *lazily* consistent:
engines that call :func:`compile_graph` per query observe every committed
mutation.  Attribute dictionaries are shared with the canonical graph (not
copied), so reads through :meth:`CompiledGraph.attributes_of` always see
current values; only *structural* interning (node set, label set, adjacency)
needs refreshing.

Delta maintenance
-----------------
Refreshing used to mean one O(|V| + |E|) rebuild per burst of mutations —
rebuild-dominated as soon as the workload interleaves writes with queries.
``SocialGraph`` now keeps a bounded **mutation journal** next to the epoch,
and :func:`compile_graph` asks it for the exact operations committed since
the snapshot's epoch.  When the journal covers the gap,
:meth:`CompiledGraph.apply_deltas` patches the snapshot *in place* in
O(|delta|):

* **attribute writes** need no structural work at all (the dicts are
  shared) — the patch is a pure epoch advance plus derived-state policy
  sweep, which is what makes attribute-hot workloads cheap again;
* **user adds** append to the interned id maps and extend every CSR offset
  array by one (amortized O(labels) per user);
* **edge adds / removes** are queued into per-label **overflow side-tables**
  and folded into the label's forward/reverse CSR pair by a *compaction*
  pass — lazily at the label's next adjacency read, or eagerly once the
  side-table crosses a size threshold.  Compacting label ``l`` costs
  O(|E_l| + |side-table|), so a churn burst touching few labels never pays
  for the whole graph, and untouched labels keep their arrays byte-for-byte;
* **user removals** tombstone the slot: the dense index is kept but marked
  dead — every sweep skips it, ``degree_statistics`` divides by the live
  count, and the next ``add_user`` reuses the slot for the new user.  The
  removed user's incident edges arrive as *preceding* ``remove_edge`` ops
  (``SocialGraph.remove_user`` journals them first), so the tombstone
  itself is O(1) bookkeeping;
* **journal overflow**, foreign epochs, or any other inconsistency abort
  the patch — :func:`compile_graph` falls back to the full rebuild, which
  remains the semantics-defining reference path.

Entries in :attr:`CompiledGraph.derived` declare how deltas affect them via
:func:`register_derived_policy`: ``"structural"`` entries (the interned line
index) survive attribute-only patches and are dropped by structural ones,
``"keep"`` entries manage their own freshness (``degree_statistics``
refreshes exactly the labels a patch touched), and everything else is
conservatively dropped by any patch.  Long-lived consumers that require the
frozen build-time structure (the cluster backend's stale-read contract) call
:meth:`CompiledGraph.pin`; a pinned snapshot is never patched — the next
refresh builds a fresh object and leaves the pinned one untouched.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from dataclasses import dataclass

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import Relationship, SocialGraph, UserId

__all__ = [
    "CompiledGraph",
    "LabelDegreeStats",
    "build_csr",
    "compile_graph",
    "register_derived_policy",
]

#: CSR adjacency: ``targets[offsets[u]:offsets[u + 1]]`` are ``u``'s neighbours.
CSR = Tuple[array, array]

_SNAPSHOT_ATTR = "_compiled_snapshot"

#: Sentinel parked in :attr:`CompiledGraph.node_ids` at tombstoned slots.
#: Never a valid user id, unhashable lookups can't alias it, and any code
#: that leaks it into output fails loudly instead of resurrecting the user.
_TOMBSTONE = object()

#: Side-table ops queued by :meth:`CompiledGraph.apply_deltas`:
#: ``(+1, source, target)`` adds the pair, ``(-1, source, target)`` removes it.
_ADD, _REMOVE = 1, -1

#: A label's overflow side-table is folded into its CSR pair as soon as it
#: holds this many entries (or a quarter of the label's base edges, whichever
#: is larger) — bounding both memory and the cost of the next lazy read.
_COMPACT_FLOOR = 64

#: How mutation deltas affect one :attr:`CompiledGraph.derived` entry.
#: ``"always"`` (the conservative default for unregistered keys) drops the
#: entry on any patch; ``"structural"`` keeps it across attribute-only
#: patches; ``"keep"`` never drops it — the entry manages its own freshness.
_DERIVED_POLICIES: Dict[str, str] = {}


def register_derived_policy(name: str, policy: str) -> None:
    """Declare how delta patches treat derived entries named ``name``.

    ``name`` matches a ``derived`` key directly, or the first element of a
    tuple key (the interned line index registers ``"line-index"`` and stores
    under ``("line-index", orientation)``).  ``policy`` is ``"always"``,
    ``"structural"`` or ``"keep"`` as described on the module.
    """
    if policy not in ("always", "structural", "keep"):
        raise ValueError(f"unknown derived policy {policy!r}")
    _DERIVED_POLICIES[name] = policy


register_derived_policy("degree_statistics", "keep")  # partial refresh below


def build_csr(pairs: Sequence[Tuple[int, int]], node_count: int) -> CSR:
    """Counting-sort ``(source, target)`` int pairs into a CSR adjacency.

    The one CSR builder of the codebase — the snapshot's per-label adjacency
    and every dense structure in :mod:`repro.reachability.interned` go
    through it.
    """
    counts = [0] * node_count
    for source, _target in pairs:
        counts[source] += 1
    offsets = array("l", [0]) * (node_count + 1)
    total = 0
    for node in range(node_count):
        offsets[node] = total
        total += counts[node]
    offsets[node_count] = total
    cursor = offsets.tolist()
    targets = array("l", [0]) * total
    for source, target in pairs:
        targets[cursor[source]] = target
        cursor[source] += 1
    return offsets, targets


#: Byte width of one CSR entry on this platform (``array('l')`` item size).
_ITEMSIZE = array("l").itemsize


def _copy_ints(values) -> array:
    """Return a private ``array('l')`` copy of an array or int-memoryview.

    Memory-mapped snapshots expose their CSR halves as read-only
    ``memoryview`` casts; copy-on-write paths funnel through here so the
    copy stays a C-level ``frombytes`` whenever the item widths line up.
    """
    if isinstance(values, memoryview) and values.itemsize == _ITEMSIZE:
        fresh = array("l")
        fresh.frombytes(values.tobytes())
        return fresh
    return array("l", values)


def _extend_ints(destination: array, values) -> None:
    """Append an array slice or int-memoryview slice to ``destination``."""
    if isinstance(values, memoryview) and values.itemsize == _ITEMSIZE:
        destination.frombytes(values.tobytes())
    else:
        destination.extend(values)


def _stitch_csr(
    offsets,
    targets,
    adds: Dict[int, List[int]],
    removes: Dict[int, "Set[int]"],
) -> CSR:
    """Apply a small per-row edit set to a CSR pair without a full rebuild.

    Untouched stretches of ``targets`` are moved by C-level slice copies;
    per-element interpreter work is confined to the edited rows and to one
    offset-shift pass over the suffix starting at the first edited row.
    ``adds``/``removes`` must be pre-reconciled: every add is absent from
    the base row, every remove present in it.  The base pair may be plain
    arrays or a mapped snapshot's read-only memoryviews — the output is
    always a pair of private arrays (this *is* the copy-on-write step).
    """
    affected = sorted(set(adds) | set(removes))
    new_targets = array("l")
    row_delta: List[int] = []
    prev_end = 0
    for node in affected:
        start, end = offsets[node], offsets[node + 1]
        _extend_ints(new_targets, targets[prev_end:start])
        row = _copy_ints(targets[start:end])
        drop = removes.get(node)
        if drop:
            row = array("l", (x for x in row if x not in drop))
        extra = adds.get(node)
        if extra:
            row += array("l", extra)
        new_targets += row
        row_delta.append(len(row) - (end - start))
        prev_end = end
    _extend_ints(new_targets, targets[prev_end:])

    new_offsets = _copy_ints(offsets)  # C-level copy; suffix rewritten below
    last = len(offsets) - 1
    shift = 0
    for position, node in enumerate(affected):
        shift += row_delta[position]
        next_node = affected[position + 1] if position + 1 < len(affected) else last
        if shift:
            new_offsets[node + 1:next_node + 1] = array(
                "l", (value + shift for value in offsets[node + 1:next_node + 1])
            )
    return new_offsets, new_targets


@dataclass(frozen=True)
class LabelDegreeStats:
    """Degree statistics of one relationship label at snapshot time.

    ``mean_degree`` is edges over nodes (identical for the out and in sides
    — every edge has one source and one target); the max degrees expose
    hubs.  The audience direction planner consumes these to estimate
    forward-vs-reverse sweep fan-out.
    """

    label: str
    edges: int
    mean_degree: float
    max_out_degree: int
    max_in_degree: int


class CompiledGraph:
    """An integer-interned CSR snapshot of one :class:`SocialGraph`.

    Structurally frozen between refreshes: queries between two mutations see
    one immutable view.  A refresh either patches the snapshot in place
    through :meth:`apply_deltas` (journal-covered mutation bursts) or
    replaces it with a fresh build — see the module docstring for the
    contract, and :meth:`pin` for consumers that must keep the build-time
    structure forever.
    """

    __slots__ = (
        "graph",
        "epoch",
        "node_ids",
        "node_index",
        "labels",
        "label_index",
        "attrs",
        "_forward",
        "_backward",
        "_forward_all",
        "_backward_all",
        "derived",
        "_pending",
        "_merged_pending",
        "_merged_dirty",
        "_stats_dirty",
        "_stats_nodes",
        "_free_slots",
        "_dead",
        "_pinned",
        "delta_events",
        "_mapped",
        "_offsets_private",
        "_backing",
    )

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        self.epoch: int = getattr(graph, "epoch", 0)
        #: dense index -> user id, in the graph's (deterministic) insertion order
        self.node_ids: List[UserId] = list(graph.users())
        #: user id -> dense index
        self.node_index: Dict[UserId, int] = {
            user: index for index, user in enumerate(self.node_ids)
        }
        #: dense label id -> label (sorted, matching ``SocialGraph.labels()``)
        self.labels: Tuple[str, ...] = graph.labels()
        self.label_index: Dict[str, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        #: dense index -> live attribute mapping (shared with the graph)
        self.attrs: List[Mapping[str, Any]] = [
            graph._nodes[user] for user in self.node_ids
        ]
        per_label: List[List[Tuple[int, int]]] = [[] for _ in self.labels]
        everything: List[Tuple[int, int]] = []
        node_index = self.node_index
        label_index = self.label_index
        for user, index in node_index.items():
            for target, edges in graph._succ[user].items():
                target_index = node_index[target]
                seen_pair = False
                for label in edges:
                    per_label[label_index[label]].append((index, target_index))
                    if not seen_pair:
                        # The merged adjacency collapses parallel labels: one
                        # entry per (source, target) pair is enough for plain
                        # reachability sweeps.
                        everything.append((index, target_index))
                        seen_pair = True
        count = len(self.node_ids)
        self._forward: List[CSR] = [build_csr(pairs, count) for pairs in per_label]
        self._backward: List[CSR] = [
            build_csr([(target, source) for source, target in pairs], count)
            for pairs in per_label
        ]
        self._forward_all: CSR = build_csr(everything, count)
        self._backward_all: CSR = build_csr(
            [(target, source) for source, target in everything], count
        )
        #: derived per-snapshot indexes (e.g. the interned line index),
        #: keyed by the deriving module; they share this snapshot's lifetime,
        #: so epoch-based invalidation comes for free.  Delta patches sweep
        #: the dict through :func:`register_derived_policy`.
        self.derived: Dict[Any, Any] = {}
        # Delta-maintenance state: per-label overflow side-tables of queued
        # (+1/-1, source, target) ops, dirtiness of the merged adjacency and
        # of per-label degree statistics, and the pin flag.
        self._pending: Dict[int, List[Tuple[int, int, int]]] = {}
        self._merged_pending: List[Tuple[int, int]] = []
        self._merged_dirty = False
        self._stats_dirty: Set[int] = set()
        self._stats_nodes = len(self.node_ids)
        # Tombstone state: slots freed by remove_user deltas, reusable (LIFO)
        # by the next add_user patch.  ``_dead`` is the membership view the
        # sweep cores consult through :attr:`dead_slots`.
        self._free_slots: List[int] = []
        self._dead: Set[int] = set()
        self._pinned = False
        # Persistence state: a freshly compiled snapshot owns private arrays;
        # a memory-mapped one (from_mapping) flips these and carries the mmap
        # objects keeping its buffers alive.
        self._mapped = False
        self._offsets_private = True
        self._backing: Tuple[Any, ...] = ()
        #: Counters for benchmarks/tests: patches applied, ops absorbed,
        #: side-table compactions performed, slots tombstoned and reused.
        self.delta_events: Dict[str, int] = {
            "applies": 0,
            "ops": 0,
            "label_compactions": 0,
            "merged_compactions": 0,
            "tombstones": 0,
            "slot_reuses": 0,
        }

    @classmethod
    def from_mapping(
        cls,
        *,
        node_ids: Sequence[UserId],
        attrs: Sequence[Mapping[str, Any]],
        labels: Sequence[str],
        forward: Sequence[CSR],
        backward: Sequence[CSR],
        forward_all: CSR,
        backward_all: CSR,
        epoch: int,
        graph: Optional[SocialGraph] = None,
        backing: Tuple[Any, ...] = (),
    ) -> "CompiledGraph":
        """Wrap already-built CSR buffers (typically mmap views) as a snapshot.

        This is the zero-copy constructor behind
        :class:`~repro.graph.snapshot.SnapshotStore`: the CSR halves are used
        *as given* — memory-mapped ``memoryview`` casts index exactly like
        ``array('l')`` in every traversal core — and ``backing`` keeps the
        underlying ``mmap`` / file objects alive for the snapshot's lifetime.

        The result is fully functional standalone (``graph=None``): attribute
        conditions read the deserialized ``attrs`` dicts and witness
        :class:`Relationship` objects are synthesized from the CSR (without
        edge attributes).  Mutation paths copy-on-write: the first structural
        patch privatizes the offset arrays it must extend, and compactions
        always emit private arrays, so a mapped region itself is never
        written through.
        """
        snapshot = cls.__new__(cls)
        snapshot.graph = graph
        snapshot.epoch = epoch
        snapshot.node_ids = list(node_ids)
        snapshot.node_index = {
            user: index for index, user in enumerate(snapshot.node_ids)
        }
        snapshot.labels = tuple(labels)
        snapshot.label_index = {
            label: index for index, label in enumerate(snapshot.labels)
        }
        # Accept any list-like attribute table as-is: the loader hands over a
        # lazily-parsed view so warm starts never pay the JSON decode, and a
        # plain list is simply donated.
        snapshot.attrs = attrs if callable(getattr(attrs, "append", None)) else list(attrs)
        snapshot._forward = list(forward)
        snapshot._backward = list(backward)
        snapshot._forward_all = forward_all
        snapshot._backward_all = backward_all
        snapshot.derived = {}
        snapshot._pending = {}
        snapshot._merged_pending = []
        snapshot._merged_dirty = False
        snapshot._stats_dirty = set()
        snapshot._stats_nodes = len(snapshot.node_ids)
        snapshot._free_slots = []
        snapshot._dead = set()
        snapshot._pinned = False
        snapshot._mapped = True
        snapshot._offsets_private = False
        snapshot._backing = tuple(backing)
        snapshot.delta_events = {
            "applies": 0,
            "ops": 0,
            "label_compactions": 0,
            "merged_compactions": 0,
            "tombstones": 0,
            "slot_reuses": 0,
        }
        return snapshot

    # -------------------------------------------------------------- identity

    def is_stale(self) -> bool:
        """Whether the canonical graph has mutated since this snapshot was built."""
        return self.epoch != getattr(self.graph, "epoch", self.epoch)

    @property
    def pinned(self) -> bool:
        """Whether :meth:`pin` excluded this snapshot from in-place patching."""
        return self._pinned

    @property
    def mapped(self) -> bool:
        """Whether this snapshot was loaded zero-copy from a memory mapping."""
        return self._mapped

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR adjacency buffers (mapped or private).

        Counts every per-label and merged offsets/targets buffer plus the
        queued overflow side-tables; interned id maps and attribute dicts are
        Python objects and excluded.  This is the number the index-size
        accounting (``GraphService.statistics`` /
        ``SnapshotStore.stat``) reports.
        """

        def _buffer_bytes(buffer) -> int:
            if isinstance(buffer, memoryview):
                return buffer.nbytes
            return len(buffer) * buffer.itemsize

        total = 0
        for csr_list in (self._forward, self._backward):
            for offsets, targets in csr_list:
                total += _buffer_bytes(offsets) + _buffer_bytes(targets)
        for offsets, targets in (self._forward_all, self._backward_all):
            total += _buffer_bytes(offsets) + _buffer_bytes(targets)
        pending_ops = sum(len(ops) for ops in self._pending.values())
        total += (pending_ops * 3 + len(self._merged_pending) * 2) * _ITEMSIZE
        return total

    def pin(self) -> "CompiledGraph":
        """Freeze this snapshot's structure for its remaining lifetime.

        A pinned snapshot is never patched by :meth:`apply_deltas` through
        :func:`compile_graph`: once the graph mutates, the next refresh
        builds a *new* snapshot object and this one keeps the build-time
        structure forever.  Long-lived consumers with stale-read semantics
        (the cluster index answers every query from the snapshot captured at
        ``build()``) pin so that delta maintenance for everyone else cannot
        mutate the state they hold.  Returns ``self`` for chaining.
        """
        self._pinned = True
        return self

    def number_of_nodes(self) -> int:
        """Return the number of dense slots (live *and* tombstoned).

        This is the size every per-node array is indexed by — sweep cores
        allocate over it.  For the number of users the snapshot actually
        represents, see :meth:`number_of_live_nodes`.
        """
        return len(self.node_ids)

    def number_of_live_nodes(self) -> int:
        """Return ``|V|`` excluding tombstoned slots — the live user count."""
        return len(self.node_ids) - len(self._dead)

    @property
    def dead_slots(self) -> frozenset:
        """Dense indices tombstoned by ``remove_user`` deltas (usually empty).

        Sweep cores skip these slots when seeding; they carry no edges (the
        canonical graph removes incident relationships before the user, so
        the preceding ``remove_edge`` deltas empty the rows) and their
        attribute entries are ``None``.
        """
        return frozenset(self._dead)

    def number_of_labels(self) -> int:
        """Return the size of the interned label alphabet."""
        return len(self.labels)

    def index_of(self, user: UserId) -> int:
        """Return the dense index of ``user`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self.node_index[user]
        except (KeyError, TypeError):
            raise NodeNotFoundError(user) from None

    def user_of(self, index: int) -> UserId:
        """Return the user id interned at ``index``."""
        return self.node_ids[index]

    def label_id(self, label: str) -> int:
        """Return the dense id of ``label``, or ``-1`` when the graph has no such edges."""
        return self.label_index.get(label, -1)

    def attributes_of(self, index: int) -> Mapping[str, Any]:
        """Return the (live) attribute mapping of the node at ``index``."""
        return self.attrs[index]

    # ------------------------------------------------------------- adjacency

    def forward(self, label_id: Optional[int] = None) -> CSR:
        """Return the forward CSR ``(offsets, targets)`` for one label (or merged).

        Reading an adjacency folds any pending overflow side-table into the
        label's CSR pair first (lazy compaction), so the returned arrays are
        always complete — consumers iterate them raw, exactly as before
        delta maintenance existed.
        """
        if label_id is None:
            if self._merged_dirty:
                self._compact_merged()
            return self._forward_all
        if self._pending.get(label_id):
            self._compact_label(label_id)
        return self._forward[label_id]

    def backward(self, label_id: Optional[int] = None) -> CSR:
        """Return the reverse CSR ``(offsets, sources)`` for one label (or merged)."""
        if label_id is None:
            if self._merged_dirty:
                self._compact_merged()
            return self._backward_all
        if self._pending.get(label_id):
            self._compact_label(label_id)
        return self._backward[label_id]

    def out_neighbors(self, index: int, label_id: Optional[int] = None) -> array:
        """Return the targets of edges leaving the node at ``index``."""
        offsets, targets = self.forward(label_id)
        return targets[offsets[index]:offsets[index + 1]]

    def in_neighbors(self, index: int, label_id: Optional[int] = None) -> array:
        """Return the sources of edges entering the node at ``index``."""
        offsets, sources = self.backward(label_id)
        return sources[offsets[index]:offsets[index + 1]]

    def out_degree(self, index: int, label_id: Optional[int] = None) -> int:
        """Return the snapshot out-degree of the node at ``index``."""
        offsets, _targets = self.forward(label_id)
        return offsets[index + 1] - offsets[index]

    def in_degree(self, index: int, label_id: Optional[int] = None) -> int:
        """Return the snapshot in-degree of the node at ``index``."""
        offsets, _sources = self.backward(label_id)
        return offsets[index + 1] - offsets[index]

    def number_of_edges(self, label_id: Optional[int] = None) -> int:
        """Return the number of CSR entries for one label (or distinct node pairs)."""
        offsets, _targets = self.forward(label_id)
        return offsets[-1]

    def _label_degree_row(self, label_id: int, label: str, node_count: int) -> LabelDegreeStats:
        """One O(|V|) offset scan producing a label's degree-statistics row."""
        offsets, _targets = self.forward(label_id)
        reverse_offsets, _sources = self.backward(label_id)
        edges = offsets[-1]
        max_out = max(
            (offsets[i + 1] - offsets[i] for i in range(len(offsets) - 1)),
            default=0,
        )
        max_in = max(
            (
                reverse_offsets[i + 1] - reverse_offsets[i]
                for i in range(len(reverse_offsets) - 1)
            ),
            default=0,
        )
        return LabelDegreeStats(label, edges, edges / node_count, max_out, max_in)

    def degree_statistics(self) -> Tuple[LabelDegreeStats, ...]:
        """Per-label degree statistics, indexed by label id.

        Cached in :attr:`derived` under a ``"keep"`` delta policy: patches
        never drop the tuple wholesale — edge deltas mark exactly the labels
        they touched and only those rows are recomputed (one O(|V|) offset
        scan each) at the next read; user adds refresh the cheap per-row
        means; attribute-only patches return the cached tuple untouched.
        The audience direction planner reads these to decide forward vs
        reverse sweeps.
        """
        cached: Optional[Tuple[LabelDegreeStats, ...]] = self.derived.get(
            "degree_statistics"
        )
        node_count = max(1, self.number_of_live_nodes())
        if (
            cached is not None
            and not self._stats_dirty
            and len(cached) == len(self.labels)
            and self._stats_nodes == node_count
        ):
            return cached
        rows = []
        for label_id, label in enumerate(self.labels):
            if (
                cached is not None
                and label_id < len(cached)
                and label_id not in self._stats_dirty
            ):
                row = cached[label_id]
                if self._stats_nodes != node_count:
                    row = LabelDegreeStats(
                        row.label, row.edges, row.edges / node_count,
                        row.max_out_degree, row.max_in_degree,
                    )
                rows.append(row)
                continue
            rows.append(self._label_degree_row(label_id, label, node_count))
        stats = tuple(rows)
        self.derived["degree_statistics"] = stats
        self._stats_dirty = set()
        self._stats_nodes = node_count
        return stats

    # ------------------------------------------------------ delta maintenance

    def apply_deltas(
        self, deltas: Sequence[Tuple[Any, ...]], *, epoch: Optional[int] = None
    ) -> bool:
        """Patch this snapshot in place with a journal-covered mutation burst.

        ``deltas`` is what :meth:`SocialGraph.mutations_since` returned for
        the span between this snapshot's epoch and the live one, oldest
        first.  Returns ``True`` when the patch succeeded (the snapshot's
        epoch now matches the graph's); ``False`` when the burst cannot be
        absorbed — an operation referencing unknown state, or any internal
        inconsistency — in which case the caller must fall back to a full
        rebuild and discard this object.  A failed patch may leave the
        snapshot between epochs, but ``is_stale()`` then stays true, so no
        consumer that checks freshness can observe it.

        ``remove_user`` ops **tombstone** the slot instead of aborting: the
        dense index is marked dead (see :attr:`dead_slots`), its incident
        edges having already arrived as the preceding ``remove_edge`` ops,
        and the next ``add_user`` reuses the slot.  Remove-heavy churn
        therefore patches in O(|delta|) like everything else.

        Ops may carry an attribute payload (``("add_user", u, attrs)`` /
        ``("update_user", u, attrs)``) — the persisted-delta form replayed
        by :class:`~repro.graph.snapshot.SnapshotStore` onto snapshots with
        no live graph attached; live-journal ops omit it because attribute
        dicts are shared with the graph.  ``epoch`` pins the post-patch
        epoch for persisted replays; by default the patch advances to the
        attached graph's live epoch.

        Cost: O(|delta|) bookkeeping per call.  Edge ops are queued into
        per-label overflow side-tables; the CSR fold-in (compaction) is
        deferred to each label's next adjacency read, or triggered here once
        a side-table crosses its size threshold.
        """
        if self._pinned:
            return False
        try:
            structural = False
            for op in deltas:
                kind = op[0]
                if kind == "update_user":
                    if len(op) > 2 and self.graph is None:
                        # Persisted replay without a live graph: install the
                        # payload (the attrs at checkpoint time) directly.
                        self.attrs[self.node_index[op[1]]] = dict(op[2])
                    continue  # attached: attribute dicts are shared
                structural = True
                if kind == "add_user":
                    self._patch_add_user(op[1], op[2] if len(op) > 2 else None)
                elif kind == "remove_user":
                    self._patch_remove_user(op[1])
                elif kind == "add_edge":
                    self._patch_edge(_ADD, op[1], op[2], op[3])
                elif kind == "remove_edge":
                    self._patch_edge(_REMOVE, op[1], op[2], op[3])
                else:
                    return False
        except (KeyError, IndexError):
            return False
        self._sweep_derived(structural)
        if epoch is not None:
            self.epoch = epoch
        else:
            self.epoch = getattr(self.graph, "epoch", self.epoch)
        self.delta_events["applies"] += 1
        self.delta_events["ops"] += len(deltas)
        return True

    def _privatize_offsets(self) -> None:
        """Copy-on-write: replace mapped offset views with private arrays.

        ``_patch_add_user`` appends one slot to every offsets array; a mapped
        snapshot's offsets are read-only memoryviews, so the first such patch
        converts them all (one C-level copy each, O(|V|) per array).  Targets
        stay mapped: nothing mutates them in place — compactions emit fresh
        private arrays per label as they go.
        """
        for csr_list in (self._forward, self._backward):
            for label_id, (offsets, targets) in enumerate(csr_list):
                if not isinstance(offsets, array):
                    csr_list[label_id] = (_copy_ints(offsets), targets)
        if not isinstance(self._forward_all[0], array):
            self._forward_all = (_copy_ints(self._forward_all[0]), self._forward_all[1])
        if not isinstance(self._backward_all[0], array):
            self._backward_all = (
                _copy_ints(self._backward_all[0]),
                self._backward_all[1],
            )
        self._offsets_private = True

    def _patch_add_user(
        self, user: UserId, attrs: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Intern one added user: extend the id maps and every offset array.

        ``attrs`` is the persisted-delta payload; without it the live
        graph's (shared) attribute dict is linked, exactly like at build.
        A tombstoned slot is reused (LIFO) before the arrays grow: its CSR
        rows are already logically empty, so rebinding the id maps and the
        attribute entry is the whole patch.
        """
        if user in self.node_index:
            raise KeyError(user)  # journal out of sync with the snapshot
        if self._free_slots:
            index = self._free_slots.pop()
            self._dead.discard(index)
            self.node_ids[index] = user
            self.node_index[user] = index
            self.attrs[index] = self._added_attrs(user, attrs)
            self.delta_events["slot_reuses"] += 1
            return
        if not self._offsets_private:
            self._privatize_offsets()
        index = len(self.node_ids)
        self.node_ids.append(user)
        self.node_index[user] = index
        self.attrs.append(self._added_attrs(user, attrs))
        for csr_list in (self._forward, self._backward):
            for offsets, _targets in csr_list:
                offsets.append(offsets[-1])
        self._forward_all[0].append(self._forward_all[0][-1])
        self._backward_all[0].append(self._backward_all[0][-1])

    def _added_attrs(
        self, user: UserId, attrs: Optional[Mapping[str, Any]]
    ) -> Mapping[str, Any]:
        """Resolve the attribute entry for one ``add_user`` patch.

        Preference order: the persisted payload, then the live graph's
        shared dict.  A user the live graph no longer knows is removed again
        *later in the same burst* (the dict is already gone) — a placeholder
        suffices, since the trailing ``remove_user`` tombstones the slot
        before any query can read it.
        """
        if attrs is not None:
            return dict(attrs)
        if self.graph is None:
            raise KeyError(user)  # standalone snapshot needs the payload
        entry = self.graph._nodes.get(user)
        return {} if entry is None else entry

    def _patch_remove_user(self, user: UserId) -> None:
        """Tombstone one removed user's dense slot.

        The canonical graph removes every incident relationship *before*
        recording ``remove_user`` (and the journal preserves order), so by
        the time this op is patched the slot's CSR rows are emptied by the
        preceding ``remove_edge`` ops — queued in the side-tables, folded at
        the next compaction.  The tombstone itself is O(1): the id maps
        forget the user, the slot is marked dead (sweeps skip it through
        :attr:`dead_slots`) and parked for reuse by the next ``add_user``.
        """
        index = self.node_index.pop(user)  # KeyError aborts the patch
        self.node_ids[index] = _TOMBSTONE
        self.attrs[index] = None  # accidental reads fail loudly
        self._dead.add(index)
        self._free_slots.append(index)
        self.delta_events["tombstones"] += 1

    def _patch_edge(self, op: int, source: UserId, target: UserId, label: str) -> None:
        """Queue one edge mutation into its label's overflow side-table."""
        source_index = self.node_index[source]
        target_index = self.node_index[target]
        label_id = self.label_index.get(label)
        if label_id is None:
            label_id = self._intern_label(label)
        pending = self._pending.setdefault(label_id, [])
        pending.append((op, source_index, target_index))
        self._merged_pending.append((source_index, target_index))
        self._merged_dirty = True
        self._stats_dirty.add(label_id)
        base_edges = self._forward[label_id][0][-1]
        if len(pending) >= max(_COMPACT_FLOOR, base_edges >> 2):
            self._compact_label(label_id)

    def _intern_label(self, label: str) -> int:
        """Extend the label alphabet with a label first seen after the build."""
        label_id = len(self.labels)
        self.labels = self.labels + (label,)
        self.label_index[label] = label_id
        count = len(self.node_ids)
        empty_offsets = array("l", [0]) * (count + 1)
        self._forward.append((empty_offsets, array("l")))
        self._backward.append((array("l", empty_offsets), array("l")))
        return label_id

    def _compact_label(self, label_id: int) -> None:
        """Fold a label's overflow side-table into its CSR pair.

        The queued ops are first reduced to their net effect per pair (the
        last op wins — the graph's no-duplicate-edge invariant makes
        interleaved add/remove sequences alternate) and reconciled against
        the base CSR with one O(degree) row probe each.  A *small* net delta
        is then **stitched**: untouched stretches of the targets array are
        copied wholesale (C-level slice copies) and per-element Python work
        is limited to the edited rows plus one O(|V|) offset-shift pass —
        O(|V| + |side-table|) interpreter steps instead of O(|V| + |E_l|).
        Past half the label's base edges the stitch loses to a plain
        counting-sort rebuild of the label, so the fold falls back to that.
        """
        pending = self._pending.get(label_id)
        if not pending:
            return
        net: Dict[Tuple[int, int], int] = {}
        for op, source, target in pending:
            net[(source, target)] = op
        offsets, targets = self._forward[label_id]
        # Reconcile against the base: an op whose outcome the base already
        # reflects (remove-then-re-add of a base edge, add-then-remove of a
        # new one) is dropped here, so the stitch sees only real edits.
        adds: Dict[int, List[int]] = {}
        removes: Dict[int, Set[int]] = {}
        add_count = remove_count = 0
        for (source, target), op in net.items():
            row = targets[offsets[source]:offsets[source + 1]]
            present = target in row
            if op == _ADD and not present:
                adds.setdefault(source, []).append(target)
                add_count += 1
            elif op == _REMOVE and present:
                removes.setdefault(source, set()).add(target)
                remove_count += 1
        if add_count + remove_count == 0:
            self._pending[label_id] = []
            return
        base_edges = offsets[-1]
        if (add_count + remove_count) * 2 > base_edges:
            # Threshold fallback: rebuild the label from scratch by counting
            # sort — cheaper than stitching a delta of comparable size.
            pairs: List[Tuple[int, int]] = []
            for source in range(len(offsets) - 1):
                drop = removes.get(source)
                for cursor in range(offsets[source], offsets[source + 1]):
                    target = targets[cursor]
                    if drop is None or target not in drop:
                        pairs.append((source, target))
            for source, extra in adds.items():
                pairs.extend((source, target) for target in extra)
            count = len(self.node_ids)
            self._forward[label_id] = build_csr(pairs, count)
            self._backward[label_id] = build_csr(
                [(target, source) for source, target in pairs], count
            )
        else:
            self._forward[label_id] = _stitch_csr(offsets, targets, adds, removes)
            backward_adds: Dict[int, List[int]] = {}
            for source, extra in adds.items():
                for target in extra:
                    backward_adds.setdefault(target, []).append(source)
            backward_removes: Dict[int, Set[int]] = {}
            for source, drop in removes.items():
                for target in drop:
                    backward_removes.setdefault(target, set()).add(source)
            reverse_offsets, reverse_targets = self._backward[label_id]
            self._backward[label_id] = _stitch_csr(
                reverse_offsets, reverse_targets, backward_adds, backward_removes
            )
        self._pending[label_id] = []
        self.delta_events["label_compactions"] += 1

    def _compact_merged(self) -> None:
        """Bring the merged (label-collapsed) adjacency up to date.

        The merged view holds one entry per distinct ``(source, target)``
        pair across all labels, so an edge delta's effect on it depends on
        the *other* labels too.  The queued candidate pairs are resolved
        authoritatively against the (freshly compacted) per-label CSRs —
        present anywhere vs present in the merged base — and the small net
        edit is stitched exactly like a label compaction.  Only when the
        candidate set rivals the merged size does this fall back to the full
        per-element rebuild, so a burst touching few edges never pays
        O(|E|) interpreter work for the merged view either.
        """
        pending = self._merged_pending
        self._merged_pending = []
        count = len(self.node_ids)
        offsets, targets = self._forward_all
        candidates = set(pending)
        if candidates and len(candidates) * 2 <= offsets[-1]:
            label_csrs = [
                self.forward(label_id) for label_id in range(len(self.labels))
            ]  # compacts every dirty label first
            adds: Dict[int, List[int]] = {}
            removes: Dict[int, Set[int]] = {}
            for source, target in candidates:
                anywhere = any(
                    target in label_targets[label_offsets[source]:label_offsets[source + 1]]
                    for label_offsets, label_targets in label_csrs
                )
                merged = target in targets[offsets[source]:offsets[source + 1]]
                if anywhere and not merged:
                    adds.setdefault(source, []).append(target)
                elif merged and not anywhere:
                    removes.setdefault(source, set()).add(target)
            if adds or removes:
                self._forward_all = _stitch_csr(offsets, targets, adds, removes)
                backward_adds: Dict[int, List[int]] = {}
                for source, extra in adds.items():
                    for target in extra:
                        backward_adds.setdefault(target, []).append(source)
                backward_removes: Dict[int, Set[int]] = {}
                for source, drop in removes.items():
                    for target in drop:
                        backward_removes.setdefault(target, set()).add(source)
                reverse_offsets, reverse_targets = self._backward_all
                self._backward_all = _stitch_csr(
                    reverse_offsets, reverse_targets, backward_adds, backward_removes
                )
        else:
            distinct: Set[Tuple[int, int]] = set()
            for label_id in range(len(self.labels)):
                label_offsets, label_targets = self.forward(label_id)
                for source in range(len(label_offsets) - 1):
                    for cursor in range(label_offsets[source], label_offsets[source + 1]):
                        distinct.add((source, label_targets[cursor]))
            pairs = list(distinct)
            self._forward_all = build_csr(pairs, count)
            self._backward_all = build_csr(
                [(target, source) for source, target in pairs], count
            )
        self._merged_dirty = False
        self.delta_events["merged_compactions"] += 1

    def _sweep_derived(self, structural: bool) -> None:
        """Apply the registered invalidation policies to ``derived`` entries."""
        for key in list(self.derived):
            name = key[0] if isinstance(key, tuple) else key
            policy = _DERIVED_POLICIES.get(name, "always")
            if policy == "keep":
                continue
            if policy == "structural" and not structural:
                continue
            del self.derived[key]

    def compacted(self) -> "CompiledGraph":
        """Return an equivalent snapshot with every tombstoned slot squeezed out.

        Returns ``self`` when all slots are live (the common case — no work,
        no copy).  Otherwise pending side-tables are folded, live slots are
        renumbered densely (insertion order preserved) and every CSR pair is
        rebuilt over the live index space.  The persistence layer serializes
        through this, so the on-disk format never carries a tombstone and
        stays byte-compatible with pre-tombstone readers.
        """
        if not self._dead:
            return self
        for label_id in range(len(self.labels)):
            self.forward(label_id)  # fold pending: CSRs become authoritative
        self.forward(None)
        remap: Dict[int, int] = {}
        node_ids: List[UserId] = []
        attrs: List[Mapping[str, Any]] = []
        for index, user in enumerate(self.node_ids):
            if index in self._dead:
                continue
            remap[index] = len(node_ids)
            node_ids.append(user)
            attrs.append(self.attrs[index])
        count = len(node_ids)

        def _rebuild(offsets, targets) -> CSR:
            pairs: List[Tuple[int, int]] = []
            for source in range(len(offsets) - 1):
                mapped = remap.get(source)
                if mapped is None:
                    continue  # dead slot: row is empty post-fold anyway
                for cursor in range(offsets[source], offsets[source + 1]):
                    pairs.append((mapped, remap[targets[cursor]]))
            return build_csr(pairs, count)

        clone = CompiledGraph.__new__(CompiledGraph)
        clone.graph = self.graph
        clone.epoch = self.epoch
        clone.node_ids = node_ids
        clone.node_index = {user: index for index, user in enumerate(node_ids)}
        clone.labels = self.labels
        clone.label_index = dict(self.label_index)
        clone.attrs = attrs
        clone._forward = [_rebuild(*csr) for csr in self._forward]
        clone._backward = [_rebuild(*csr) for csr in self._backward]
        clone._forward_all = _rebuild(*self._forward_all)
        clone._backward_all = _rebuild(*self._backward_all)
        clone.derived = {}
        clone._pending = {}
        clone._merged_pending = []
        clone._merged_dirty = False
        clone._stats_dirty = set()
        clone._stats_nodes = count
        clone._free_slots = []
        clone._dead = set()
        clone._pinned = False
        clone._mapped = False
        clone._offsets_private = True
        clone._backing = ()
        clone.delta_events = dict(self.delta_events)
        return clone

    # --------------------------------------------------------------- witness

    def relationship(self, source: int, target: int, label_id: int) -> Relationship:
        """Return the canonical :class:`Relationship` behind one CSR edge.

        Witness paths are reconstructed on demand through this lookup, so the
        search cores never touch per-edge objects.  Standalone (mapped)
        snapshots have no canonical graph to consult and synthesize a bare
        edge tuple instead.
        """
        if self.graph is None:
            return Relationship(
                self.node_ids[source], self.node_ids[target], self.labels[label_id]
            )
        return self.graph.get_relationship(
            self.node_ids[source], self.node_ids[target], self.labels[label_id]
        )

    def __repr__(self) -> str:
        dead = f", {len(self._dead)} dead slots" if self._dead else ""
        return (
            f"<CompiledGraph epoch={self.epoch}: {self.number_of_live_nodes()} nodes, "
            f"{self.number_of_edges()} node pairs, {len(self.labels)} labels{dead}>"
        )


def compile_graph(graph: SocialGraph) -> CompiledGraph:
    """Return the (lazily refreshed) compiled snapshot of ``graph``.

    The snapshot is cached on the graph instance and reused until the graph's
    ``epoch`` moves, so repeated queries between mutations share one build.
    When the epoch has moved, the graph's mutation journal is consulted
    first: a journal-covered gap is absorbed by
    :meth:`CompiledGraph.apply_deltas` in O(|delta|) — same object, patched
    in place, with user removals tombstoning their slots — and only journal
    overflow or a :meth:`pinned <CompiledGraph.pin>` snapshot fall back to
    the full O(|V| + |E|) rebuild (a fresh object, as before).
    """
    snapshot: Optional[CompiledGraph] = getattr(graph, _SNAPSHOT_ATTR, None)
    if snapshot is not None:
        if not snapshot.is_stale():
            return snapshot
        if not snapshot.pinned:
            mutations_since = getattr(graph, "mutations_since", None)
            deltas = (
                mutations_since(snapshot.epoch) if mutations_since is not None else None
            )
            if deltas is not None and snapshot.apply_deltas(deltas):
                return snapshot
    snapshot = CompiledGraph(graph)
    setattr(graph, _SNAPSHOT_ATTR, snapshot)
    return snapshot
