"""Synthetic social-network generators.

The paper defers its evaluation to "real and large representative synthetic
datasets" without naming any.  These generators provide the synthetic side:
classic random-graph models (Erdős–Rényi, Barabási–Albert preferential
attachment, Watts–Strogatz small world, and a forest-fire style model) whose
edges are labelled with relationship types drawn from a configurable
distribution and whose nodes carry user attributes (age, gender, city, job),
so that every feature of the access-control model — labels, directions,
distances, node-attribute conditions — is exercised at scale.

All generators accept a ``seed`` and are fully deterministic for a given
seed, which the benchmark harness relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graph.social_graph import SocialGraph

__all__ = [
    "LabelDistribution",
    "AttributeModel",
    "random_graph",
    "preferential_attachment_graph",
    "small_world_graph",
    "forest_fire_graph",
    "community_graph",
    "layered_organization_graph",
]

DEFAULT_LABELS: Tuple[Tuple[str, float], ...] = (
    ("friend", 0.6),
    ("colleague", 0.25),
    ("parent", 0.15),
)


@dataclass(frozen=True)
class LabelDistribution:
    """A categorical distribution over relationship types.

    ``weights`` maps each label to a non-negative weight; weights need not
    sum to one.  The default mirrors the paper's example alphabet
    ``{friend, colleague, parent}`` with friendship dominating, which is the
    typical shape of OSN datasets.
    """

    weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_LABELS)
    )

    def labels(self) -> Tuple[str, ...]:
        """Return the label alphabet in a deterministic order."""
        return tuple(sorted(self.weights))

    def sample(self, rng: random.Random) -> str:
        """Draw one label according to the weights."""
        labels = self.labels()
        weights = [float(self.weights[label]) for label in labels]
        return rng.choices(labels, weights=weights, k=1)[0]


@dataclass(frozen=True)
class AttributeModel:
    """Generates user attributes for synthetic graphs.

    The attribute names and value pools are chosen so that the attribute
    conditions used throughout the paper's examples (age thresholds, gender,
    job, city) have realistic selectivities.
    """

    genders: Sequence[str] = ("female", "male")
    cities: Sequence[str] = ("paris", "berlin", "london", "madrid", "rome")
    jobs: Sequence[str] = ("engineer", "teacher", "doctor", "student", "artist", "lawyer")
    min_age: int = 13
    max_age: int = 80

    def sample(self, rng: random.Random) -> Dict[str, object]:
        """Draw one attribute tuple."""
        return {
            "age": rng.randint(self.min_age, self.max_age),
            "gender": rng.choice(list(self.genders)),
            "city": rng.choice(list(self.cities)),
            "job": rng.choice(list(self.jobs)),
        }


def _new_graph(
    name: str,
    n: int,
    rng: random.Random,
    attributes: Optional[AttributeModel],
    prefix: str,
) -> Tuple[SocialGraph, List[str]]:
    graph = SocialGraph(name=name)
    model = attributes or AttributeModel()
    users = [f"{prefix}{index}" for index in range(n)]
    for user in users:
        graph.add_user(user, **model.sample(rng))
    return graph, users


def _add_edge(
    graph: SocialGraph,
    rng: random.Random,
    labels: LabelDistribution,
    source: str,
    target: str,
    reciprocal_probability: float,
) -> None:
    if source == target:
        return
    label = labels.sample(rng)
    trust = round(rng.uniform(0.1, 1.0), 2)
    if not graph.has_relationship(source, target, label):
        graph.add_relationship(source, target, label, trust=trust)
    if rng.random() < reciprocal_probability and not graph.has_relationship(target, source, label):
        graph.add_relationship(target, source, label, trust=trust)


def random_graph(
    n: int,
    edge_probability: float = 0.05,
    *,
    labels: Optional[LabelDistribution] = None,
    attributes: Optional[AttributeModel] = None,
    reciprocal_probability: float = 0.5,
    seed: Optional[int] = None,
    prefix: str = "u",
) -> SocialGraph:
    """Erdős–Rényi ``G(n, p)`` graph with labelled edges and user attributes."""
    rng = random.Random(seed)
    labels = labels or LabelDistribution()
    graph, users = _new_graph(f"erdos-renyi-{n}", n, rng, attributes, prefix)
    for source in users:
        for target in users:
            if source != target and rng.random() < edge_probability:
                _add_edge(graph, rng, labels, source, target, reciprocal_probability)
    return graph


def preferential_attachment_graph(
    n: int,
    edges_per_node: int = 3,
    *,
    labels: Optional[LabelDistribution] = None,
    attributes: Optional[AttributeModel] = None,
    reciprocal_probability: float = 0.5,
    seed: Optional[int] = None,
    prefix: str = "u",
) -> SocialGraph:
    """Barabási–Albert preferential-attachment graph (scale-free degree law).

    This is the standard stand-in for OSN topology: a few very-high-degree
    hubs and a long tail of low-degree users.  Each arriving node attaches to
    ``edges_per_node`` existing nodes chosen proportionally to degree.
    """
    rng = random.Random(seed)
    labels = labels or LabelDistribution()
    graph, users = _new_graph(f"barabasi-albert-{n}", n, rng, attributes, prefix)
    if n <= 1:
        return graph
    m = max(1, min(edges_per_node, n - 1))
    # Repeated-nodes trick: the list holds one entry per edge endpoint so that
    # sampling uniformly from it is sampling proportionally to degree.
    repeated: List[str] = []
    # Seed clique among the first m + 1 users so early targets exist.
    for i in range(min(m + 1, n)):
        for j in range(i):
            _add_edge(graph, rng, labels, users[i], users[j], reciprocal_probability)
            repeated.extend((users[i], users[j]))
    for index in range(min(m + 1, n), n):
        source = users[index]
        targets: set = set()
        while len(targets) < m and len(targets) < index:
            if repeated and rng.random() < 0.9:
                candidate = rng.choice(repeated)
            else:
                candidate = users[rng.randrange(index)]
            if candidate != source:
                targets.add(candidate)
        # Sort before iterating: set order depends on the per-process hash seed,
        # and edge insertion order must not (the generators promise cross-process
        # determinism for a given seed).
        for target in sorted(targets):
            _add_edge(graph, rng, labels, source, target, reciprocal_probability)
            repeated.extend((source, target))
    return graph


def small_world_graph(
    n: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    *,
    labels: Optional[LabelDistribution] = None,
    attributes: Optional[AttributeModel] = None,
    reciprocal_probability: float = 0.5,
    seed: Optional[int] = None,
    prefix: str = "u",
) -> SocialGraph:
    """Watts–Strogatz small-world graph: a rewired ring lattice.

    High clustering with short average path length — the regime where
    multi-hop access rules (friends of friends of ...) reach a large fraction
    of the network, stressing the depth-interval handling.
    """
    rng = random.Random(seed)
    labels = labels or LabelDistribution()
    graph, users = _new_graph(f"watts-strogatz-{n}", n, rng, attributes, prefix)
    if n <= 1:
        return graph
    k = max(2, nearest_neighbors)
    for index, source in enumerate(users):
        for offset in range(1, k // 2 + 1):
            target_index = (index + offset) % n
            if rng.random() < rewire_probability:
                target_index = rng.randrange(n)
            if target_index != index:
                _add_edge(graph, rng, labels, source, users[target_index], reciprocal_probability)
    return graph


def forest_fire_graph(
    n: int,
    forward_probability: float = 0.35,
    backward_probability: float = 0.2,
    *,
    labels: Optional[LabelDistribution] = None,
    attributes: Optional[AttributeModel] = None,
    reciprocal_probability: float = 0.3,
    seed: Optional[int] = None,
    prefix: str = "u",
) -> SocialGraph:
    """Forest-fire style growth model (Leskovec et al.) with labelled edges.

    Each arriving user picks an ambassador and then "burns" through the
    ambassador's neighborhood, linking to every burned user.  Produces
    communities and densification similar to real OSN crawls.
    """
    rng = random.Random(seed)
    labels = labels or LabelDistribution()
    graph, users = _new_graph(f"forest-fire-{n}", n, rng, attributes, prefix)
    if n <= 1:
        return graph
    for index in range(1, n):
        source = users[index]
        ambassador = users[rng.randrange(index)]
        burned = {source}
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            if current in burned:
                continue
            burned.add(current)
            _add_edge(graph, rng, labels, source, current, reciprocal_probability)
            neighbors = list(graph.successors(current)) + list(graph.predecessors(current))
            rng.shuffle(neighbors)
            spread = 0
            budget = 1 + int(rng.random() < forward_probability) + int(
                rng.random() < backward_probability
            )
            for neighbor in neighbors:
                if neighbor not in burned and spread < budget:
                    frontier.append(neighbor)
                    spread += 1
    return graph


def community_graph(
    n: int,
    communities: int = 8,
    intra_edges_per_node: int = 4,
    inter_fraction: float = 0.05,
    *,
    labels: Optional[LabelDistribution] = None,
    attributes: Optional[AttributeModel] = None,
    reciprocal_probability: float = 0.5,
    seed: Optional[int] = None,
    prefix: str = "u",
) -> SocialGraph:
    """Planted-partition graph: dense communities, sparse cross-community edges.

    Users are split into ``communities`` equal blocks.  Each user draws
    ``intra_edges_per_node`` edges to peers of its own block (preferential
    within the block, so every community has hubs) and, with probability
    ``inter_fraction`` per drawn edge, the edge instead crosses to a uniform
    user of another block.  This is the community-structured regime the
    sharding layer is built for: most walks stay inside one block, and the
    cross-block edge count — the boundary set — is a tunable small fraction.
    """
    rng = random.Random(seed)
    labels = labels or LabelDistribution()
    graph, users = _new_graph(f"planted-partition-{n}", n, rng, attributes, prefix)
    if n <= 1:
        return graph
    blocks: List[List[str]] = [[] for _ in range(max(1, communities))]
    for index, user in enumerate(users):
        blocks[index % len(blocks)].append(user)
    # Per-block repeated-endpoints list: sampling from it is sampling
    # proportionally to intra-block degree (the Barabási–Albert trick,
    # applied inside each planted community).
    repeated: List[List[str]] = [[] for _ in blocks]
    for block_index, block in enumerate(blocks):
        for position, source in enumerate(block):
            for _ in range(max(1, intra_edges_per_node)):
                if rng.random() < inter_fraction and len(blocks) > 1:
                    other = rng.randrange(len(blocks) - 1)
                    if other >= block_index:
                        other += 1
                    target = blocks[other][rng.randrange(len(blocks[other]))]
                else:
                    pool = repeated[block_index]
                    if pool and rng.random() < 0.8:
                        target = rng.choice(pool)
                    elif position:
                        target = block[rng.randrange(position)]
                    else:
                        continue
                if target == source:
                    continue
                _add_edge(graph, rng, labels, source, target, reciprocal_probability)
                repeated[block_index].extend((source, target))
    return graph


def layered_organization_graph(
    departments: int = 4,
    members_per_department: int = 10,
    *,
    seed: Optional[int] = None,
    prefix: str = "emp",
) -> SocialGraph:
    """A deterministic organization-shaped graph used by the enterprise example.

    Each department has a manager; members report to the manager
    (``manages`` edges point from manager to member), are mutual
    ``colleague``s within the department, and a sparse set of cross-department
    ``friend`` edges exists.  Useful for access rules such as
    "my manager's colleagues" or "friends of people in my department".
    """
    rng = random.Random(seed)
    graph = SocialGraph(name="layered-organization")
    model = AttributeModel()
    for dept in range(departments):
        manager = f"{prefix}-d{dept}-mgr"
        graph.add_user(manager, department=dept, role="manager", **model.sample(rng))
        members = []
        for member_index in range(members_per_department):
            member = f"{prefix}-d{dept}-m{member_index}"
            graph.add_user(member, department=dept, role="member", **model.sample(rng))
            members.append(member)
            graph.add_relationship(manager, member, "manages")
            graph.add_relationship(member, manager, "colleague")
            graph.add_relationship(manager, member, "colleague")
        for first in members:
            for second in members:
                if first < second:
                    graph.add_relationship(first, second, "colleague")
                    graph.add_relationship(second, first, "colleague")
    users = list(graph.users())
    for _ in range(departments * members_per_department // 2):
        source, target = rng.sample(users, 2)
        if not graph.has_relationship(source, target, "friend"):
            graph.add_relationship(source, target, "friend", trust=round(rng.uniform(0.3, 1.0), 2))
        if not graph.has_relationship(target, source, "friend"):
            graph.add_relationship(target, source, "friend", trust=round(rng.uniform(0.3, 1.0), 2))
    return graph
