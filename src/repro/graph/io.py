"""Serialization of social graphs.

Two formats are supported:

* a JSON document (``{"users": {...}, "relationships": [...]}``) that
  round-trips every node and edge attribute, used by the examples and the
  benchmark harness to cache generated workloads, and
* a simple whitespace-separated edge-list text format
  (``source target label``) for interoperability with graph tools, plus a
  SNAP-style loader (:func:`load_edge_list`) for the two-column
  ``FromNodeId ToNodeId`` files real-graph archives distribute — the label
  the access-control model needs is supplied by the caller.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Union

from repro.exceptions import GraphFormatError
from repro.graph.social_graph import SocialGraph

__all__ = [
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_edge_list",
    "from_edge_list",
    "load_edge_list",
]

PathLike = Union[str, Path]


def to_json(graph: SocialGraph, *, indent: int = 2) -> str:
    """Serialize the graph to a JSON string."""
    document = {
        "name": graph.name,
        "users": {str(user): dict(graph.attributes(user)) for user in graph.users()},
        "relationships": [
            {
                "source": str(rel.source),
                "target": str(rel.target),
                "label": rel.label,
                "attributes": dict(rel.attributes),
            }
            for rel in graph.relationships()
        ],
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def from_json(text: str) -> SocialGraph:
    """Parse a graph from a JSON string produced by :func:`to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"invalid JSON graph document: {exc}") from exc
    if not isinstance(document, dict) or "users" not in document:
        raise GraphFormatError("JSON graph document must be an object with a 'users' key")
    graph = SocialGraph(name=document.get("name", ""))
    for user, attributes in document.get("users", {}).items():
        graph.add_user(user, **dict(attributes or {}))
    for edge in document.get("relationships", []):
        try:
            source, target, label = edge["source"], edge["target"], edge["label"]
        except (TypeError, KeyError) as exc:
            raise GraphFormatError(f"malformed relationship entry: {edge!r}") from exc
        graph.ensure_user(source)
        graph.ensure_user(target)
        graph.add_relationship(source, target, label, **dict(edge.get("attributes") or {}))
    return graph


def save_json(graph: SocialGraph, path: PathLike, *, indent: int = 2) -> None:
    """Write the graph to ``path`` as JSON."""
    Path(path).write_text(to_json(graph, indent=indent), encoding="utf-8")


def load_json(path: PathLike) -> SocialGraph:
    """Read a graph from a JSON file written by :func:`save_json`."""
    return from_json(Path(path).read_text(encoding="utf-8"))


def to_edge_list(graph: SocialGraph) -> str:
    """Serialize to a ``source target label`` text edge list (attributes are dropped)."""
    lines = [f"{rel.source}\t{rel.target}\t{rel.label}" for rel in graph.relationships()]
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def from_edge_list(source: Union[str, Iterable[str], IO[str]], *, name: str = "") -> SocialGraph:
    """Parse a graph from an edge-list string, iterable of lines, or open file.

    Lines are ``source<TAB or space>target<TAB or space>label``; blank lines
    and lines starting with ``#`` are ignored.  Users are created on demand
    with no attributes.
    """
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    graph = SocialGraph(name=name)
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"line {line_number}: expected 'source target label', got {line!r}"
            )
        src, dst, label = parts
        graph.ensure_user(src)
        graph.ensure_user(dst)
        if not graph.has_relationship(src, dst, label):
            graph.add_relationship(src, dst, label)
    return graph


def load_edge_list(
    path: PathLike,
    *,
    label: str = "friend",
    name: str = "",
    directed: bool = True,
) -> SocialGraph:
    """Load a SNAP-style edge list from ``path`` into a labelled graph.

    The format is what real-graph archives (SNAP, KONECT) distribute: one
    ``FromNodeId ToNodeId`` pair per line, whitespace-separated, with ``#``
    comment lines and blank lines ignored.  Those files carry no labels, so
    every edge gets ``label``; three-column lines (our own
    :func:`to_edge_list` output) keep their explicit third-column label
    instead.  ``directed=False`` adds the reciprocal of every edge — SNAP
    publishes many social networks as undirected pair lists.  Duplicate
    pairs and self-loops are kept graph-legal (deduplicated per label).

    Anything else — one column, four columns — raises
    :class:`GraphFormatError` naming the offending line.
    """
    path = Path(path)
    graph = SocialGraph(name=name or path.stem)
    # utf-8-sig strips a leading byte-order mark, which would otherwise hide
    # the first line's "#"/"%" comment marker; universal newlines plus
    # strip() absorb CRLF endings (KONECT archives ship both routinely).
    with open(path, "r", encoding="utf-8-sig") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip().lstrip("\ufeff")
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) == 2:
                src, dst, edge_label = parts[0], parts[1], label
            elif len(parts) == 3:
                src, dst, edge_label = parts
            else:
                raise GraphFormatError(
                    f"{path}: line {line_number}: expected 'source target' "
                    f"or 'source target label', got {line!r}"
                )
            graph.ensure_user(src)
            graph.ensure_user(dst)
            if not graph.has_relationship(src, dst, edge_label):
                graph.add_relationship(src, dst, edge_label)
            if not directed and not graph.has_relationship(dst, src, edge_label):
                graph.add_relationship(dst, src, edge_label)
    return graph
