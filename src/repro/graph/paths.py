"""Path objects over a :class:`~repro.graph.social_graph.SocialGraph`.

A *path* in the paper is a finite sequence of relationships; its *length* is
the number of relationships it contains, and the *depth* of a relationship
type between two users is the length of a path using only that type.  The
:class:`Path` class packages a concrete witness path (as returned by the
evaluation engines when explaining an access decision) together with helpers
used by the post-processing phase of the cluster-index pipeline: adjacency
checking, label sequences and per-step segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.social_graph import Relationship, SocialGraph, UserId

__all__ = ["Traversal", "Path", "is_adjacent_chain", "path_from_nodes"]


@dataclass(frozen=True)
class Traversal:
    """One relationship traversed in a concrete direction.

    ``forward`` is true when the relationship was walked from its source to
    its target, false when it was walked against the arrow (as permitted by
    a step with direction ``-`` or ``*`` in an access condition).
    """

    relationship: Relationship
    forward: bool = True

    @property
    def start(self) -> UserId:
        """The user the traversal leaves from."""
        return self.relationship.source if self.forward else self.relationship.target

    @property
    def end(self) -> UserId:
        """The user the traversal arrives at."""
        return self.relationship.target if self.forward else self.relationship.source

    @property
    def label(self) -> str:
        """The relationship type that was traversed."""
        return self.relationship.label

    def __str__(self) -> str:
        arrow = "->" if self.forward else "<-"
        return f"{self.start} -[{self.label}]{arrow} {self.end}"


class Path:
    """A concrete path: an ordered sequence of adjacent traversals.

    The empty path (no traversals) is allowed and represents "owner and
    requester are the same user"; it carries an explicit ``start`` node.
    """

    def __init__(self, start: UserId, traversals: Sequence[Traversal] = ()) -> None:
        self._start = start
        self._traversals: Tuple[Traversal, ...] = tuple(traversals)
        current = start
        for hop in self._traversals:
            if hop.start != current:
                raise GraphError(
                    f"path is not contiguous: expected a traversal starting at "
                    f"{current!r}, got {hop}"
                )
            current = hop.end
        self._end = current

    # ------------------------------------------------------------ properties

    @property
    def start(self) -> UserId:
        """The first user of the path (the resource owner in access checks)."""
        return self._start

    @property
    def end(self) -> UserId:
        """The last user of the path (the requester in access checks)."""
        return self._end

    @property
    def traversals(self) -> Tuple[Traversal, ...]:
        """The traversals making up the path, in order."""
        return self._traversals

    def __len__(self) -> int:
        return len(self._traversals)

    def __iter__(self) -> Iterator[Traversal]:
        return iter(self._traversals)

    def __bool__(self) -> bool:  # even the empty path is a valid witness
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._start == other._start and self._traversals == other._traversals

    def __hash__(self) -> int:
        return hash((self._start, self._traversals))

    def __repr__(self) -> str:
        return f"Path({' / '.join(str(t) for t in self._traversals) or self._start!r})"

    # --------------------------------------------------------------- queries

    def nodes(self) -> List[UserId]:
        """Return the sequence of users visited, including both endpoints."""
        result = [self._start]
        result.extend(hop.end for hop in self._traversals)
        return result

    def labels(self) -> List[str]:
        """Return the sequence of relationship types traversed."""
        return [hop.label for hop in self._traversals]

    def label_runs(self) -> List[Tuple[str, int]]:
        """Return the path's label sequence compressed into (label, run-length) pairs.

        ``friend, friend, colleague`` becomes ``[("friend", 2), ("colleague", 1)]``;
        this is the shape compared against a path expression's steps.
        """
        runs: List[Tuple[str, int]] = []
        for label in self.labels():
            if runs and runs[-1][0] == label:
                runs[-1] = (label, runs[-1][1] + 1)
            else:
                runs.append((label, 1))
        return runs

    def is_simple(self) -> bool:
        """Return whether no user is visited twice."""
        visited = self.nodes()
        return len(visited) == len(set(visited))

    def concat(self, other: "Path") -> "Path":
        """Concatenate two paths; ``other`` must start where this path ends."""
        if other.start != self.end:
            raise GraphError(
                f"cannot concatenate: first path ends at {self.end!r} but the "
                f"second starts at {other.start!r}"
            )
        return Path(self._start, self._traversals + other.traversals)

    def extended(self, traversal: Traversal) -> "Path":
        """Return a new path with one more traversal appended."""
        return Path(self._start, self._traversals + (traversal,))


def is_adjacent_chain(relationships: Sequence[Relationship]) -> bool:
    """Return whether edges form one contiguous forward path (Section 3.4 check).

    This is the adjacency test of the post-processing phase: the target of
    each edge must be the source of the next one, so that the tuple returned
    by the join phase describes a *single* path rather than a set of disjoint
    paths.
    """
    for first, second in zip(relationships, relationships[1:]):
        if first.target != second.source:
            return False
    return True


def path_from_nodes(
    graph: SocialGraph,
    nodes: Sequence[UserId],
    labels: Optional[Sequence[str]] = None,
) -> Path:
    """Build a forward :class:`Path` from a node sequence found in ``graph``.

    When ``labels`` is given it must have one entry per hop and is used to
    disambiguate parallel relationships; otherwise an arbitrary relationship
    between each consecutive pair is used.
    """
    if not nodes:
        raise GraphError("a path needs at least one node")
    if labels is not None and len(labels) != len(nodes) - 1:
        raise GraphError(
            f"expected {len(nodes) - 1} labels for {len(nodes)} nodes, got {len(labels)}"
        )
    traversals = []
    for index, (source, target) in enumerate(zip(nodes, nodes[1:])):
        if labels is not None:
            rel = graph.get_relationship(source, target, labels[index])
        else:
            candidates = [r for r in graph.out_relationships(source) if r.target == target]
            if not candidates:
                raise GraphError(f"no relationship from {source!r} to {target!r}")
            rel = candidates[0]
        traversals.append(Traversal(rel, forward=True))
    return Path(nodes[0], traversals)
