"""Persistent memory-mapped snapshots of :class:`~repro.graph.compiled.CompiledGraph`.

The compiled CSR layer is already flat integer buffers, so persistence is
deliberately boring: a small header, a JSON metadata block (interned user
table, label table, attributes, section directory) and the raw little-endian
bytes of every offsets/targets buffer, 8-byte aligned.  Loading does **not**
deserialize the adjacency — it wraps ``mmap.mmap(..., ACCESS_READ)`` regions
in zero-copy ``memoryview`` casts that the traversal cores index exactly
like ``array('l')``.  Two payoffs:

* **cold start becomes an mmap** — refresh-to-first-query drops from the
  O(|V|+|E|) :func:`~repro.graph.compiled.compile_graph` build to reading a
  header and faulting pages on demand (PERF-11);
* **N serving processes share one physical copy** — every worker maps the
  same file, so the kernel page cache backs all of them and aggregate RSS
  stays near-flat as workers are added.

File layout (``<stem>.snap``)::

    +--------------------------------------------------------------+
    | header  struct '<8sIIqqqqq'                                  |
    |   magic  b"REPROSNP" | version | flags | epoch               |
    |   node count | label count | meta length | arrays length     |
    | header crc32  (u32, over the packed header)                  |
    +--------------------------------------------------------------+
    | meta    JSON (UTF-8): node_ids, labels, graph_name,          |
    |         per-label edge counts, section directory,            |
    |         attrs_bytes / attrs_crc32 / arrays_crc32             |
    | meta crc32  (u32)                                            |
    +--------------------------------------------------------------+
    | attrs   JSON (UTF-8) per-node attribute table — its own      |
    |         block so loading can defer the parse until the first |
    |         attribute read (adoption into a live graph rebinds   |
    |         to canonical dicts and never parses it at all)       |
    |         ... then zero padding to an 8-byte edge              |
    +--------------------------------------------------------------+
    | arrays  raw little-endian int64 sections, one per CSR half:  |
    |         fwd.<i>.offsets / fwd.<i>.targets / bwd.<i>....      |
    |         per label, then the merged all.fwd.* / all.bwd.*     |
    +--------------------------------------------------------------+

Beside the base file, :class:`SnapshotStore` persists journal bursts as
numbered **delta segments** (``<stem>.delta.<k>``): small JSON documents
holding the payload-enriched mutation ops between two epochs.  ``load()``
mmaps the base and replays contiguous segments through
:meth:`CompiledGraph.apply_deltas`; ``checkpoint()`` appends a segment when
the live journal covers the gap and rewrites the base (a *rebase*)
otherwise.

Staleness contract
------------------
A loaded snapshot is **never silently stale**.  When a live graph is given,
adoption (a) rebinds the attribute dicts to the canonical graph, (b) replays
any remaining journal gap, and (c) cross-checks node ids, label table and
per-label edge counts; any mismatch raises :class:`SnapshotStaleError` and
:meth:`SnapshotStore.load_or_compile` falls back to a clean recompile that
*rewrites* the store.  Unreadable files (torn writes, bad checksums, foreign
versions) raise :class:`SnapshotFormatError` naming the offending field —
never a raw ``struct.error`` and never silently wrong CSR rows.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import sys
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SnapshotFormatError, SnapshotStaleError
from repro.graph.compiled import (
    _SNAPSHOT_ATTR,
    CSR,
    CompiledGraph,
    compile_graph,
)
from repro.graph.social_graph import SocialGraph

__all__ = [
    "SnapshotStore",
    "SnapshotIOHooks",
    "RecoveryReport",
    "save_snapshot",
    "load_snapshot",
]

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1
#: magic, version, flags, epoch, nodes, labels, meta bytes, arrays bytes.
_HEADER = struct.Struct("<8sIIqqqqq")
_CRC = struct.Struct("<I")
_ITEM = 8  # bytes per CSR integer (int64 little-endian)

_DELTA_FORMAT = "repro-snapshot-delta"
_META_FORMAT = "repro-snapshot"


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _canonical_ops(ops: Sequence[Sequence[Any]]) -> bytes:
    """The byte string delta checksums are computed over (stable across runs)."""
    return json.dumps(list(ops), separators=(",", ":"), sort_keys=True).encode("utf-8")


def _document_crc(base_epoch: int, epoch: int, ops: Sequence[Sequence[Any]]) -> int:
    """Whole-document delta checksum: covers the epochs, not just the ops.

    ``ops_crc32`` alone leaves the ``base_epoch``/``epoch`` digits
    unprotected — a single flipped bit there would replay a valid op stream
    onto the wrong epoch, which is exactly the silent staleness the format
    promises never to serve.
    """
    blob = json.dumps(
        [base_epoch, epoch, list(ops)], separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _crc32(blob)


def _require_little_endian(path) -> None:
    if sys.byteorder != "little":  # pragma: no cover - exotic hosts
        raise SnapshotFormatError(
            path, "byteorder", "snapshot format requires a little-endian host"
        )


def _buffer_bytes(buffer) -> bytes:
    """Raw bytes of one CSR half — private ``array`` and mapped view alike."""
    return buffer.tobytes()


def _section_name(direction: str, label_id: Optional[int], half: str) -> str:
    if label_id is None:
        return f"all.{direction}.{half}"
    return f"{direction}.{label_id}.{half}"


class _LazyAttrTable:
    """The per-node attribute table, parsed from its JSON block on first use.

    Attribute reads are rare on the load path — the traversal cores touch
    ``attrs`` only when a path expression carries attribute conditions, and
    a snapshot adopted into a live graph swaps in the canonical dicts
    without ever reading this block — so deferring the parse keeps
    refresh-to-first-query at mmap speed even for large user tables.
    Supports exactly the operations :class:`CompiledGraph` performs on its
    ``attrs`` list (index, assign, append, iterate).
    """

    __slots__ = ("_payload", "_path", "_crc", "_count", "_rows")

    def __init__(self, payload, path, crc: int, count: int) -> None:
        self._payload = payload
        self._path = path
        self._crc = crc
        self._count = count
        self._rows = None

    def _force(self) -> list:
        if self._rows is None:
            blob = bytes(self._payload)
            if _crc32(blob) != self._crc:
                raise SnapshotFormatError(
                    self._path, "attrs_crc32", "attribute table checksum mismatch"
                )
            try:
                rows = json.loads(blob.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise SnapshotFormatError(
                    self._path, "attrs", f"attribute table is not valid JSON: {error}"
                )
            if not isinstance(rows, list) or len(rows) != self._count:
                raise SnapshotFormatError(
                    self._path, "attrs", "attribute table disagrees with header"
                )
            self._rows = rows
            self._payload = None  # drop the buffer reference
        return self._rows

    def __len__(self) -> int:
        return self._count if self._rows is None else len(self._rows)

    def __getitem__(self, index):
        return self._force()[index]

    def __setitem__(self, index, value) -> None:
        self._force()[index] = value

    def append(self, value) -> None:
        self._force().append(value)
        self._count = len(self._rows)

    def __iter__(self):
        return iter(self._force())


class SnapshotIOHooks:
    """Pluggable seam over the store's file I/O — the fault-injection surface.

    The default implementation just performs the real operation at every
    point; :class:`repro.reliability.faults.FaultInjector` subclasses it to
    inject deterministic faults (torn writes, failed fsync, ``ENOSPC``,
    partial reads, bit flips, simulated crashes).  Injection points, where
    ``<file>`` is ``base`` (the ``.snap`` file) or ``delta`` (a segment):

    ======================  ====================================================
    ``<file>.write``        writing the tmp file (torn write / bit flip / ENOSPC)
    ``<file>.fsync``        fsync of the tmp file (EIO / crash)
    ``<file>.replace``      just before the atomic ``os.replace``
    ``<file>.replaced``     just after it — a crash here leaves the new file
                            visible but later checkpoint steps undone
    ``<file>.read``         whole-file reads: the header probe, delta segments
    ``delta.unlink``        just before a segment unlink during a rebase
    ======================  ====================================================

    The base file's *arrays* region is read through ``mmap`` and has no read
    hook — a partial read of mmapped data is indistinguishable from on-disk
    truncation, which the ``<file>.write`` torn-write faults already model.
    """

    def write_tmp(self, tmp: Path, final: Path, payload: bytes) -> None:
        """Write ``payload`` to the tmp file, flushed and fsynced."""
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            self.fsync(handle, final)

    def fsync(self, handle, final: Path) -> None:
        os.fsync(handle.fileno())

    def before_replace(self, tmp: Path, final: Path) -> None:
        """Called between the durable tmp write and ``os.replace``."""

    def after_replace(self, final: Path) -> None:
        """Called after ``os.replace`` made the new contents visible."""

    def after_read(self, path: Path, data: bytes) -> bytes:
        """Filter whole-file reads (partial read / bit flip injection)."""
        return data

    def before_unlink(self, path: Path) -> None:
        """Called before a delta segment is unlinked during a rebase."""


_DEFAULT_IO_HOOKS = SnapshotIOHooks()


def _atomic_write(
    path: Path, payload: bytes, hooks: Optional[SnapshotIOHooks] = None
) -> None:
    """Write ``payload`` to ``path`` via tmp + fsync + rename (torn-write safe)."""
    hooks = hooks if hooks is not None else _DEFAULT_IO_HOOKS
    tmp = path.with_name(path.name + ".tmp")
    try:
        hooks.write_tmp(tmp, path, payload)
        hooks.before_replace(tmp, path)
        os.replace(tmp, path)
    except Exception:
        # A *failure* (ENOSPC, failed fsync, replace error) must not leave a
        # stray tmp file behind.  A *crash* is modelled as a BaseException
        # and deliberately skips this — crashed writers cannot clean up, so
        # :class:`SnapshotStore` reaps stale tmp files on open instead.
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    hooks.after_replace(path)


# ---------------------------------------------------------------------------
# Base-file serialization
# ---------------------------------------------------------------------------


def save_snapshot(
    snapshot: CompiledGraph, path, *, io_hooks: Optional[SnapshotIOHooks] = None
) -> int:
    """Serialize ``snapshot`` to ``path`` atomically; return the bytes written.

    Pending overflow side-tables are folded in first (the on-disk CSR is
    always fully compacted), and tombstoned slots are squeezed out through
    :meth:`CompiledGraph.compacted` — the on-disk format never carries a
    dead slot, so a later :func:`load_snapshot` needs neither side-table
    nor tombstone state.  User ids and attribute values must be
    JSON-representable (strings, numbers, booleans, ``None`` and
    lists/dicts thereof) — the substrate's documented serialization domain.
    """
    path = Path(path)
    _require_little_endian(path)
    snapshot = snapshot.compacted()

    sections: List[Tuple[str, bytes]] = []
    label_edge_counts: List[int] = []
    for label_id in range(len(snapshot.labels)):
        forward = snapshot.forward(label_id)  # settles pending compactions
        backward = snapshot.backward(label_id)
        label_edge_counts.append(forward[0][-1])
        sections.append((_section_name("fwd", label_id, "offsets"), _buffer_bytes(forward[0])))
        sections.append((_section_name("fwd", label_id, "targets"), _buffer_bytes(forward[1])))
        sections.append((_section_name("bwd", label_id, "offsets"), _buffer_bytes(backward[0])))
        sections.append((_section_name("bwd", label_id, "targets"), _buffer_bytes(backward[1])))
    for direction, csr in (("fwd", snapshot.forward()), ("bwd", snapshot.backward())):
        sections.append((_section_name(direction, None, "offsets"), _buffer_bytes(csr[0])))
        sections.append((_section_name(direction, None, "targets"), _buffer_bytes(csr[1])))

    directory: List[Tuple[str, int, int]] = []
    arrays = io.BytesIO()
    cursor = 0
    for name, data in sections:
        count = len(data) // _ITEM
        directory.append((name, cursor, count))
        arrays.write(data)
        cursor += count
    arrays_blob = arrays.getvalue()

    attrs_blob = json.dumps(
        [dict(attrs) for attrs in snapshot.attrs], separators=(",", ":")
    ).encode("utf-8")
    meta = {
        "format": _META_FORMAT,
        "item": _ITEM,
        "graph_name": getattr(snapshot.graph, "name", "") if snapshot.graph else "",
        "node_ids": list(snapshot.node_ids),
        "labels": list(snapshot.labels),
        "label_edge_counts": label_edge_counts,
        "sections": [list(row) for row in directory],
        "attrs_bytes": len(attrs_blob),
        "attrs_crc32": _crc32(attrs_blob),
        "arrays_crc32": _crc32(arrays_blob),
    }
    meta_blob = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode("utf-8")
    meta_len = len(meta_blob) + _CRC.size
    prefix = _HEADER.size + _CRC.size + meta_len + len(attrs_blob)
    padding = (-prefix) % _ITEM

    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        0,  # flags, reserved
        snapshot.epoch,
        len(snapshot.node_ids),
        len(snapshot.labels),
        meta_len,
        len(arrays_blob),
    )
    payload = b"".join(
        [
            header,
            _CRC.pack(_crc32(header)),
            meta_blob,
            _CRC.pack(_crc32(meta_blob)),
            attrs_blob,
            b"\x00" * padding,
            arrays_blob,
        ]
    )
    _atomic_write(path, payload, io_hooks)
    return len(payload)


def _parse_header(path: Path, data: bytes) -> Tuple[int, int, int, int, int]:
    """Validate the fixed header; return (epoch, nodes, labels, meta_len, arrays_len)."""
    if len(data) < _HEADER.size + _CRC.size:
        raise SnapshotFormatError(
            path, "size", f"file is {len(data)} bytes, shorter than the header"
        )
    header = data[: _HEADER.size]
    magic, version, _flags, epoch, nodes, labels, meta_len, arrays_len = _HEADER.unpack(
        header
    )
    if magic != MAGIC:
        raise SnapshotFormatError(path, "magic", f"expected {MAGIC!r}, found {magic!r}")
    if version != FORMAT_VERSION:
        raise SnapshotFormatError(
            path, "version", f"unsupported format version {version}"
        )
    (stored_crc,) = _CRC.unpack(data[_HEADER.size : _HEADER.size + _CRC.size])
    if stored_crc != _crc32(header):
        raise SnapshotFormatError(path, "header_crc", "header checksum mismatch")
    if nodes < 0 or labels < 0 or meta_len < _CRC.size or arrays_len < 0:
        raise SnapshotFormatError(path, "counts", "negative or impossible counts")
    return epoch, nodes, labels, meta_len, arrays_len


def read_snapshot_header(
    path, *, io_hooks: Optional[SnapshotIOHooks] = None
) -> Dict[str, int]:
    """Read and validate just the fixed header (cheap staleness probe)."""
    path = Path(path)
    hooks = io_hooks if io_hooks is not None else _DEFAULT_IO_HOOKS
    try:
        with open(path, "rb") as handle:
            data = handle.read(_HEADER.size + _CRC.size)
    except OSError:
        raise
    data = hooks.after_read(path, data)
    epoch, nodes, labels, meta_len, arrays_len = _parse_header(path, data)
    return {
        "epoch": epoch,
        "nodes": nodes,
        "labels": labels,
        "meta_len": meta_len,
        "arrays_len": arrays_len,
    }


def load_snapshot(
    path, *, graph: Optional[SocialGraph] = None, verify: bool = False
) -> CompiledGraph:
    """Memory-map ``path`` into a zero-copy :class:`CompiledGraph`.

    With ``graph=None`` the snapshot is fully standalone: attribute
    conditions read the deserialized attrs, witness edges are synthesized
    from the CSR, and the caller (typically a worker process) never builds
    the canonical dict-of-dicts at all.  With a live ``graph`` the snapshot
    is *adopted*: attrs are rebound to the canonical dicts, any epoch gap is
    replayed from the graph's journal, structural cross-checks run, and the
    snapshot is installed as the graph's compile cache — or
    :class:`SnapshotStaleError` is raised.  ``verify=True`` additionally
    checksums the full arrays region (an O(bytes) read that defeats lazy
    page faulting; off by default, used by the torn-write tests).
    """
    path = Path(path)
    _require_little_endian(path)
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size == 0:
            raise SnapshotFormatError(path, "size", "file is empty")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    view = memoryview(mapped)
    epoch, nodes, labels_count, meta_len, arrays_len = _parse_header(
        path, bytes(view[: _HEADER.size + _CRC.size])
    )
    meta_start = _HEADER.size + _CRC.size
    meta_end = meta_start + meta_len
    if meta_end > size:
        raise SnapshotFormatError(path, "meta", "metadata block extends past the file")
    meta_blob = bytes(view[meta_start : meta_end - _CRC.size])
    (meta_crc,) = _CRC.unpack(bytes(view[meta_end - _CRC.size : meta_end]))
    if meta_crc != _crc32(meta_blob):
        raise SnapshotFormatError(path, "meta_crc", "metadata checksum mismatch")
    try:
        meta = json.loads(meta_blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise SnapshotFormatError(path, "meta", f"metadata is not valid JSON: {error}")
    if meta.get("format") != _META_FORMAT:
        raise SnapshotFormatError(
            path, "meta", f"unexpected format tag {meta.get('format')!r}"
        )
    if meta.get("item") != _ITEM:
        raise SnapshotFormatError(
            path, "item", f"unsupported item size {meta.get('item')!r}"
        )
    node_ids = meta.get("node_ids")
    labels = meta.get("labels")
    attrs_bytes = meta.get("attrs_bytes")
    if not isinstance(node_ids, list) or len(node_ids) != nodes:
        raise SnapshotFormatError(path, "node_ids", "node table disagrees with header")
    if not isinstance(labels, list) or len(labels) != labels_count:
        raise SnapshotFormatError(path, "labels", "label table disagrees with header")
    if not isinstance(attrs_bytes, int) or attrs_bytes < 0:
        raise SnapshotFormatError(path, "attrs_bytes", "missing attribute block size")
    attrs_end = meta_end + attrs_bytes
    arrays_start = attrs_end + ((-attrs_end) % _ITEM)
    if attrs_end > size:
        raise SnapshotFormatError(path, "attrs", "attribute block extends past the file")
    if arrays_start + arrays_len > size:
        raise SnapshotFormatError(
            path,
            "arrays",
            f"file truncated: need {arrays_start + arrays_len} bytes, have {size}",
        )
    attrs = _LazyAttrTable(
        view[meta_end:attrs_end], path, meta.get("attrs_crc32"), nodes
    )
    if verify:
        attrs._force()  # checksum + shape check, eagerly

    arrays_region = view[arrays_start : arrays_start + arrays_len]
    if verify and _crc32(bytes(arrays_region)) != meta.get("arrays_crc32"):
        raise SnapshotFormatError(path, "arrays_crc32", "CSR region checksum mismatch")
    items = arrays_region.cast("q")

    directory: Dict[str, memoryview] = {}
    total_items = arrays_len // _ITEM
    for row in meta.get("sections", ()):
        if not (isinstance(row, list) and len(row) == 3):
            raise SnapshotFormatError(path, "sections", f"malformed directory row {row!r}")
        name, offset, count = row
        if offset < 0 or count < 0 or offset + count > total_items:
            raise SnapshotFormatError(
                path, str(name), "section extends past the arrays region"
            )
        directory[name] = items[offset : offset + count]

    def _csr(direction: str, label_id: Optional[int]) -> CSR:
        offsets_name = _section_name(direction, label_id, "offsets")
        targets_name = _section_name(direction, label_id, "targets")
        try:
            offsets = directory[offsets_name]
            targets = directory[targets_name]
        except KeyError as error:
            raise SnapshotFormatError(path, str(error.args[0]), "section missing")
        if len(offsets) != nodes + 1:
            raise SnapshotFormatError(
                path, offsets_name, f"expected {nodes + 1} offsets, found {len(offsets)}"
            )
        edge_count = offsets[-1] if len(offsets) else 0
        if edge_count != len(targets):
            raise SnapshotFormatError(
                path,
                targets_name,
                f"offsets promise {edge_count} entries, section holds {len(targets)}",
            )
        return offsets, targets

    forward = [_csr("fwd", label_id) for label_id in range(labels_count)]
    backward = [_csr("bwd", label_id) for label_id in range(labels_count)]
    snapshot = CompiledGraph.from_mapping(
        node_ids=node_ids,
        attrs=attrs,
        labels=labels,
        forward=forward,
        backward=backward,
        forward_all=_csr("fwd", None),
        backward_all=_csr("bwd", None),
        epoch=epoch,
        graph=None,
        backing=(mapped, view, items),
    )
    if graph is not None:
        _adopt(path, snapshot, graph)
    return snapshot


def _adopt(path: Path, snapshot: CompiledGraph, graph: SocialGraph) -> None:
    """Bind a loaded snapshot to a live graph or raise :class:`SnapshotStaleError`.

    Order matters: attrs are rebound to the canonical dicts *before* the
    journal gap is replayed, so attribute-update markers (which carry no
    payload in the live journal) land on shared dicts exactly like a fresh
    compile.
    """
    # Delta replay may have tombstoned slots (remove_user segments): those
    # hold no user and rebind to ``None``.  A snapshot user missing from the
    # live graph also rebinds to ``None`` for now — either the journal gap
    # replayed below removes it (tombstoning the slot), or the structural
    # checks after the replay raise :class:`SnapshotStaleError`.
    dead = snapshot.dead_slots
    missing = 0
    live_attrs: List[Any] = []
    for index, user in enumerate(snapshot.node_ids):
        if index in dead:
            live_attrs.append(None)
            continue
        attrs = graph._nodes.get(user)
        if attrs is None:
            missing += 1
        live_attrs.append(attrs)
    snapshot.attrs = live_attrs
    if missing and snapshot.epoch == graph.epoch:
        raise SnapshotStaleError(
            path, f"{missing} snapshot users are not in the live graph"
        )
    snapshot.graph = graph
    if snapshot.epoch != graph.epoch:
        deltas = graph.mutations_since(snapshot.epoch)
        if deltas is None or not snapshot.apply_deltas(deltas):
            raise SnapshotStaleError(
                path,
                f"epoch {snapshot.epoch} is behind the live graph "
                f"({graph.epoch}) and the journal does not cover the gap",
            )
    if snapshot.number_of_live_nodes() != graph.number_of_users():
        raise SnapshotStaleError(
            path,
            f"snapshot has {snapshot.number_of_live_nodes()} users, "
            f"graph has {graph.number_of_users()}",
        )
    if set(snapshot.node_index) != set(graph.users()):
        raise SnapshotStaleError(path, "snapshot and graph user sets differ")
    # Compare as sets: delta patches intern new labels in arrival order,
    # while a fresh compile sorts the alphabet — both orders are valid.
    if set(snapshot.labels) != set(graph.labels()):
        raise SnapshotStaleError(
            path,
            f"snapshot labels {snapshot.labels!r} != graph labels {graph.labels()!r}",
        )
    for label_id, label in enumerate(snapshot.labels):
        expected = graph.number_of_relationships(label)
        if snapshot.number_of_edges(label_id) != expected:
            raise SnapshotStaleError(
                path,
                f"label {label!r}: snapshot has {snapshot.number_of_edges(label_id)} "
                f"edges, graph has {expected}",
            )
    setattr(graph, _SNAPSHOT_ATTR, snapshot)


# ---------------------------------------------------------------------------
# Delta segments
# ---------------------------------------------------------------------------


def _enrich_ops(graph: SocialGraph, ops: Sequence[Tuple[Any, ...]]) -> List[List[Any]]:
    """Attach attribute payloads so persisted ops replay without the graph.

    Live-journal ``add_user`` / ``update_user`` markers carry no attributes
    (the dicts are shared); a standalone replay needs them, so the
    checkpoint captures the user's *current* attrs — correct because any
    later change appears as a later ``update_user`` in the same stream.  A
    user removed later in the same span has no current attrs anymore; the
    payload is empty then, which replay never reads — the trailing
    ``remove_user`` tombstones the slot either way.
    """
    enriched: List[List[Any]] = []
    for op in ops:
        kind = op[0]
        if kind in ("add_user", "update_user"):
            enriched.append([kind, op[1], dict(graph._nodes.get(op[1], {}))])
        else:
            enriched.append(list(op))
    return enriched


def _write_delta(
    path: Path,
    base_epoch: int,
    epoch: int,
    ops: List[List[Any]],
    hooks: Optional[SnapshotIOHooks] = None,
) -> None:
    document = {
        "format": _DELTA_FORMAT,
        "version": FORMAT_VERSION,
        "base_epoch": base_epoch,
        "epoch": epoch,
        "ops": ops,
        "ops_crc32": _crc32(_canonical_ops(ops)),
        "doc_crc32": _document_crc(base_epoch, epoch, ops),
    }
    _atomic_write(
        path, json.dumps(document, separators=(",", ":")).encode("utf-8"), hooks
    )


def _read_delta(path: Path, hooks: Optional[SnapshotIOHooks] = None) -> Dict[str, Any]:
    hooks = hooks if hooks is not None else _DEFAULT_IO_HOOKS
    try:
        blob = hooks.after_read(path, path.read_bytes())
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise SnapshotFormatError(path, "json", f"delta segment is not JSON: {error}")
    if not isinstance(document, dict) or document.get("format") != _DELTA_FORMAT:
        raise SnapshotFormatError(path, "format", "not a snapshot delta segment")
    if document.get("version") != FORMAT_VERSION:
        raise SnapshotFormatError(
            path, "version", f"unsupported delta version {document.get('version')!r}"
        )
    ops = document.get("ops")
    if not isinstance(ops, list):
        raise SnapshotFormatError(path, "ops", "ops is not a list")
    if document.get("ops_crc32") != _crc32(_canonical_ops(ops)):
        raise SnapshotFormatError(path, "ops_crc32", "delta checksum mismatch")
    for key in ("base_epoch", "epoch"):
        if not isinstance(document.get(key), int):
            raise SnapshotFormatError(path, key, "missing or non-integer epoch")
    if document.get("doc_crc32") != _document_crc(
        document["base_epoch"], document["epoch"], ops
    ):
        raise SnapshotFormatError(
            path, "doc_crc32", "delta document checksum mismatch"
        )
    return document


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`SnapshotStore.fsck` found and did.

    ``healthy`` means the store ended in a servable state: either a clean
    load succeeds on the (possibly truncated) chain, or the store is empty
    and a warm start will recompile.  Quarantined files are *renamed*, never
    deleted — ``<name>.quarantine.<k>`` keeps the evidence for post-mortems
    while taking it out of the load path.  JSON-friendly via :meth:`to_dict`
    (the CI fault-injection job uploads it as an artifact).
    """

    reaped_tmp: Tuple[str, ...]
    quarantined: Tuple[str, ...]
    base_quarantined: bool
    segments_kept: int
    tip_epoch: Optional[int]
    healthy: bool
    actions: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reaped_tmp": list(self.reaped_tmp),
            "quarantined": list(self.quarantined),
            "base_quarantined": self.base_quarantined,
            "segments_kept": self.segments_kept,
            "tip_epoch": self.tip_epoch,
            "healthy": self.healthy,
            "actions": list(self.actions),
        }


class SnapshotStore:
    """A base snapshot plus contiguous delta segments under one path stem.

    ``SnapshotStore("warm/graph.snap")`` manages ``warm/graph.snap`` and
    ``warm/graph.delta.0``, ``warm/graph.delta.1`` ... — the disk-first,
    derived-and-disposable layout: everything here can be regenerated from
    the canonical graph, so corruption is an inconvenience (recompile), not
    data loss.

    * :meth:`save` writes a fresh base and clears every segment;
    * :meth:`checkpoint` appends the journal burst since the persisted tip
      as one segment (removals included — replay tombstones the slot) — or
      rebases when the journal cannot cover the gap or
      ``max_delta_segments`` is reached;
    * :meth:`load` mmaps the base, replays segments, and (optionally)
      adopts into a live graph — raising :class:`SnapshotStaleError` rather
      than ever serving stale data;
    * :meth:`load_or_compile` is the warm-start entry: any load failure
      falls back to ``compile_graph`` and rewrites the store.
    """

    #: Segment count that triggers a rebase on the next checkpoint.
    max_delta_segments = 16

    def __init__(
        self,
        path,
        *,
        max_delta_segments: Optional[int] = None,
        io_hooks: Optional[SnapshotIOHooks] = None,
        checkpoint_retries: int = 2,
        retry_backoff_seconds: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
        stale_tmp_seconds: float = 60.0,
    ) -> None:
        path = Path(path)
        stem = path.name[: -len(".snap")] if path.name.endswith(".snap") else path.name
        self.directory = path.parent
        self.stem = stem
        self.base_path = self.directory / f"{stem}.snap"
        if max_delta_segments is not None:
            self.max_delta_segments = max(0, max_delta_segments)
        self.io_hooks = io_hooks if io_hooks is not None else _DEFAULT_IO_HOOKS
        self.checkpoint_retries = max(0, checkpoint_retries)
        self.retry_backoff_seconds = retry_backoff_seconds
        self.stale_tmp_seconds = stale_tmp_seconds
        self._sleep = sleep
        self.checkpoint_retries_used = 0
        self.tmp_files_reaped = 0
        self.last_recovery: Optional[RecoveryReport] = None
        # Crash hygiene: a writer that died mid-checkpoint cannot clean up
        # its tmp file; reap stale ones here.  Only *old* tmp files go — a
        # fresh one may belong to a live writer in another process.
        self._reap_tmp()

    # ------------------------------------------------------------------ paths

    def delta_path(self, index: int) -> Path:
        return self.directory / f"{self.stem}.delta.{index}"

    def delta_paths(self) -> List[Path]:
        """Existing segments, contiguous from 0 (a gap ends the chain)."""
        paths: List[Path] = []
        index = 0
        while True:
            candidate = self.delta_path(index)
            if not candidate.exists():
                return paths
            paths.append(candidate)
            index += 1

    def _clear_deltas(self) -> None:
        for path in self.delta_paths():
            self.io_hooks.before_unlink(path)
            path.unlink()

    def _tmp_paths(self) -> List[Path]:
        """Leftover ``*.tmp`` files belonging to this store's stem."""
        if not self.directory.exists():
            return []
        paths = list(self.directory.glob(f"{self.stem}.snap.tmp"))
        paths.extend(sorted(self.directory.glob(f"{self.stem}.delta.*.tmp")))
        return paths

    def _reap_tmp(self, *, force: bool = False) -> List[str]:
        """Unlink orphaned tmp files; return the names removed.

        Without ``force`` only files older than ``stale_tmp_seconds`` go —
        a fresh tmp may belong to a checkpoint in flight in another serving
        process, and reaping it would fail that writer's ``os.replace``.
        :meth:`fsck` forces, because it runs on a store known to be broken.
        """
        reaped: List[str] = []
        now = time.time()
        for tmp in self._tmp_paths():
            try:
                if not force and now - tmp.stat().st_mtime < self.stale_tmp_seconds:
                    continue
                tmp.unlink()
            except OSError:
                continue
            reaped.append(tmp.name)
        self.tmp_files_reaped += len(reaped)
        return reaped

    def _quarantine(self, path: Path) -> Optional[str]:
        """Rename ``path`` to ``<name>.quarantine.<k>``; return the new name."""
        for attempt in range(10000):
            target = path.with_name(f"{path.name}.quarantine.{attempt}")
            if target.exists():
                continue
            try:
                os.replace(path, target)
            except OSError:
                return None
            return target.name
        return None  # pragma: no cover - 10k quarantine collisions

    # ------------------------------------------------------------------- fsck

    def fsck(self, *, verify: bool = True) -> RecoveryReport:
        """Validate the store and heal it in place; report what was done.

        Reaps every orphaned tmp file, then repeatedly attempts a full
        standalone load (``verify=True`` checksums the arrays region and
        attribute table too, catching silent bit flips): each failing pass
        quarantines the unreadable file the error names — a corrupt base
        takes the whole chain with it; a corrupt delta segment truncates the
        chain from that segment on (the contiguous good prefix keeps
        serving).  Quarantined files are renamed to
        ``<name>.quarantine.<k>``, never deleted.  The loop ends when a load
        succeeds, the store is empty, or nothing further can be attributed.
        """
        actions: List[str] = []
        reaped = self._reap_tmp(force=True)
        actions.extend(f"reaped stale tmp file {name}" for name in reaped)
        quarantined: List[str] = []
        base_quarantined = False
        loaded = False
        absent = False
        budget = len(self.delta_paths()) + 2
        while budget > 0:
            budget -= 1
            try:
                self.load(verify=verify)
                loaded = True
                break
            except FileNotFoundError:
                absent = True
                # No base: any segments left are orphans of a dead rebase.
                for path in self.delta_paths():
                    name = self._quarantine(path)
                    if name is not None:
                        quarantined.append(name)
                        actions.append(f"quarantined orphaned segment as {name}")
                break
            except (SnapshotFormatError, OSError) as error:
                bad = Path(getattr(error, "path", self.base_path))
                if bad == self.base_path:
                    name = self._quarantine(self.base_path)
                    if name is None:
                        break
                    base_quarantined = True
                    quarantined.append(name)
                    actions.append(f"quarantined corrupt base as {name} ({error})")
                    continue
                chain = self.delta_paths()
                start = next(
                    (i for i, path in enumerate(chain) if path == bad), 0
                )
                if not chain:
                    break
                for path in chain[start:]:
                    name = self._quarantine(path)
                    if name is not None:
                        quarantined.append(name)
                        actions.append(
                            f"quarantined delta segment {path.name} as {name} "
                            f"({error})"
                        )
        tip: Optional[int] = None
        if loaded:
            try:
                tip = self.tip_epoch()
            except (SnapshotFormatError, OSError):  # pragma: no cover
                tip = None
        report = RecoveryReport(
            reaped_tmp=tuple(reaped),
            quarantined=tuple(quarantined),
            base_quarantined=base_quarantined,
            segments_kept=len(self.delta_paths()),
            tip_epoch=tip,
            healthy=loaded or absent,
            actions=tuple(actions),
        )
        self.last_recovery = report
        return report

    # ------------------------------------------------------------------- save

    def save(self, snapshot: CompiledGraph) -> int:
        """Write ``snapshot`` as a fresh base, dropping every delta segment."""
        self.directory.mkdir(parents=True, exist_ok=True)
        written = save_snapshot(snapshot, self.base_path, io_hooks=self.io_hooks)
        self._clear_deltas()
        return written

    def checkpoint(self, graph: SocialGraph) -> str:
        """Persist the graph's current compiled state; return what happened.

        ``"base"``   — no base existed, wrote one;
        ``"current"`` — the persisted tip already matches the live epoch;
        ``"delta"``  — appended one segment covering the journal burst
        (user removals ride along — replay tombstones the slot);
        ``"rebase"`` — journal gap uncovered / segment budget exhausted /
        base unreadable: rewrote the base.

        Transient I/O failures (full disk, failed fsync) are retried up to
        ``checkpoint_retries`` times with deterministic exponential backoff
        — each attempt restarts from a consistent on-disk state because
        every write is atomic (tmp + fsync + ``os.replace``).  The final
        failure propagates as the original :class:`OSError`.
        """
        attempts = self.checkpoint_retries + 1
        for attempt in range(attempts):
            if attempt:
                self.checkpoint_retries_used += 1
                self._sleep(self.retry_backoff_seconds * (2 ** (attempt - 1)))
            try:
                return self._checkpoint_once(graph)
            except OSError:
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _checkpoint_once(self, graph: SocialGraph) -> str:
        snapshot = compile_graph(graph)
        if not self.base_path.exists():
            self.save(snapshot)
            return "base"
        try:
            tip = self.tip_epoch()
        except SnapshotFormatError:
            self.save(snapshot)
            return "rebase"
        if tip == graph.epoch:
            return "current"
        ops = graph.mutations_since(tip) if tip is not None else None
        segments = self.delta_paths()
        if ops is None or len(segments) >= self.max_delta_segments:
            self.save(snapshot)
            return "rebase"
        _write_delta(
            self.delta_path(len(segments)),
            tip,
            graph.epoch,
            _enrich_ops(graph, ops),
            self.io_hooks,
        )
        return "delta"

    # ------------------------------------------------------------------- load

    def load(
        self, graph: Optional[SocialGraph] = None, *, verify: bool = False
    ) -> CompiledGraph:
        """Mmap the base, replay contiguous delta segments, optionally adopt.

        Raises :class:`FileNotFoundError` when no base exists,
        :class:`SnapshotFormatError` on any unreadable file, and
        :class:`SnapshotStaleError` when adoption into ``graph`` finds the
        persisted state behind the live epoch with no covering journal.
        """
        snapshot = load_snapshot(self.base_path, graph=None, verify=verify)
        for path in self.delta_paths():
            document = _read_delta(path, self.io_hooks)
            if document["base_epoch"] != snapshot.epoch:
                raise SnapshotFormatError(
                    path,
                    "base_epoch",
                    f"segment starts at epoch {document['base_epoch']}, "
                    f"snapshot is at {snapshot.epoch}",
                )
            ops = [tuple(op) for op in document["ops"]]
            if not snapshot.apply_deltas(ops, epoch=document["epoch"]):
                raise SnapshotFormatError(
                    path, "ops", "persisted delta could not be replayed"
                )
        if graph is not None:
            _adopt(self.base_path, snapshot, graph)
        return snapshot

    def load_or_compile(
        self, graph: SocialGraph
    ) -> Tuple[CompiledGraph, str]:
        """Warm-start: adopt the persisted snapshot, self-heal, or recompile.

        Returns ``(snapshot, source)`` with ``source`` one of ``"mapped"``
        (persisted state adopted zero-copy), ``"healed"`` (an unreadable
        file made :meth:`fsck` quarantine the corrupt suffix and the
        surviving prefix — plus any journal replay — served the load),
        ``"absent"``, ``"stale"`` or ``"corrupt"`` (each followed by a
        recompile that rewrote the store).
        """
        try:
            return self.load(graph), "mapped"
        except FileNotFoundError:
            source = "absent"
        except SnapshotStaleError:
            source = "stale"
        except (SnapshotFormatError, OSError):
            source = "corrupt"
            report = self.fsck()
            if report.quarantined or report.reaped_tmp:
                try:
                    return self.load(graph), "healed"
                except FileNotFoundError:
                    source = "corrupt"
                except SnapshotStaleError:
                    source = "stale"
                except (SnapshotFormatError, OSError):
                    source = "corrupt"
        snapshot = compile_graph(graph)
        self.save(snapshot)
        return snapshot, source

    # ------------------------------------------------------------------ stats

    def tip_epoch(self) -> Optional[int]:
        """The epoch the store would load at, or ``None`` with no base."""
        if not self.base_path.exists():
            return None
        epoch = read_snapshot_header(self.base_path, io_hooks=self.io_hooks)["epoch"]
        for path in self.delta_paths():
            document = _read_delta(path, self.io_hooks)
            if document["base_epoch"] != epoch:
                break  # orphaned segment from a torn checkpoint: ignore tail
            epoch = document["epoch"]
        return epoch

    def stat(self) -> Dict[str, Any]:
        """Disk accounting: base/delta bytes, segment count, persisted epoch."""
        base_bytes = self.base_path.stat().st_size if self.base_path.exists() else 0
        segments = self.delta_paths()
        delta_bytes = sum(path.stat().st_size for path in segments)
        try:
            epoch: Optional[int] = self.tip_epoch()
        except SnapshotFormatError:
            epoch = None
        quarantine_files = (
            len(list(self.directory.glob(f"{self.stem}.*quarantine.*")))
            if self.directory.exists()
            else 0
        )
        return {
            "path": str(self.base_path),
            "exists": self.base_path.exists(),
            "base_bytes": base_bytes,
            "delta_bytes": delta_bytes,
            "disk_bytes": base_bytes + delta_bytes,
            "delta_segments": len(segments),
            "epoch": epoch,
            "tmp_files": len(self._tmp_paths()),
            "quarantine_files": quarantine_files,
            "checkpoint_retries_used": self.checkpoint_retries_used,
            "tmp_files_reaped": self.tmp_files_reaped,
        }

    def __repr__(self) -> str:
        return f"<SnapshotStore {self.base_path} (+{len(self.delta_paths())} deltas)>"
