"""The social network graph model (Definition 1 of the paper).

A :class:`SocialGraph` is a directed, edge-labelled multigraph
``G = (V, E, nu, lambda)`` where

* ``V`` is the set of users (nodes), each carrying an attribute tuple
  ``nu(v)`` (e.g. ``gender``, ``age``, ``job``),
* ``E`` is the set of relationships, each carrying a relationship type
  ``lambda(e)`` drawn from a finite alphabet (e.g. ``friend``, ``colleague``,
  ``parent``) plus optional edge attributes (e.g. a trust weight).

Between the same ordered pair of users several relationships may exist as
long as their labels differ — exactly one edge per ``(source, target, label)``
triple.  This mirrors the example of the paper's Figure 1, where Alice and
David are linked by both a ``colleague`` and a ``friend`` relationship.

The class is deliberately self-contained (a plain adjacency-dict design)
rather than a thin wrapper over :mod:`networkx`, because every indexing
algorithm in :mod:`repro.reachability` manipulates it directly; conversion
helpers to/from networkx are provided for interoperability and testing.
"""

from __future__ import annotations

from collections import deque
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)

__all__ = ["AttributeMap", "Relationship", "SocialGraph", "raw_attributes_getter"]

UserId = Hashable

#: One journal record: the operation tag plus its identifying operands.
#: ``("add_user", u)`` / ``("remove_user", u)`` / ``("update_user", u)`` /
#: ``("add_edge", u, v, label)`` / ``("remove_edge", u, v, label)``.
MutationOp = Tuple[Any, ...]

#: Default bound of the mutation journal (entries, not epochs).  Large enough
#: to absorb a realistic churn burst between two snapshot refreshes, small
#: enough that an idle graph never hoards memory.
DEFAULT_JOURNAL_LIMIT = 4096


def raw_attributes_getter(graph):
    """Return the cheapest read-only attribute accessor ``graph`` offers.

    The traversal hot paths read attributes once per visited node; this
    resolves :meth:`SocialGraph.raw_attributes` (no per-call
    :class:`AttributeMap` allocation) when the graph provides it and falls
    back to ``graph.attributes`` for duck-typed graphs that do not.  The
    returned callable is meant to be hoisted out of the loop, and its
    results must be treated as read-only.
    """
    raw = getattr(graph, "raw_attributes", None)
    return raw if raw is not None else graph.attributes


class AttributeMap(MutableMapping):
    """A live, mutable view of one user's attribute tuple ``nu(v)``.

    Returned by :meth:`SocialGraph.attributes`.  Reads delegate straight to
    the canonical per-node dict, so they are always current; every mutation
    (item assignment / deletion and the :class:`MutableMapping` methods
    built on them — ``update``, ``pop``, ``setdefault``, ``clear``) bumps
    the owning graph's ``epoch``, invalidating compiled snapshots' condition
    memos and the engine's decision caches exactly like
    :meth:`SocialGraph.update_user` does.  This closes the historical
    write-through loophole where attribute writes left stale cached
    decisions behind.
    """

    __slots__ = ("_graph", "_data", "_user")

    def __init__(self, graph: "SocialGraph", data: Dict[str, Any], user: UserId = None) -> None:
        self._graph = graph
        self._data = data
        self._user = user

    # Reads delegate without touching the epoch.

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    # Writes are real graph mutations: bump the epoch (and the journal).

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._graph._record("update_user", self._user)

    def __delitem__(self, key: str) -> None:
        del self._data[key]
        self._graph._record("update_user", self._user)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttributeMap):
            return self._data == other._data
        return self._data == other

    __hash__ = None  # mutable mapping

    def __repr__(self) -> str:
        return repr(self._data)


@dataclass(frozen=True)
class Relationship:
    """A single labelled, directed relationship between two users.

    ``source -[label]-> target`` with optional free-form ``attributes``
    (the paper's Figure 1 annotates some edges with a trust value, e.g.
    ``Babysitting; 0.8``).

    Identity (equality and hashing) is the ``(source, target, label)`` triple;
    the attribute mapping is carried along but does not participate, so that
    relationships can live in sets and act as dictionary keys.
    """

    source: UserId
    target: UserId
    label: str
    attributes: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def key(self) -> Tuple[UserId, UserId, str]:
        """Return the identifying triple of this relationship."""
        return (self.source, self.target, self.label)

    def reversed(self) -> "Relationship":
        """Return the same relationship traversed in the opposite direction."""
        return Relationship(self.target, self.source, self.label, self.attributes)

    def __str__(self) -> str:
        return f"{self.source} -[{self.label}]-> {self.target}"


class SocialGraph:
    """Directed, edge-labelled social network graph with node attributes.

    The public API talks about *users* and *relationships* to stay close to
    the paper's vocabulary, but the structure is a general directed labelled
    multigraph and is reused as-is by the line-graph and index machinery.

    Examples
    --------
    >>> g = SocialGraph()
    >>> g.add_user("alice", gender="female", age=24)
    >>> g.add_user("bill")
    >>> g.add_relationship("alice", "bill", "friend")
    >>> g.has_relationship("alice", "bill", "friend")
    True
    """

    def __init__(self, name: str = "", *, journal_limit: int = DEFAULT_JOURNAL_LIMIT) -> None:
        self.name = name
        self._nodes: Dict[UserId, Dict[str, Any]] = {}
        # _succ[u][v][label] -> Relationship ; _pred mirrors it for reverse walks.
        self._succ: Dict[UserId, Dict[UserId, Dict[str, Relationship]]] = {}
        self._pred: Dict[UserId, Dict[UserId, Dict[str, Relationship]]] = {}
        self._num_edges = 0
        self._label_counts: Dict[str, int] = {}
        self._epoch = 0
        # Bounded, *compacting* mutation journal.  Each entry is a mutable
        # ``[last_epoch, op, weight]`` triple: ``op`` is the operation,
        # ``weight`` how many epoch bumps the entry stands for, and
        # ``last_epoch`` the most recent of them.  Repeated attribute writes
        # to the same user merge into one entry (the op is a pure
        # invalidation marker — it carries no attribute payload — so
        # coalescing is replay-safe; see :meth:`_record`), which is what lets
        # ``journal_limit`` absorb attribute-hot churn bursts far larger than
        # the entry bound.  The journal is *complete* for every epoch in
        # ``(_journal_floor, epoch]``; once an entry falls off the left end
        # the floor advances and older snapshots can no longer be patched —
        # they rebuild from scratch.
        self._journal: Deque[List[Any]] = deque()
        self._journal_limit = max(0, journal_limit)
        self._journal_floor = 0
        # Total weight of the retained entries: every bump recorded since the
        # floor is represented.  ``mutations_since`` checks the invariant
        # ``weight >= epoch - floor`` to detect epoch bumps that bypassed the
        # journal (a defensive guard against buggy mutation paths).
        self._journal_weight = 0
        # user -> its live ("update_user", user) journal entry, for merging.
        self._attr_entries: Dict[UserId, List[Any]] = {}

    # ---------------------------------------------------- epochs and journal

    @property
    def epoch(self) -> int:
        """A version stamp bumped by every mutation.

        Derived structures (compiled snapshots, decision caches) record the
        epoch they were built at and rebuild lazily when it moves on.  Every
        mutation path bumps it — the structural methods here as well as
        writes through the live :class:`AttributeMap` returned by
        :meth:`attributes`.
        """
        return self._epoch

    @property
    def journal_limit(self) -> int:
        """The journal's entry bound; ``0`` disables journaling entirely.

        Assigning a new limit clears the journal and advances its floor to
        the current epoch, so coverage never spans a reconfiguration.  The
        churn benchmarks set ``journal_limit = 0`` to force every snapshot
        refresh down the full-rebuild path.
        """
        return self._journal_limit

    @journal_limit.setter
    def journal_limit(self, limit: int) -> None:
        self._journal_limit = max(0, limit)
        self._journal.clear()
        self._attr_entries.clear()
        self._journal_weight = 0
        self._journal_floor = self._epoch

    def _record(self, *op: Any) -> None:
        """Commit one mutation: bump the epoch and journal the operation.

        Every mutating path funnels through here — the structural methods
        and :class:`AttributeMap` write-through alike — so the journal is
        exactly as complete as the epoch is monotone.

        **Compaction.**  An ``("update_user", u)`` record is a pure
        invalidation marker: it names the user whose attributes changed but
        carries no values (the compiled snapshot shares the attribute dicts,
        so replaying the marker just re-invalidates derived state).  A
        repeat write to the same user therefore *merges* with the user's
        existing entry: the old slot is **tombstoned** (weight zeroed — its
        coverage transfers wholesale) and one fresh entry carrying the
        combined weight is appended at the young end.  Floating the marker
        later in the replayed span is safe because attribute markers commute
        with every other operation (``remove_user`` aborts delta patches
        wholesale before any op is applied), and coverage stays exact: an
        entry is part of the span ``(epoch, now]`` iff any of its merged
        bumps is, and ``last_epoch`` is their maximum.  Keeping merged
        coverage at the young end matters for eviction: overflow pops the
        *oldest* slot, which for a merge chain is a free tombstone — the
        floor only ever advances past coverage that is genuinely gone, so
        attribute-hot histories with interleaved structural ops keep their
        delta coverage instead of collapsing to a full rebuild.
        """
        self._epoch += 1
        if not self._journal_limit:
            self._journal_floor = self._epoch
            return
        self._journal_weight += 1
        weight = 1
        if op[0] == "update_user":
            merged = self._attr_entries.get(op[1])
            if merged is not None:
                weight += merged[2]
                merged[2] = 0  # tombstone: coverage moves to the new entry
        entry: List[Any] = [self._epoch, op, weight]
        self._journal.append(entry)
        if op[0] == "update_user":
            self._attr_entries[op[1]] = entry
        while len(self._journal) > self._journal_limit:
            evicted = self._journal.popleft()
            if not evicted[2]:
                continue  # a tombstone: its coverage lives in a younger entry
            self._journal_weight -= evicted[2]
            if evicted[0] > self._journal_floor:
                self._journal_floor = evicted[0]
            evicted_op = evicted[1]
            if (
                evicted_op[0] == "update_user"
                and self._attr_entries.get(evicted_op[1]) is evicted
            ):
                del self._attr_entries[evicted_op[1]]

    def mutations_since(self, epoch: int) -> Optional[List[MutationOp]]:
        """Return the mutations committed after ``epoch``, oldest first.

        Repeated attribute writes to one user are **coalesced**: the span may
        contain a single ``("update_user", u)`` marker standing for many
        writes (and, when the merged entry straddles ``epoch``, for writes
        from just before the span too — harmless over-invalidation).  Every
        structural operation appears exactly once, in commit order.

        Returns ``None`` when the journal cannot prove completeness for the
        span ``(epoch, self.epoch]`` — the journal overflowed past ``epoch``,
        ``epoch`` is from another graph's timeline, or an epoch bump bypassed
        the journal (a defensive weight check).  ``None`` tells
        :func:`~repro.graph.compiled.compile_graph` to fall back to a full
        snapshot rebuild; a (possibly empty) list is a complete delta.
        """
        if epoch == self._epoch:
            return []
        if epoch < self._journal_floor or epoch > self._epoch:
            return None
        if self._journal_weight < self._epoch - self._journal_floor:
            return None  # some bump bypassed _record: coverage is unprovable
        return [
            op
            for entry_epoch, op, weight in self._journal
            if weight and entry_epoch > epoch
        ]

    # ------------------------------------------------------------------ users

    def add_user(self, user: UserId, **attributes: Any) -> None:
        """Add a user node with the given attributes.

        Raises :class:`DuplicateNodeError` if the user already exists; use
        :meth:`update_user` to change attributes of an existing user.
        """
        if user in self._nodes:
            raise DuplicateNodeError(f"user {user!r} already exists")
        self._nodes[user] = dict(attributes)
        self._succ[user] = {}
        self._pred[user] = {}
        self._record("add_user", user)

    def ensure_user(self, user: UserId, **attributes: Any) -> None:
        """Add the user if missing, merging ``attributes`` into existing ones."""
        if user not in self._nodes:
            self.add_user(user, **attributes)
        elif attributes:
            self._nodes[user].update(attributes)
            self._record("update_user", user)

    def update_user(self, user: UserId, **attributes: Any) -> None:
        """Merge ``attributes`` into an existing user's attribute tuple."""
        self._nodes[self._require(user)].update(attributes)
        self._record("update_user", user)

    def remove_user(self, user: UserId) -> None:
        """Remove a user and every relationship incident to it."""
        self._require(user)
        # A self-loop shows up in both incidence lists; deduplicate by key so
        # it is removed exactly once.
        incident = {
            rel.key(): rel
            for rel in list(self.out_relationships(user)) + list(self.in_relationships(user))
        }
        for rel in incident.values():
            self.remove_relationship(rel.source, rel.target, rel.label)
        del self._nodes[user]
        del self._succ[user]
        del self._pred[user]
        # Close the user's attribute-merge anchor: a write after a later
        # re-add must append a fresh entry (in order w.r.t. the removal)
        # rather than float this user's pre-removal marker forward.
        self._attr_entries.pop(user, None)
        self._record("remove_user", user)

    def has_user(self, user: UserId) -> bool:
        """Return whether ``user`` is a node of the graph."""
        return user in self._nodes

    def users(self) -> Iterator[UserId]:
        """Iterate over all user ids."""
        return iter(self._nodes)

    def attributes(self, user: UserId) -> AttributeMap:
        """Return the attribute mapping ``nu(user)`` (a live, epoch-aware view).

        Reads see current values without any copying; writes through the
        returned :class:`AttributeMap` bump the mutation :attr:`epoch` so
        cached decisions and condition memos are invalidated, same as
        :meth:`update_user`.
        """
        return AttributeMap(self, self._nodes[self._require(user)], user)

    def raw_attributes(self, user: UserId) -> Dict[str, Any]:
        """Return the raw attribute dict of ``user`` — read-only by convention.

        The traversal hot paths use this to avoid allocating an epoch-aware
        :class:`AttributeMap` per visited node.  Callers must not write
        through the returned dict (that would bypass epoch bookkeeping);
        mutate via :meth:`attributes` or :meth:`update_user` instead.
        """
        return self._nodes[self._require(user)]

    def attribute(self, user: UserId, name: str, default: Any = None) -> Any:
        """Return a single attribute of a user, or ``default`` if unset."""
        return self._nodes[self._require(user)].get(name, default)

    # --------------------------------------------------------- relationships

    def add_relationship(
        self,
        source: UserId,
        target: UserId,
        label: str,
        *,
        reciprocal: bool = False,
        **attributes: Any,
    ) -> Relationship:
        """Add a relationship ``source -[label]-> target``.

        Both endpoints must already exist (use :class:`~repro.graph.builder.
        GraphBuilder` for a more forgiving construction API).  When
        ``reciprocal`` is true the symmetric edge ``target -[label]-> source``
        is added as well (convenient for inherently mutual relationships such
        as ``friend`` on undirected-style networks).

        Returns the forward :class:`Relationship`.
        """
        self._require(source)
        self._require(target)
        if label in self._succ[source].get(target, {}):
            raise DuplicateEdgeError(
                f"relationship {source!r} -[{label}]-> {target!r} already exists"
            )
        rel = Relationship(source, target, str(label), dict(attributes))
        self._succ[source].setdefault(target, {})[rel.label] = rel
        self._pred[target].setdefault(source, {})[rel.label] = rel
        self._num_edges += 1
        self._label_counts[rel.label] = self._label_counts.get(rel.label, 0) + 1
        self._record("add_edge", source, target, rel.label)
        if reciprocal and not self.has_relationship(target, source, label):
            self.add_relationship(target, source, label, **attributes)
        return rel

    def remove_relationship(self, source: UserId, target: UserId, label: str) -> None:
        """Remove the relationship identified by ``(source, target, label)``."""
        try:
            rel = self._succ[self._require(source)][target][label]
        except KeyError:
            raise EdgeNotFoundError(source, target, label) from None
        del self._succ[source][target][label]
        if not self._succ[source][target]:
            del self._succ[source][target]
        del self._pred[target][source][label]
        if not self._pred[target][source]:
            del self._pred[target][source]
        self._num_edges -= 1
        self._label_counts[rel.label] -= 1
        if not self._label_counts[rel.label]:
            del self._label_counts[rel.label]
        self._record("remove_edge", source, target, rel.label)

    def has_relationship(self, source: UserId, target: UserId, label: Optional[str] = None) -> bool:
        """Return whether a relationship exists from ``source`` to ``target``.

        With ``label=None`` any label counts; otherwise the label must match.
        """
        edges = self._succ.get(source, {}).get(target)
        if not edges:
            return False
        return True if label is None else label in edges

    def get_relationship(self, source: UserId, target: UserId, label: str) -> Relationship:
        """Return the :class:`Relationship` for the given triple."""
        try:
            return self._succ[source][target][label]
        except KeyError:
            raise EdgeNotFoundError(source, target, label) from None

    def relationships(self) -> Iterator[Relationship]:
        """Iterate over every relationship in the graph."""
        for targets in self._succ.values():
            for edges in targets.values():
                yield from edges.values()

    def out_relationships(self, user: UserId, label: Optional[str] = None) -> Iterator[Relationship]:
        """Iterate over relationships going out of ``user`` (optionally filtered by label)."""
        for edges in self._succ[self._require(user)].values():
            for rel in edges.values():
                if label is None or rel.label == label:
                    yield rel

    def in_relationships(self, user: UserId, label: Optional[str] = None) -> Iterator[Relationship]:
        """Iterate over relationships coming into ``user`` (optionally filtered by label)."""
        for edges in self._pred[self._require(user)].values():
            for rel in edges.values():
                if label is None or rel.label == label:
                    yield rel

    def successors(self, user: UserId, label: Optional[str] = None) -> Iterator[UserId]:
        """Iterate over users reachable from ``user`` by one (label-matching) edge."""
        for target, edges in self._succ[self._require(user)].items():
            if label is None or label in edges:
                yield target

    def predecessors(self, user: UserId, label: Optional[str] = None) -> Iterator[UserId]:
        """Iterate over users with a (label-matching) edge into ``user``."""
        for source, edges in self._pred[self._require(user)].items():
            if label is None or label in edges:
                yield source

    def neighbors(self, user: UserId, label: Optional[str] = None) -> Iterator[UserId]:
        """Iterate over users adjacent to ``user`` in either direction (deduplicated)."""
        seen = set()
        for other in self.successors(user, label):
            if other not in seen:
                seen.add(other)
                yield other
        for other in self.predecessors(user, label):
            if other not in seen:
                seen.add(other)
                yield other

    # ----------------------------------------------------------------- sizes

    def number_of_users(self) -> int:
        """Return ``|V|``."""
        return len(self._nodes)

    def number_of_relationships(self, label: Optional[str] = None) -> int:
        """Return ``|E|``, or the number of edges with the given label."""
        if label is None:
            return self._num_edges
        return self._label_counts.get(label, 0)

    def labels(self) -> Tuple[str, ...]:
        """Return the relationship-type alphabet (sorted for determinism)."""
        return tuple(sorted(self._label_counts))

    def out_degree(self, user: UserId, label: Optional[str] = None) -> int:
        """Return the number of relationships going out of ``user``."""
        targets = self._succ[self._require(user)]
        if label is None:
            return sum(map(len, targets.values()))
        return sum(1 for edges in targets.values() if label in edges)

    def in_degree(self, user: UserId, label: Optional[str] = None) -> int:
        """Return the number of relationships coming into ``user``."""
        sources = self._pred[self._require(user)]
        if label is None:
            return sum(map(len, sources.values()))
        return sum(1 for edges in sources.values() if label in edges)

    def degree(self, user: UserId, label: Optional[str] = None) -> int:
        """Return the total (in + out) degree of ``user``."""
        return self.out_degree(user, label) + self.in_degree(user, label)

    # ------------------------------------------------------------- protocols

    def __contains__(self, user: UserId) -> bool:
        return self.has_user(user)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[UserId]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<SocialGraph{label}: {self.number_of_users()} users, "
            f"{self.number_of_relationships()} relationships, "
            f"{len(self._label_counts)} relationship types>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialGraph):
            return NotImplemented
        if set(self._nodes) != set(other._nodes):
            return False
        for user, attrs in self._nodes.items():
            if attrs != other._nodes[user]:
                return False
        mine = {rel.key(): dict(rel.attributes) for rel in self.relationships()}
        theirs = {rel.key(): dict(rel.attributes) for rel in other.relationships()}
        return mine == theirs

    # ----------------------------------------------------------------- views

    def copy(self, name: Optional[str] = None) -> "SocialGraph":
        """Return a deep structural copy of the graph."""
        clone = SocialGraph(name=self.name if name is None else name)
        for user, attrs in self._nodes.items():
            clone.add_user(user, **attrs)
        for rel in self.relationships():
            clone.add_relationship(rel.source, rel.target, rel.label, **dict(rel.attributes))
        return clone

    def subgraph(self, users: Iterable[UserId], name: str = "") -> "SocialGraph":
        """Return the induced subgraph on ``users`` (unknown ids are ignored)."""
        keep = {u for u in users if u in self._nodes}
        sub = SocialGraph(name=name or (self.name + "-subgraph" if self.name else "subgraph"))
        for user in keep:
            sub.add_user(user, **self._nodes[user])
        # Only the kept nodes' out-edges can be induced, so the scan is
        # O(edges leaving the kept set) rather than O(|E|).
        for user in keep:
            for target, edges in self._succ[user].items():
                if target in keep:
                    for rel in edges.values():
                        sub.add_relationship(user, target, rel.label, **dict(rel.attributes))
        return sub

    def reversed(self, name: str = "") -> "SocialGraph":
        """Return a copy of the graph with every relationship direction flipped."""
        rev = SocialGraph(name=name or (self.name + "-reversed" if self.name else "reversed"))
        for user, attrs in self._nodes.items():
            rev.add_user(user, **attrs)
        for rel in self.relationships():
            rev.add_relationship(rel.target, rel.source, rel.label, **dict(rel.attributes))
        return rev

    # --------------------------------------------------------------- interop

    def to_networkx(self):
        """Return an equivalent :class:`networkx.MultiDiGraph`."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for user, attrs in self._nodes.items():
            graph.add_node(user, **attrs)
        for rel in self.relationships():
            graph.add_edge(rel.source, rel.target, key=rel.label, label=rel.label, **dict(rel.attributes))
        return graph

    @classmethod
    def from_networkx(cls, graph, label_attribute: str = "label", default_label: str = "friend") -> "SocialGraph":
        """Build a :class:`SocialGraph` from a networkx directed (multi)graph.

        Edge labels are read from ``label_attribute``; edges without one get
        ``default_label``.  Parallel edges with the same label collapse into
        one relationship.
        """
        sg = cls(name=str(graph.graph.get("name", "")))
        for node, attrs in graph.nodes(data=True):
            sg.add_user(node, **attrs)
        for source, target, attrs in graph.edges(data=True):
            label = attrs.get(label_attribute, default_label)
            extra = {k: v for k, v in attrs.items() if k != label_attribute}
            if not sg.has_relationship(source, target, label):
                sg.add_relationship(source, target, label, **extra)
        return sg

    # --------------------------------------------------------------- private

    def _require(self, user: UserId) -> UserId:
        if user not in self._nodes:
            raise NodeNotFoundError(user)
        return user
