"""Descriptive statistics of social graphs.

Used by the benchmark harness to characterize generated workloads (so that
docs/benchmarks.md can report the shape of each synthetic dataset) and by the
examples to print a quick summary of the network being protected.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.social_graph import SocialGraph, UserId

__all__ = ["GraphSummary", "degree_distribution", "label_distribution", "summarize",
           "average_degree", "connected_component_sizes", "estimate_effective_diameter"]


@dataclass(frozen=True)
class GraphSummary:
    """A compact description of a social graph's shape."""

    name: str
    users: int
    relationships: int
    labels: Tuple[str, ...]
    label_counts: Dict[str, int]
    average_out_degree: float
    max_out_degree: int
    weakly_connected_components: int
    largest_component_size: int
    effective_diameter: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Return the summary as a plain dictionary (for JSON reports)."""
        return {
            "name": self.name,
            "users": self.users,
            "relationships": self.relationships,
            "labels": list(self.labels),
            "label_counts": dict(self.label_counts),
            "average_out_degree": self.average_out_degree,
            "max_out_degree": self.max_out_degree,
            "weakly_connected_components": self.weakly_connected_components,
            "largest_component_size": self.largest_component_size,
            "effective_diameter": self.effective_diameter,
        }


def degree_distribution(graph: SocialGraph, direction: str = "out") -> Dict[int, int]:
    """Return a histogram mapping degree value to the number of users with it."""
    if direction not in {"out", "in", "total"}:
        raise ValueError("direction must be 'out', 'in' or 'total'")
    counter: Counter = Counter()
    for user in graph.users():
        if direction == "out":
            degree = graph.out_degree(user)
        elif direction == "in":
            degree = graph.in_degree(user)
        else:
            degree = graph.degree(user)
        counter[degree] += 1
    return dict(counter)


def label_distribution(graph: SocialGraph) -> Dict[str, int]:
    """Return the number of relationships per relationship type."""
    return {label: graph.number_of_relationships(label) for label in graph.labels()}


def average_degree(graph: SocialGraph) -> float:
    """Return the average out-degree (|E| / |V|), 0.0 for the empty graph."""
    n = graph.number_of_users()
    return graph.number_of_relationships() / n if n else 0.0


def connected_component_sizes(graph: SocialGraph) -> List[int]:
    """Return the sizes of weakly connected components, largest first."""
    unvisited = set(graph.users())
    sizes: List[int] = []
    while unvisited:
        start = next(iter(unvisited))
        queue = deque([start])
        unvisited.discard(start)
        size = 0
        while queue:
            user = queue.popleft()
            size += 1
            for neighbor in graph.neighbors(user):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    queue.append(neighbor)
        sizes.append(size)
    sizes.sort(reverse=True)
    return sizes


def _bfs_distances(graph: SocialGraph, start: UserId) -> Dict[UserId, int]:
    distances = {start: 0}
    queue = deque([start])
    while queue:
        user = queue.popleft()
        for neighbor in graph.neighbors(user):
            if neighbor not in distances:
                distances[neighbor] = distances[user] + 1
                queue.append(neighbor)
    return distances


def estimate_effective_diameter(
    graph: SocialGraph,
    samples: int = 20,
    percentile: float = 0.9,
) -> Optional[float]:
    """Estimate the 90th-percentile pairwise distance by sampling BFS sources.

    Returns ``None`` for graphs with fewer than two users.  Directions are
    ignored (the measure describes the social topology, not a traversal).
    """
    users = list(graph.users())
    if len(users) < 2:
        return None
    step = max(1, len(users) // samples)
    all_distances: List[int] = []
    for user in users[::step][:samples]:
        distances = _bfs_distances(graph, user)
        all_distances.extend(d for d in distances.values() if d > 0)
    if not all_distances:
        return None
    all_distances.sort()
    index = min(len(all_distances) - 1, int(percentile * len(all_distances)))
    return float(all_distances[index])


def summarize(graph: SocialGraph, *, diameter_samples: int = 20) -> GraphSummary:
    """Compute a :class:`GraphSummary` for the graph."""
    out_degrees = [graph.out_degree(user) for user in graph.users()]
    components = connected_component_sizes(graph)
    return GraphSummary(
        name=graph.name,
        users=graph.number_of_users(),
        relationships=graph.number_of_relationships(),
        labels=graph.labels(),
        label_counts=label_distribution(graph),
        average_out_degree=(sum(out_degrees) / len(out_degrees)) if out_degrees else 0.0,
        max_out_degree=max(out_degrees, default=0),
        weakly_connected_components=len(components),
        largest_component_size=components[0] if components else 0,
        effective_diameter=estimate_effective_diameter(graph, samples=diameter_samples),
    )
