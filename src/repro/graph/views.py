"""Read-only filtered views over a :class:`~repro.graph.social_graph.SocialGraph`.

Views avoid copying the underlying graph when an algorithm only needs to see
a subset of it: the relationships of a single type (e.g. the ``friend``
sub-network used by a single-label access rule), the relationships whose
attributes pass a predicate (e.g. trust above a threshold, as in the
Carminati et al. baseline), or the users matching an attribute filter.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from repro.graph.social_graph import (
    AttributeMap,
    Relationship,
    SocialGraph,
    UserId,
    raw_attributes_getter,
)

__all__ = ["GraphView", "label_view", "trust_view", "user_filter_view"]

RelationshipPredicate = Callable[[Relationship], bool]
UserPredicate = Callable[[UserId, Dict[str, Any]], bool]


class GraphView:
    """A lazily filtered, read-only view of a social graph.

    The view exposes the subset of the graph API needed by the traversal
    engines (successor / predecessor iteration and attribute lookups); it
    never materializes a copy.  Users excluded by the user predicate are
    invisible along with all their relationships.
    """

    def __init__(
        self,
        graph: SocialGraph,
        relationship_predicate: Optional[RelationshipPredicate] = None,
        user_predicate: Optional[UserPredicate] = None,
    ) -> None:
        self._graph = graph
        self._keep_relationship = relationship_predicate or (lambda _rel: True)
        self._keep_user = user_predicate or (lambda _user, _attrs: True)

    # ----------------------------------------------------------------- users

    def has_user(self, user: UserId) -> bool:
        """Return whether the user exists and passes the user filter."""
        return self._graph.has_user(user) and self._keep_user(
            user, self.raw_attributes(user)
        )

    def users(self) -> Iterator[UserId]:
        """Iterate over visible users."""
        for user in self._graph.users():
            if self._keep_user(user, self.raw_attributes(user)):
                yield user

    def attributes(self, user: UserId) -> AttributeMap:
        """Return the attributes of a visible user (a live, epoch-aware view).

        Like :meth:`SocialGraph.attributes`, writes through the returned
        mapping bump the underlying graph's epoch.
        """
        return self._graph.attributes(user)

    def raw_attributes(self, user: UserId) -> Dict[str, Any]:
        """Raw read-only attribute dict (see :meth:`SocialGraph.raw_attributes`)."""
        return raw_attributes_getter(self._graph)(user)

    # --------------------------------------------------------- relationships

    def _visible(self, rel: Relationship) -> bool:
        return (
            self._keep_relationship(rel)
            and self._keep_user(rel.source, self.raw_attributes(rel.source))
            and self._keep_user(rel.target, self.raw_attributes(rel.target))
        )

    def relationships(self) -> Iterator[Relationship]:
        """Iterate over visible relationships."""
        for rel in self._graph.relationships():
            if self._visible(rel):
                yield rel

    def out_relationships(self, user: UserId, label: Optional[str] = None) -> Iterator[Relationship]:
        """Iterate over visible relationships leaving ``user``."""
        for rel in self._graph.out_relationships(user, label):
            if self._visible(rel):
                yield rel

    def in_relationships(self, user: UserId, label: Optional[str] = None) -> Iterator[Relationship]:
        """Iterate over visible relationships entering ``user``."""
        for rel in self._graph.in_relationships(user, label):
            if self._visible(rel):
                yield rel

    def successors(self, user: UserId, label: Optional[str] = None) -> Iterator[UserId]:
        """Iterate over visible direct successors of ``user``."""
        seen = set()
        for rel in self.out_relationships(user, label):
            if rel.target not in seen:
                seen.add(rel.target)
                yield rel.target

    def predecessors(self, user: UserId, label: Optional[str] = None) -> Iterator[UserId]:
        """Iterate over visible direct predecessors of ``user``."""
        seen = set()
        for rel in self.in_relationships(user, label):
            if rel.source not in seen:
                seen.add(rel.source)
                yield rel.source

    # ----------------------------------------------------------------- misc

    def number_of_users(self) -> int:
        """Return the number of visible users."""
        return sum(1 for _ in self.users())

    def number_of_relationships(self) -> int:
        """Return the number of visible relationships."""
        return sum(1 for _ in self.relationships())

    def materialize(self, name: str = "") -> SocialGraph:
        """Copy the visible part of the graph into a standalone :class:`SocialGraph`."""
        result = SocialGraph(name=name)
        for user in self.users():
            result.add_user(user, **self._graph.attributes(user))
        for rel in self.relationships():
            result.add_relationship(rel.source, rel.target, rel.label, **dict(rel.attributes))
        return result

    def __repr__(self) -> str:
        return f"<GraphView over {self._graph!r}>"


def label_view(graph: SocialGraph, *labels: str) -> GraphView:
    """Return a view containing only relationships with one of ``labels``."""
    allowed = set(labels)
    return GraphView(graph, relationship_predicate=lambda rel: rel.label in allowed)


def trust_view(graph: SocialGraph, minimum_trust: float, attribute: str = "trust") -> GraphView:
    """Return a view keeping only relationships with trust >= ``minimum_trust``.

    Relationships without a trust attribute are treated as fully trusted
    (trust 1.0), matching the convention used by the Carminati baseline.
    """
    return GraphView(
        graph,
        relationship_predicate=lambda rel: float(rel.attributes.get(attribute, 1.0)) >= minimum_trust,
    )


def user_filter_view(graph: SocialGraph, predicate: UserPredicate) -> GraphView:
    """Return a view keeping only users for which ``predicate(user, attrs)`` is true."""
    return GraphView(graph, user_predicate=predicate)
