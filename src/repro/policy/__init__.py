"""The reachability-based access-control model (Section 2 of the paper).

Public entry points:

* :class:`~repro.policy.path_expression.PathExpression` — the path language
  of access conditions (``friend+[1,2]/colleague+[1]{age >= 18}``).
* :class:`~repro.policy.rules.AccessRule` / :class:`~repro.policy.rules.AccessCondition`
  — Definitions 2 and 3.
* :class:`~repro.policy.store.PolicyStore` — resources and their rules.
* :class:`~repro.policy.engine.AccessControlEngine` — request interception,
  evaluation through a pluggable reachability backend, decisions with
  explanations.
* :class:`~repro.policy.audit.AuditLog`, :mod:`~repro.policy.administration`
  — operational tooling.
* :mod:`~repro.policy.carminati` — the related-work baseline model.
"""

from repro.policy.administration import (
    PolicyReport,
    ValidationIssue,
    analyze_policy,
    find_redundant_rules,
    validate_rule,
)
from repro.policy.audit import AuditLog
from repro.policy.carminati import CarminatiEngine, CarminatiRule
from repro.policy.conditions import AttributeCondition, evaluate_conditions
from repro.policy.decisions import AccessDecision, ConditionOutcome, Effect, RuleOutcome
from repro.policy.engine import AccessControlEngine
from repro.policy.path_expression import PathExpression, parse_path_expression
from repro.policy.resources import Resource
from repro.policy.rules import AccessCondition, AccessRule, CombinationMode
from repro.policy.steps import DepthInterval, Direction, Step
from repro.policy.store import PolicyStore

__all__ = [
    "AttributeCondition",
    "evaluate_conditions",
    "DepthInterval",
    "Direction",
    "Step",
    "PathExpression",
    "parse_path_expression",
    "AccessCondition",
    "AccessRule",
    "CombinationMode",
    "Resource",
    "PolicyStore",
    "AccessDecision",
    "ConditionOutcome",
    "RuleOutcome",
    "Effect",
    "AccessControlEngine",
    "AuditLog",
    "PolicyReport",
    "ValidationIssue",
    "analyze_policy",
    "find_redundant_rules",
    "validate_rule",
    "CarminatiEngine",
    "CarminatiRule",
]
