"""Policy administration helpers: validation, conflict and redundancy analysis.

The paper motivates its model with the observation that manual friend-list
curation is "tedious and time-consuming"; rule authoring has failure modes of
its own, so this module gives resource owners (and the examples / tests)
tools to sanity-check a policy before relying on it:

* :func:`validate_rule` — structural checks of one rule against a graph
  (do the relationship types exist? are the depth intervals meaningful given
  the graph? do attribute conditions reference attributes any user has?);
* :func:`find_redundant_rules` — rules whose textual conditions duplicate
  another rule on the same resource;
* :func:`analyze_policy` — a whole-store report combining both plus simple
  coverage information (resources without any rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set, Tuple

from repro.graph.social_graph import SocialGraph
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore

__all__ = ["ValidationIssue", "PolicyReport", "validate_rule", "find_redundant_rules", "analyze_policy"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem (or warning) found while analysing a rule."""

    severity: str            # "error" | "warning"
    rule_id: Hashable
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] rule {self.rule_id!r}: {self.message}"


@dataclass
class PolicyReport:
    """The result of analysing a whole policy store."""

    issues: List[ValidationIssue] = field(default_factory=list)
    redundant_rules: List[Tuple[Hashable, Hashable]] = field(default_factory=list)
    unprotected_resources: List[Hashable] = field(default_factory=list)

    def errors(self) -> List[ValidationIssue]:
        """Return only the error-severity issues."""
        return [issue for issue in self.issues if issue.severity == "error"]

    def warnings(self) -> List[ValidationIssue]:
        """Return only the warning-severity issues."""
        return [issue for issue in self.issues if issue.severity == "warning"]

    def is_clean(self) -> bool:
        """Return whether the analysis found nothing to report."""
        return not self.issues and not self.redundant_rules and not self.unprotected_resources


def _known_attributes(graph: SocialGraph) -> Set[str]:
    attributes: Set[str] = set()
    for user in graph.users():
        attributes.update(graph.attributes(user))
    return attributes


def validate_rule(rule: AccessRule, graph: SocialGraph) -> List[ValidationIssue]:
    """Validate one rule against a graph; returns a (possibly empty) issue list."""
    issues: List[ValidationIssue] = []
    labels = set(graph.labels())
    attributes = _known_attributes(graph)
    if not graph.has_user(rule.owner):
        issues.append(
            ValidationIssue("error", rule.rule_id, f"owner {rule.owner!r} is not a user of the graph")
        )
    for condition in rule.conditions:
        for step in condition.path:
            if step.label not in labels:
                issues.append(
                    ValidationIssue(
                        "error",
                        rule.rule_id,
                        f"relationship type {step.label!r} does not exist in the graph "
                        f"(known types: {sorted(labels)})",
                    )
                )
            if step.max_depth() > max(1, graph.number_of_users() - 1):
                issues.append(
                    ValidationIssue(
                        "warning",
                        rule.rule_id,
                        f"step {step.to_text()!r} allows depth {step.max_depth()}, larger than "
                        f"any simple path in a graph of {graph.number_of_users()} users",
                    )
                )
            for attribute_condition in step.conditions:
                if attribute_condition.attribute not in attributes:
                    issues.append(
                        ValidationIssue(
                            "warning",
                            rule.rule_id,
                            f"attribute {attribute_condition.attribute!r} is not set on any user; "
                            f"the condition {attribute_condition.to_text()!r} can never hold",
                        )
                    )
    return issues


def _rule_signature(rule: AccessRule) -> Tuple:
    return (
        rule.resource_id,
        rule.combination.value,
        tuple(sorted(condition.describe() for condition in rule.conditions)),
    )


def find_redundant_rules(store: PolicyStore) -> List[Tuple[Hashable, Hashable]]:
    """Return pairs of rule ids on the same resource with identical conditions."""
    seen: Dict[Tuple, Hashable] = {}
    redundant: List[Tuple[Hashable, Hashable]] = []
    for rule in store.rules():
        signature = _rule_signature(rule)
        if signature in seen:
            redundant.append((seen[signature], rule.rule_id))
        else:
            seen[signature] = rule.rule_id
    return redundant


def analyze_policy(store: PolicyStore, graph: SocialGraph) -> PolicyReport:
    """Analyse every rule of a store against a graph and return a report."""
    report = PolicyReport()
    for rule in store.rules():
        report.issues.extend(validate_rule(rule, graph))
    report.redundant_rules = find_redundant_rules(store)
    for resource in store.resources():
        if not store.rules_for(resource.resource_id):
            report.unprotected_resources.append(resource.resource_id)
    return report
