"""Append-only audit log of access decisions.

Access-control systems are only as trustworthy as their audit trail.  The
:class:`AuditLog` records every :class:`~repro.policy.decisions.AccessDecision`
made by the engine, supports filtering (by requester, resource, effect) and
simple aggregation (grant rate, busiest resources), and serializes to JSON
for offline analysis.  The benchmark harness also uses it to count decisions
per second.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Hashable, Iterator, List, Optional

from repro.policy.decisions import AccessDecision, Effect

__all__ = ["AuditLog"]


class AuditLog:
    """An in-memory, append-only sequence of access decisions."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        """``capacity`` bounds the log size; older entries are dropped when exceeded."""
        self._entries: List[AccessDecision] = []
        self._capacity = capacity

    # --------------------------------------------------------------- record

    def record(self, decision: AccessDecision) -> None:
        """Append one decision to the log."""
        self._entries.append(decision)
        if self._capacity is not None and len(self._entries) > self._capacity:
            del self._entries[: len(self._entries) - self._capacity]

    # ---------------------------------------------------------------- query

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AccessDecision]:
        return iter(self._entries)

    def entries(self) -> List[AccessDecision]:
        """Return all recorded decisions (oldest first)."""
        return list(self._entries)

    def for_requester(self, requester: Hashable) -> List[AccessDecision]:
        """Return the decisions concerning one requester."""
        return [entry for entry in self._entries if entry.requester == requester]

    def for_resource(self, resource_id: Hashable) -> List[AccessDecision]:
        """Return the decisions concerning one resource."""
        return [entry for entry in self._entries if entry.resource_id == resource_id]

    def grants(self) -> List[AccessDecision]:
        """Return only the granted decisions."""
        return [entry for entry in self._entries if entry.granted]

    def denials(self) -> List[AccessDecision]:
        """Return only the denied decisions."""
        return [entry for entry in self._entries if not entry.granted]

    # ------------------------------------------------------------ aggregate

    def grant_rate(self) -> float:
        """Fraction of requests that were granted (0.0 for an empty log)."""
        if not self._entries:
            return 0.0
        return len(self.grants()) / len(self._entries)

    def requests_per_resource(self) -> Dict[Hashable, int]:
        """Return how many requests each resource received."""
        return dict(Counter(entry.resource_id for entry in self._entries))

    def requests_per_requester(self) -> Dict[Hashable, int]:
        """Return how many requests each requester issued."""
        return dict(Counter(entry.requester for entry in self._entries))

    def average_latency(self) -> float:
        """Return the mean decision latency in seconds (0.0 for an empty log)."""
        if not self._entries:
            return 0.0
        return sum(entry.elapsed_seconds for entry in self._entries) / len(self._entries)

    # ------------------------------------------------------------ serialize

    def to_json(self, *, indent: int = 2) -> str:
        """Serialize the log to JSON (decisions are flattened; witnesses become node lists)."""
        payload = []
        for entry in self._entries:
            payload.append(
                {
                    "effect": entry.effect.value,
                    "resource_id": str(entry.resource_id),
                    "owner": str(entry.owner),
                    "requester": str(entry.requester),
                    "reason": entry.reason,
                    "elapsed_seconds": entry.elapsed_seconds,
                    "timestamp": entry.timestamp,
                    "witnesses": [
                        [str(node) for node in path.nodes()] for path in entry.witnesses()
                    ],
                }
            )
        return json.dumps(payload, indent=indent)

    def clear(self) -> None:
        """Drop every recorded decision."""
        self._entries.clear()

    def __repr__(self) -> str:
        return f"<AuditLog: {len(self._entries)} decisions, grant rate {self.grant_rate():.2f}>"
