"""Baseline access-control model: Carminati, Ferrari & Perego (2006).

The paper positions its contribution against the rule-based model of
Carminati et al., which "introduced trust and distance in the social graph as
key criteria for access rules.  The target of an access authorization is
specified as a sub-graph based on one simple relationship (friendship, for
instance), having in its center the owner of the resource with a fixed
radius" (Section 4).

This module implements that baseline so the benchmarks can compare the two
models on the same workloads:

* a :class:`CarminatiRule` authorizes requesters connected to the owner by a
  path of at most ``max_depth`` edges of one single relationship type, whose
  aggregated trust (the product of the edge trust values, edges without a
  trust attribute counting as 1.0) is at least ``min_trust``;
* :class:`CarminatiEngine` evaluates requests with a bounded BFS.

The expressiveness gap with the reachability-based model is deliberate and is
what experiment PERF-5 measures: multi-relationship sequences, edge
directions per step, per-step depth intervals and attribute conditions cannot
be written as Carminati rules.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import ResourceNotFoundError, RuleValidationError
from repro.graph.social_graph import SocialGraph
from repro.policy.decisions import AccessDecision, Effect

__all__ = ["CarminatiRule", "CarminatiEngine"]


@dataclass(frozen=True)
class CarminatiRule:
    """A (relationship type, max depth, min trust) authorization for one resource."""

    resource_id: Hashable
    owner: Hashable
    relationship: str
    max_depth: int = 1
    min_trust: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise RuleValidationError(f"max_depth must be >= 1, got {self.max_depth}")
        if not 0.0 <= self.min_trust <= 1.0:
            raise RuleValidationError(f"min_trust must be in [0, 1], got {self.min_trust}")

    def describe(self) -> str:
        """Return a one-line description of the rule."""
        return (
            f"resource {self.resource_id!r}: {self.relationship} within {self.max_depth} hop(s) "
            f"of {self.owner!r} with trust >= {self.min_trust}"
        )


class CarminatiEngine:
    """Evaluate access requests under the depth + trust baseline model."""

    def __init__(self, graph: SocialGraph, *, trust_attribute: str = "trust") -> None:
        self.graph = graph
        self.trust_attribute = trust_attribute
        self._rules: Dict[Hashable, List[CarminatiRule]] = {}
        self._owners: Dict[Hashable, Hashable] = {}

    # ---------------------------------------------------------------- rules

    def add_rule(self, rule: CarminatiRule) -> CarminatiRule:
        """Register one rule (also registering the resource and its owner)."""
        known_owner = self._owners.get(rule.resource_id)
        if known_owner is not None and known_owner != rule.owner:
            raise RuleValidationError(
                f"resource {rule.resource_id!r} is owned by {known_owner!r}, not {rule.owner!r}"
            )
        self._owners[rule.resource_id] = rule.owner
        self._rules.setdefault(rule.resource_id, []).append(rule)
        return rule

    def rules_for(self, resource_id: Hashable) -> List[CarminatiRule]:
        """Return the rules protecting one resource."""
        if resource_id not in self._owners:
            raise ResourceNotFoundError(resource_id)
        return list(self._rules.get(resource_id, []))

    # ------------------------------------------------------------------ api

    def check_access(self, requester: Hashable, resource_id: Hashable) -> AccessDecision:
        """Evaluate one access request under the baseline semantics."""
        started = time.perf_counter()
        if resource_id not in self._owners:
            raise ResourceNotFoundError(resource_id)
        owner = self._owners[resource_id]
        if requester == owner:
            effect, reason = Effect.GRANT, "requester is the resource owner"
        else:
            matched = any(
                self._satisfies(rule, requester) for rule in self._rules.get(resource_id, [])
            )
            effect = Effect.GRANT if matched else Effect.DENY
            reason = (
                "a depth/trust rule authorizes the requester"
                if matched
                else "no depth/trust rule authorizes the requester"
            )
        return AccessDecision(
            effect=effect,
            resource_id=resource_id,
            owner=owner,
            requester=requester,
            reason=reason,
            elapsed_seconds=time.perf_counter() - started,
        )

    def is_allowed(self, requester: Hashable, resource_id: Hashable) -> bool:
        """Boolean-only form of :meth:`check_access`."""
        return self.check_access(requester, resource_id).granted

    def authorized_audience(self, resource_id: Hashable) -> Set[Hashable]:
        """Return every user authorized for a resource (owner included)."""
        if resource_id not in self._owners:
            raise ResourceNotFoundError(resource_id)
        audience: Set[Hashable] = {self._owners[resource_id]}
        for rule in self._rules.get(resource_id, []):
            audience |= set(self._reachable_with_trust(rule))
        return audience

    # -------------------------------------------------------------- search

    def _satisfies(self, rule: CarminatiRule, requester: Hashable) -> bool:
        return requester in self._reachable_with_trust(rule, stop_at=requester)

    def _reachable_with_trust(
        self,
        rule: CarminatiRule,
        stop_at: Optional[Hashable] = None,
    ) -> Dict[Hashable, float]:
        """Bounded BFS keeping, per user, the best aggregated trust seen so far."""
        if not self.graph.has_user(rule.owner):
            return {}
        best: Dict[Hashable, float] = {}
        queue = deque([(rule.owner, 0, 1.0)])
        seen_best: Dict[Hashable, float] = {rule.owner: 1.0}
        while queue:
            user, depth, trust = queue.popleft()
            if depth >= rule.max_depth:
                continue
            for relationship in self.graph.out_relationships(user, rule.relationship):
                edge_trust = float(relationship.attributes.get(self.trust_attribute, 1.0))
                aggregated = trust * edge_trust
                neighbor = relationship.target
                if aggregated < rule.min_trust:
                    continue
                if aggregated <= seen_best.get(neighbor, 0.0):
                    continue
                seen_best[neighbor] = aggregated
                best[neighbor] = max(best.get(neighbor, 0.0), aggregated)
                if stop_at is not None and neighbor == stop_at:
                    return best
                queue.append((neighbor, depth + 1, aggregated))
        return best
