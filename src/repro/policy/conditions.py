"""Attribute conditions on user properties.

The last component ``C`` of a step ``(r, dir, I, C)`` in an access condition
(Definition 3) is "the set of conditions on user properties": constraints on
the attribute tuple ``nu(v)`` of the user reached by the step, e.g.
``age >= 18`` or ``gender = female``.  :class:`AttributeCondition` models one
such constraint and knows how to evaluate itself against an attribute
mapping; the textual form it parses from / prints to is the one used inside
``{...}`` blocks of path expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Mapping, Tuple

from repro.exceptions import UnknownOperatorError

__all__ = ["AttributeCondition", "evaluate_conditions"]


def _as_number(value: Any) -> Any:
    """Best-effort numeric coercion so that '18' and 18 compare equal."""
    if isinstance(value, bool) or not isinstance(value, str):
        return value
    try:
        return int(value)
    except ValueError:
        try:
            return float(value)
        except ValueError:
            return value


def _compare(op: Callable[[Any, Any], bool], left: Any, right: Any) -> bool:
    left, right = _as_number(left), _as_number(right)
    try:
        return op(left, right)
    except TypeError:
        # Incomparable types (e.g. ordering a string against a number): the
        # condition simply does not hold rather than crashing the evaluation.
        return False


_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: _compare(lambda x, y: x == y, a, b),
    "==": lambda a, b: _compare(lambda x, y: x == y, a, b),
    "!=": lambda a, b: _compare(lambda x, y: x != y, a, b),
    "<": lambda a, b: _compare(lambda x, y: x < y, a, b),
    "<=": lambda a, b: _compare(lambda x, y: x <= y, a, b),
    ">": lambda a, b: _compare(lambda x, y: x > y, a, b),
    ">=": lambda a, b: _compare(lambda x, y: x >= y, a, b),
    "in": lambda a, b: a in b if isinstance(b, (list, tuple, set, frozenset, str)) else False,
    "~": lambda a, b: (str(b).lower() in str(a).lower()) if a is not None else False,
}

# Longest operators first so that '>=' is not tokenized as '>' + '='.
_CONDITION_RE = re.compile(
    r"^\s*(?P<attribute>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?P<operator>==|!=|<=|>=|=|<|>|~|\bin\b)\s*"
    r"(?P<value>.+?)\s*$"
)


@dataclass(frozen=True)
class AttributeCondition:
    """One constraint ``attribute <operator> value`` on a user's attributes.

    Supported operators: ``= == != < <= > >=`` (comparisons with numeric
    coercion), ``in`` (membership of the attribute value in a list literal),
    and ``~`` (case-insensitive substring containment).

    A user with no value for the attribute never satisfies the condition.
    """

    attribute: str
    operator: str
    value: Any

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise UnknownOperatorError(
                f"unsupported operator {self.operator!r}; "
                f"expected one of {sorted(_OPERATORS)}"
            )

    def evaluate(self, attributes: Mapping[str, Any]) -> bool:
        """Return whether the attribute mapping satisfies this condition."""
        if self.attribute not in attributes:
            return False
        return _OPERATORS[self.operator](attributes[self.attribute], self.value)

    # ------------------------------------------------------------- text form

    @classmethod
    def parse(cls, text: str) -> "AttributeCondition":
        """Parse a condition from its textual form, e.g. ``"age >= 18"``.

        Value literals: integers and floats are converted, ``true``/``false``
        become booleans, a ``[a, b, c]`` literal becomes a tuple (for ``in``),
        anything else (optionally quoted) stays a string.
        """
        match = _CONDITION_RE.match(text)
        if match is None:
            raise UnknownOperatorError(f"cannot parse attribute condition {text!r}")
        attribute = match.group("attribute")
        operator = match.group("operator")
        raw_value = match.group("value")
        if raw_value[:1] in {"<", ">", "=", "!", "~"}:
            # e.g. "age >>> 3": the operator was cut short and the rest leaked
            # into the value — reject instead of silently comparing garbage.
            raise UnknownOperatorError(f"cannot parse attribute condition {text!r}")
        value = cls._parse_value(raw_value)
        return cls(attribute, operator, value)

    @staticmethod
    def _parse_value(raw: str) -> Any:
        raw = raw.strip()
        if raw.startswith("[") and raw.endswith("]"):
            inner = raw[1:-1].strip()
            if not inner:
                return ()
            return tuple(AttributeCondition._parse_value(part) for part in inner.split(","))
        if (raw.startswith("'") and raw.endswith("'")) or (raw.startswith('"') and raw.endswith('"')):
            return raw[1:-1]
        lowered = raw.lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return _as_number(raw)

    def to_text(self) -> str:
        """Return the canonical textual form of the condition."""
        if isinstance(self.value, (tuple, list, set, frozenset)):
            rendered = "[" + ", ".join(str(item) for item in self.value) + "]"
        else:
            rendered = str(self.value)
        operator = "=" if self.operator == "==" else self.operator
        return f"{self.attribute} {operator} {rendered}"

    def __str__(self) -> str:
        return self.to_text()


def evaluate_conditions(
    conditions: Iterable[AttributeCondition],
    attributes: Mapping[str, Any],
) -> bool:
    """Return whether the attribute mapping satisfies every condition (AND)."""
    return all(condition.evaluate(attributes) for condition in conditions)
