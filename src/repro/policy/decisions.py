"""Access decisions and their explanations.

Every access request produces an :class:`AccessDecision` that records not
only grant/deny but *why*: which rule matched, which access conditions were
evaluated, and — when the evaluator was asked for witnesses — the concrete
social-graph path linking the owner to the requester.  The audit log stores
these decisions; the examples print them.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.graph.paths import Path
from repro.policy.rules import AccessCondition, AccessRule

__all__ = ["Effect", "ConditionOutcome", "RuleOutcome", "AccessDecision"]


class Effect(enum.Enum):
    """The outcome of an access request."""

    GRANT = "grant"
    DENY = "deny"

    def __bool__(self) -> bool:
        return self is Effect.GRANT


@dataclass(frozen=True)
class ConditionOutcome:
    """Evaluation outcome of one access condition."""

    condition: AccessCondition
    satisfied: bool
    witness: Optional[Path] = None

    def describe(self) -> str:
        """Return a one-line description of the outcome."""
        status = "satisfied" if self.satisfied else "not satisfied"
        text = f"{self.condition.describe()}: {status}"
        if self.witness is not None and self.satisfied:
            text += f" via {' -> '.join(str(node) for node in self.witness.nodes())}"
        return text


@dataclass(frozen=True)
class RuleOutcome:
    """Evaluation outcome of one access rule (all of its conditions)."""

    rule: AccessRule
    satisfied: bool
    condition_outcomes: Tuple[ConditionOutcome, ...] = ()

    def describe(self) -> str:
        """Return a multi-line description of the outcome."""
        status = "SATISFIED" if self.satisfied else "not satisfied"
        lines = [f"rule {self.rule.rule_id!r}: {status}"]
        lines.extend(f"  {outcome.describe()}" for outcome in self.condition_outcomes)
        return "\n".join(lines)


@dataclass(frozen=True)
class AccessDecision:
    """The result of evaluating an access request."""

    effect: Effect
    resource_id: Hashable
    owner: Hashable
    requester: Hashable
    rule_outcomes: Tuple[RuleOutcome, ...] = ()
    reason: str = ""
    elapsed_seconds: float = 0.0
    timestamp: float = field(default_factory=time.time)

    @property
    def granted(self) -> bool:
        """Whether access was granted."""
        return self.effect is Effect.GRANT

    def matched_rule(self) -> Optional[AccessRule]:
        """Return the first satisfied rule, if any."""
        for outcome in self.rule_outcomes:
            if outcome.satisfied:
                return outcome.rule
        return None

    def witnesses(self) -> List[Path]:
        """Return every witness path collected while evaluating the request."""
        paths: List[Path] = []
        for rule_outcome in self.rule_outcomes:
            for outcome in rule_outcome.condition_outcomes:
                if outcome.witness is not None:
                    paths.append(outcome.witness)
        return paths

    def explain(self) -> str:
        """Return a human-readable explanation of the decision."""
        verdict = "GRANTED" if self.granted else "DENIED"
        lines = [
            f"access to resource {self.resource_id!r} (owner {self.owner!r}) "
            f"requested by {self.requester!r}: {verdict}"
        ]
        if self.reason:
            lines.append(f"reason: {self.reason}")
        for outcome in self.rule_outcomes:
            lines.append(outcome.describe())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()

    def __bool__(self) -> bool:
        return self.granted
