"""The access-control enforcement engine.

This is the component the paper's "problem statement" describes: it
intercepts an access request ``(requester, resource)``, looks up the access
rules stored for that resource, evaluates every access condition as an
ordered label-constraint reachability query between the resource owner and
the requester, and grants or denies access.

Design points:

* The reachability backend is pluggable (``bfs``, ``dfs``,
  ``transitive-closure`` or ``cluster-index``); all produce identical
  decisions, they only differ in cost profile.
* The resource owner always has access to their own resources.
* A resource with **no** rules is private to its owner (deny by default);
  this is configurable (``default_effect``).
* Decisions are explained (matched rules, witness paths) and can be recorded
  in an :class:`~repro.policy.audit.AuditLog`.

Caching and bulk evaluation
---------------------------
``check_access`` evaluates each access condition through the inner
:class:`~repro.reachability.engine.ReachabilityEngine`, so it inherits that
facade's cache-invalidation contract verbatim: decisions are memoized under
the graph's mutation ``epoch`` (any committed mutation — structural or an
attribute write through ``graph.attributes(u)`` — invalidates them), and
constructor keyword ``cache_size=0`` disables the memo.  The bulk
:meth:`AccessControlEngine.audiences_with_plans` groups access conditions
across the requested resources by path expression and answers each group
with one multi-source owner-bitset sweep; ``direction=`` pins that sweep's
planner and the executed per-expression
:class:`~repro.reachability.compiled_search.SweepPlan` objects are
**returned with the audiences** (no entry for expressions served entirely
from the memo).  The legacy :attr:`AccessControlEngine.last_audience_plans`
attribute survives as a deprecated read-property mirroring the most recent
:meth:`authorized_audiences` call.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro._deprecation import warn_deprecated
from repro.graph.social_graph import SocialGraph
from repro.policy.audit import AuditLog
from repro.policy.decisions import AccessDecision, ConditionOutcome, Effect, RuleOutcome
from repro.policy.rules import AccessRule, CombinationMode
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine

__all__ = ["AccessControlEngine"]


class AccessControlEngine:
    """Evaluate access requests against a policy store over a social graph.

    ``backend`` may be a backend name, a backend evaluator instance, or a
    prebuilt :class:`ReachabilityEngine` — the last form is how the
    :class:`~repro.service.GraphService` facade shares one engine (and its
    epoch-stamped memos) between reach queries and access checks on the
    same backend.
    """

    def __init__(
        self,
        graph: SocialGraph,
        store: Optional[PolicyStore] = None,
        *,
        backend: Union[str, object] = "bfs",
        default_effect: Effect = Effect.DENY,
        audit_log: Optional[AuditLog] = None,
        **backend_options,
    ) -> None:
        self.graph = graph
        self.store = store if store is not None else PolicyStore()
        if isinstance(backend, ReachabilityEngine):
            if backend_options:
                raise TypeError(
                    "backend_options cannot be combined with a prebuilt "
                    "ReachabilityEngine (configure the engine directly)"
                )
            self.reachability = backend
        else:
            self.reachability = ReachabilityEngine(graph, backend, **backend_options)
        self.default_effect = default_effect
        self.audit_log = audit_log
        # Executed sweep plans of the most recent bulk audience call, keyed
        # by expression text.  Exposed only through the deprecated
        # ``last_audience_plans`` property — :meth:`audiences_with_plans`
        # returns the plans with the audiences they describe.
        self._last_audience_plans: Dict[str, object] = {}

    @property
    def last_audience_plans(self) -> Dict[str, object]:
        """Deprecated side-channel: plans of the most recent bulk audience call.

        Empty for expressions served entirely from the memo.  Prefer
        :meth:`audiences_with_plans`, which returns the executed plans with
        the audiences — this attribute reflects only the latest call and is
        overwritten by the next one.
        """
        warn_deprecated(
            "AccessControlEngine.last_audience_plans is a deprecated "
            "side-channel; use audiences_with_plans() (or "
            "GraphService.bulk_access) which return the executed plans with "
            "the result"
        )
        return self._last_audience_plans

    @last_audience_plans.setter
    def last_audience_plans(self, plans: Dict[str, object]) -> None:
        self._last_audience_plans = plans

    # ------------------------------------------------------------------ api

    def check_access(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        explain: bool = True,
    ) -> AccessDecision:
        """Evaluate one access request and return the decision.

        With ``explain=False`` the evaluation stops at the first satisfied
        rule without collecting witness paths (the fast path used by the
        throughput benchmarks); with ``explain=True`` every rule is evaluated
        and witnesses are attached.
        """
        started = time.perf_counter()
        resource = self.store.resource(resource_id)
        rules = self.store.rules_for(resource_id)

        if requester == resource.owner:
            decision = AccessDecision(
                effect=Effect.GRANT,
                resource_id=resource_id,
                owner=resource.owner,
                requester=requester,
                reason="requester is the resource owner",
                elapsed_seconds=time.perf_counter() - started,
            )
            return self._record(decision)

        if not rules:
            decision = AccessDecision(
                effect=self.default_effect,
                resource_id=resource_id,
                owner=resource.owner,
                requester=requester,
                reason="no access rule is defined for this resource",
                elapsed_seconds=time.perf_counter() - started,
            )
            return self._record(decision)

        rule_outcomes: List[RuleOutcome] = []
        granted = False
        for rule in rules:
            outcome = self._evaluate_rule(rule, requester, collect_witness=explain)
            rule_outcomes.append(outcome)
            if outcome.satisfied:
                granted = True
                if not explain:
                    break

        decision = AccessDecision(
            effect=Effect.GRANT if granted else Effect.DENY,
            resource_id=resource_id,
            owner=resource.owner,
            requester=requester,
            rule_outcomes=tuple(rule_outcomes),
            reason=(
                "a rule authorizes the requester"
                if granted
                else "no rule authorizes the requester"
            ),
            elapsed_seconds=time.perf_counter() - started,
        )
        return self._record(decision)

    def is_allowed(self, requester: Hashable, resource_id: Hashable) -> bool:
        """Boolean-only form of :meth:`check_access` (no explanation collected)."""
        return self.check_access(requester, resource_id, explain=False).granted

    def explain(self, requester: Hashable, resource_id: Hashable) -> str:
        """Return the human-readable explanation of the decision."""
        return self.check_access(requester, resource_id, explain=True).explain()

    def filter_audience(
        self,
        resource_id: Hashable,
        candidates: Iterable[Hashable],
    ) -> Set[Hashable]:
        """Return the subset of ``candidates`` that may access the resource."""
        return {user for user in candidates if self.is_allowed(user, resource_id)}

    def authorized_audience(
        self, resource_id: Hashable, *, direction: str = "auto"
    ) -> Set[Hashable]:
        """Materialize the full audience of a resource (every authorized user).

        Computed from the owner outwards with ``find_targets``, which is much
        cheaper than testing every user of the network individually.
        """
        return self.authorized_audiences([resource_id], direction=direction)[resource_id]

    def audiences_with_plans(
        self,
        resource_ids: Iterable[Hashable],
        *,
        direction: str = "auto",
    ) -> Tuple[Dict[Hashable, Set[Hashable]], Dict[str, object]]:
        """Materialize the audiences of many resources in one bulk pass.

        Access conditions across every requested resource are grouped by
        path expression and each group is answered by one
        :meth:`ReachabilityEngine.sweep_targets_many` call — a single
        multi-source owner-bitset sweep shared by every owner of the group —
        then recombined per rule.  ``direction`` pins the sweep planner
        (forward from the owners, reverse from the whole vertex set, or the
        per-owner ``"batched"`` baseline).

        Returns ``(audiences, plans)`` where ``plans`` maps expression text
        to the executed :class:`~repro.reachability.compiled_search.
        SweepPlan` of that expression's sweep; expressions served entirely
        from the memo swept nothing and have no entry.
        """
        resource_ids = list(dict.fromkeys(resource_ids))
        rules_of = {rid: self.store.rules_for(rid) for rid in resource_ids}
        # One batched sweep per distinct expression, over every owner that
        # states a condition with it (an ordered set keeps runs deterministic).
        sweeps: Dict[str, Tuple[object, Dict[Hashable, None]]] = {}
        for rules in rules_of.values():
            for rule in rules:
                for condition in rule.conditions:
                    text = condition.path.to_text()
                    entry = sweeps.get(text)
                    if entry is None:
                        entry = sweeps[text] = (condition.path, {})
                    entry[1][condition.owner] = None
        audience_of: Dict[Tuple[str, Hashable], Set[Hashable]] = {}
        plans: Dict[str, object] = {}
        for text, (path, owners) in sweeps.items():
            computed, plan = self.reachability.sweep_targets_many(
                owners, path, direction=direction
            )
            for owner, targets in computed.items():
                audience_of[(text, owner)] = targets
            if plan is not None:
                plans[text] = plan
        audiences: Dict[Hashable, Set[Hashable]] = {}
        for resource_id in resource_ids:
            resource = self.store.resource(resource_id)
            audience: Set[Hashable] = {resource.owner}
            for rule in rules_of[resource_id]:
                audience |= self._combine_rule_audience(rule, audience_of)
            audiences[resource_id] = audience
        return audiences, plans

    def authorized_audiences(
        self,
        resource_ids: Iterable[Hashable],
        *,
        direction: str = "auto",
    ) -> Dict[Hashable, Set[Hashable]]:
        """Audiences-only form of :meth:`audiences_with_plans`.

        Kept for callers that do not need the executed plans; they are still
        mirrored on the deprecated ``last_audience_plans`` side-channel.
        """
        audiences, plans = self.audiences_with_plans(
            resource_ids, direction=direction
        )
        self._last_audience_plans = plans
        return audiences

    def _rule_audience(self, rule: AccessRule) -> Set[Hashable]:
        audience_of = {
            (condition.path.to_text(), condition.owner): self.reachability.find_targets(
                condition.owner, condition.path
            )
            for condition in rule.conditions
        }
        return self._combine_rule_audience(rule, audience_of)

    @staticmethod
    def _combine_rule_audience(
        rule: AccessRule,
        audience_of: Dict[Tuple[str, Hashable], Set[Hashable]],
    ) -> Set[Hashable]:
        audiences = [
            audience_of[(condition.path.to_text(), condition.owner)]
            for condition in rule.conditions
        ]
        if not audiences:
            return set()
        if rule.combination is CombinationMode.ALL:
            result = set(audiences[0])
            for audience in audiences[1:]:
                result &= audience
            return result
        result: Set[Hashable] = set()
        for audience in audiences:
            result |= audience
        return result

    # -------------------------------------------------------------- helpers

    def _evaluate_rule(
        self,
        rule: AccessRule,
        requester: Hashable,
        *,
        collect_witness: bool,
    ) -> RuleOutcome:
        outcomes: List[ConditionOutcome] = []
        satisfied_flags: List[bool] = []
        for condition in rule.conditions:
            result = self.reachability.evaluate(
                condition.owner,
                requester,
                condition.path,
                collect_witness=collect_witness,
            )
            outcomes.append(
                ConditionOutcome(
                    condition=condition,
                    satisfied=result.reachable,
                    witness=result.witness,
                )
            )
            satisfied_flags.append(result.reachable)
            if rule.combination is CombinationMode.ALL and not result.reachable and not collect_witness:
                break
            if rule.combination is CombinationMode.ANY and result.reachable and not collect_witness:
                break
        if rule.combination is CombinationMode.ALL:
            satisfied = bool(satisfied_flags) and all(satisfied_flags) and len(satisfied_flags) == len(rule.conditions)
        else:
            satisfied = any(satisfied_flags)
        return RuleOutcome(rule=rule, satisfied=satisfied, condition_outcomes=tuple(outcomes))

    def _record(self, decision: AccessDecision) -> AccessDecision:
        if self.audit_log is not None:
            self.audit_log.record(decision)
        return decision

    # ---------------------------------------------------------------- stats

    def statistics(self) -> Dict[str, float]:
        """Return the reachability backend's statistics plus policy-store counts."""
        stats = self.reachability.statistics()
        stats["resources"] = float(self.store.resource_count())
        stats["rules"] = float(self.store.rule_count())
        return stats

    def __repr__(self) -> str:
        return (
            f"<AccessControlEngine backend={self.reachability.backend_name!r}, "
            f"{self.store.resource_count()} resources, {self.store.rule_count()} rules>"
        )
