"""The access-control enforcement engine.

This is the component the paper's "problem statement" describes: it
intercepts an access request ``(requester, resource)``, looks up the access
rules stored for that resource, evaluates every access condition as an
ordered label-constraint reachability query between the resource owner and
the requester, and grants or denies access.

Design points:

* The reachability backend is pluggable (``bfs``, ``dfs``,
  ``transitive-closure`` or ``cluster-index``); all produce identical
  decisions, they only differ in cost profile.
* The resource owner always has access to their own resources.
* A resource with **no** rules is private to its owner (deny by default);
  this is configurable (``default_effect``).
* Decisions are explained (matched rules, witness paths) and can be recorded
  in an :class:`~repro.policy.audit.AuditLog`.

Caching and bulk evaluation
---------------------------
``check_access`` evaluates each access condition through the inner
:class:`~repro.reachability.engine.ReachabilityEngine`, so it inherits that
facade's cache-invalidation contract verbatim: decisions are memoized under
the graph's mutation ``epoch`` (any committed mutation — structural or an
attribute write through ``graph.attributes(u)`` — invalidates them), and
constructor keyword ``cache_size=0`` disables the memo.  The bulk
:meth:`AccessControlEngine.authorized_audiences` groups access conditions
across the requested resources by path expression and answers each group
with one multi-source owner-bitset sweep; ``direction=`` pins that sweep's
planner and the executed per-expression
:class:`~repro.reachability.compiled_search.SweepPlan` objects are recorded
in :attr:`AccessControlEngine.last_audience_plans` (empty for expressions
served entirely from the memo).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.graph.social_graph import SocialGraph
from repro.policy.audit import AuditLog
from repro.policy.decisions import AccessDecision, ConditionOutcome, Effect, RuleOutcome
from repro.policy.rules import AccessRule, CombinationMode
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine

__all__ = ["AccessControlEngine"]


class AccessControlEngine:
    """Evaluate access requests against a policy store over a social graph."""

    def __init__(
        self,
        graph: SocialGraph,
        store: Optional[PolicyStore] = None,
        *,
        backend: Union[str, object] = "bfs",
        default_effect: Effect = Effect.DENY,
        audit_log: Optional[AuditLog] = None,
        **backend_options,
    ) -> None:
        self.graph = graph
        self.store = store if store is not None else PolicyStore()
        self.reachability = ReachabilityEngine(graph, backend, **backend_options)
        self.default_effect = default_effect
        self.audit_log = audit_log
        #: Executed sweep plans of the most recent :meth:`authorized_audiences`
        #: call, keyed by expression text — benchmarks read the planner's
        #: forward/reverse choices here.
        self.last_audience_plans: Dict[str, object] = {}

    # ------------------------------------------------------------------ api

    def check_access(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        explain: bool = True,
    ) -> AccessDecision:
        """Evaluate one access request and return the decision.

        With ``explain=False`` the evaluation stops at the first satisfied
        rule without collecting witness paths (the fast path used by the
        throughput benchmarks); with ``explain=True`` every rule is evaluated
        and witnesses are attached.
        """
        started = time.perf_counter()
        resource = self.store.resource(resource_id)
        rules = self.store.rules_for(resource_id)

        if requester == resource.owner:
            decision = AccessDecision(
                effect=Effect.GRANT,
                resource_id=resource_id,
                owner=resource.owner,
                requester=requester,
                reason="requester is the resource owner",
                elapsed_seconds=time.perf_counter() - started,
            )
            return self._record(decision)

        if not rules:
            decision = AccessDecision(
                effect=self.default_effect,
                resource_id=resource_id,
                owner=resource.owner,
                requester=requester,
                reason="no access rule is defined for this resource",
                elapsed_seconds=time.perf_counter() - started,
            )
            return self._record(decision)

        rule_outcomes: List[RuleOutcome] = []
        granted = False
        for rule in rules:
            outcome = self._evaluate_rule(rule, requester, collect_witness=explain)
            rule_outcomes.append(outcome)
            if outcome.satisfied:
                granted = True
                if not explain:
                    break

        decision = AccessDecision(
            effect=Effect.GRANT if granted else Effect.DENY,
            resource_id=resource_id,
            owner=resource.owner,
            requester=requester,
            rule_outcomes=tuple(rule_outcomes),
            reason=(
                "a rule authorizes the requester"
                if granted
                else "no rule authorizes the requester"
            ),
            elapsed_seconds=time.perf_counter() - started,
        )
        return self._record(decision)

    def is_allowed(self, requester: Hashable, resource_id: Hashable) -> bool:
        """Boolean-only form of :meth:`check_access` (no explanation collected)."""
        return self.check_access(requester, resource_id, explain=False).granted

    def explain(self, requester: Hashable, resource_id: Hashable) -> str:
        """Return the human-readable explanation of the decision."""
        return self.check_access(requester, resource_id, explain=True).explain()

    def filter_audience(
        self,
        resource_id: Hashable,
        candidates: Iterable[Hashable],
    ) -> Set[Hashable]:
        """Return the subset of ``candidates`` that may access the resource."""
        return {user for user in candidates if self.is_allowed(user, resource_id)}

    def authorized_audience(
        self, resource_id: Hashable, *, direction: str = "auto"
    ) -> Set[Hashable]:
        """Materialize the full audience of a resource (every authorized user).

        Computed from the owner outwards with ``find_targets``, which is much
        cheaper than testing every user of the network individually.
        """
        return self.authorized_audiences([resource_id], direction=direction)[resource_id]

    def authorized_audiences(
        self,
        resource_ids: Iterable[Hashable],
        *,
        direction: str = "auto",
    ) -> Dict[Hashable, Set[Hashable]]:
        """Materialize the audiences of many resources in one bulk pass.

        Access conditions across every requested resource are grouped by
        path expression and each group is answered by one
        :meth:`ReachabilityEngine.find_targets_many` call — a single
        multi-source owner-bitset sweep shared by every owner of the group —
        then recombined per rule.  ``direction`` pins the sweep planner
        (forward from the owners, reverse from the whole vertex set, or the
        per-owner ``"batched"`` baseline); the executed plans are recorded
        in :attr:`last_audience_plans` keyed by expression text.
        """
        resource_ids = list(dict.fromkeys(resource_ids))
        rules_of = {rid: self.store.rules_for(rid) for rid in resource_ids}
        # One batched sweep per distinct expression, over every owner that
        # states a condition with it (an ordered set keeps runs deterministic).
        sweeps: Dict[str, Tuple[object, Dict[Hashable, None]]] = {}
        for rules in rules_of.values():
            for rule in rules:
                for condition in rule.conditions:
                    text = condition.path.to_text()
                    entry = sweeps.get(text)
                    if entry is None:
                        entry = sweeps[text] = (condition.path, {})
                    entry[1][condition.owner] = None
        audience_of: Dict[Tuple[str, Hashable], Set[Hashable]] = {}
        self.last_audience_plans = {}
        for text, (path, owners) in sweeps.items():
            computed = self.reachability.find_targets_many(
                owners, path, direction=direction
            )
            for owner, targets in computed.items():
                audience_of[(text, owner)] = targets
            plan = self.reachability.last_sweep_plan
            if plan is not None:
                self.last_audience_plans[text] = plan
        audiences: Dict[Hashable, Set[Hashable]] = {}
        for resource_id in resource_ids:
            resource = self.store.resource(resource_id)
            audience: Set[Hashable] = {resource.owner}
            for rule in rules_of[resource_id]:
                audience |= self._combine_rule_audience(rule, audience_of)
            audiences[resource_id] = audience
        return audiences

    def _rule_audience(self, rule: AccessRule) -> Set[Hashable]:
        audience_of = {
            (condition.path.to_text(), condition.owner): self.reachability.find_targets(
                condition.owner, condition.path
            )
            for condition in rule.conditions
        }
        return self._combine_rule_audience(rule, audience_of)

    @staticmethod
    def _combine_rule_audience(
        rule: AccessRule,
        audience_of: Dict[Tuple[str, Hashable], Set[Hashable]],
    ) -> Set[Hashable]:
        audiences = [
            audience_of[(condition.path.to_text(), condition.owner)]
            for condition in rule.conditions
        ]
        if not audiences:
            return set()
        if rule.combination is CombinationMode.ALL:
            result = set(audiences[0])
            for audience in audiences[1:]:
                result &= audience
            return result
        result: Set[Hashable] = set()
        for audience in audiences:
            result |= audience
        return result

    # -------------------------------------------------------------- helpers

    def _evaluate_rule(
        self,
        rule: AccessRule,
        requester: Hashable,
        *,
        collect_witness: bool,
    ) -> RuleOutcome:
        outcomes: List[ConditionOutcome] = []
        satisfied_flags: List[bool] = []
        for condition in rule.conditions:
            result = self.reachability.evaluate(
                condition.owner,
                requester,
                condition.path,
                collect_witness=collect_witness,
            )
            outcomes.append(
                ConditionOutcome(
                    condition=condition,
                    satisfied=result.reachable,
                    witness=result.witness,
                )
            )
            satisfied_flags.append(result.reachable)
            if rule.combination is CombinationMode.ALL and not result.reachable and not collect_witness:
                break
            if rule.combination is CombinationMode.ANY and result.reachable and not collect_witness:
                break
        if rule.combination is CombinationMode.ALL:
            satisfied = bool(satisfied_flags) and all(satisfied_flags) and len(satisfied_flags) == len(rule.conditions)
        else:
            satisfied = any(satisfied_flags)
        return RuleOutcome(rule=rule, satisfied=satisfied, condition_outcomes=tuple(outcomes))

    def _record(self, decision: AccessDecision) -> AccessDecision:
        if self.audit_log is not None:
            self.audit_log.record(decision)
        return decision

    # ---------------------------------------------------------------- stats

    def statistics(self) -> Dict[str, float]:
        """Return the reachability backend's statistics plus policy-store counts."""
        stats = self.reachability.statistics()
        stats["resources"] = float(self.store.resource_count())
        stats["rules"] = float(self.store.rule_count())
        return stats

    def __repr__(self) -> str:
        return (
            f"<AccessControlEngine backend={self.reachability.backend_name!r}, "
            f"{self.store.resource_count()} resources, {self.store.rule_count()} rules>"
        )
