"""Textual path expressions and their parser.

An access condition's path is written in a compact textual syntax, directly
mirroring the paper's notation (e.g. ``Alice/friend+[1,2]/colleague+[1]`` for
query Q1 of Figure 2 — the owner prefix is held by the
:class:`~repro.policy.rules.AccessCondition`, the rest is the path
expression)::

    expression := step ('/' step)*
    step       := label direction? interval? conditions?
    label      := identifier                       (relationship type)
    direction  := '+' | '-' | '*'                  (default '+': outgoing)
    interval   := '[' depth (',' depth)? ']'       (default [1,1])
    conditions := '{' condition (',' condition)* '}'
    condition  := attribute operator value         (see AttributeCondition)

Examples::

    friend                      a direct friend
    friend+[1,2]/colleague+[1]  colleagues of friends (up to friends of friends)
    friend*[1,3]{age >= 18}     adults within three friendship hops, any direction
    friend-/parent+             people whose friend the owner is, then their children
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import PathExpressionSyntaxError
from repro.policy.conditions import AttributeCondition
from repro.policy.steps import DepthInterval, Direction, Step

__all__ = ["PathExpression", "parse_path_expression"]

# Labels may not contain '-' — it would be ambiguous with the incoming-direction
# symbol (``friend-``); use underscores for multi-word relationship types.
_LABEL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_INT_RE = re.compile(r"\d+")


class _Scanner:
    """A tiny cursor over the expression text with error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def eof(self) -> bool:
        return self.position >= len(self.text)

    def peek(self) -> str:
        return self.text[self.position] if not self.eof() else ""

    def skip_spaces(self) -> None:
        while not self.eof() and self.text[self.position].isspace():
            self.position += 1

    def expect(self, char: str) -> None:
        if self.peek() != char:
            self.error(f"expected {char!r}")
        self.position += 1

    def match_regex(self, pattern: "re.Pattern[str]", description: str) -> str:
        match = pattern.match(self.text, self.position)
        if match is None:
            self.error(f"expected {description}")
        self.position = match.end()
        return match.group(0)

    def take_until(self, closing: str) -> str:
        start = self.position
        depth = 0
        while not self.eof():
            char = self.text[self.position]
            if char == "[":
                depth += 1
            elif char == "]" and depth > 0:
                depth -= 1
            elif char == closing and depth == 0:
                return self.text[start:self.position]
            self.position += 1
        self.error(f"missing closing {closing!r}")
        raise AssertionError("unreachable")

    def error(self, message: str) -> None:
        raise PathExpressionSyntaxError(self.text, self.position, message)


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` ignoring separators nested inside brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char in "[{(":
            depth += 1
        elif char in "]})":
            depth -= 1
        if char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _parse_step(scanner: _Scanner) -> Step:
    scanner.skip_spaces()
    label = scanner.match_regex(_LABEL_RE, "a relationship label")
    direction = Direction.OUTGOING
    scanner.skip_spaces()
    if scanner.peek() and scanner.peek() in "+-*":
        direction = Direction.from_symbol(scanner.peek())
        scanner.position += 1
    depths = DepthInterval(1, 1)
    scanner.skip_spaces()
    if scanner.peek() == "[":
        scanner.expect("[")
        scanner.skip_spaces()
        low_text = scanner.match_regex(_INT_RE, "a depth")
        scanner.skip_spaces()
        if scanner.peek() == ",":
            scanner.expect(",")
            scanner.skip_spaces()
            high_text = scanner.match_regex(_INT_RE, "a depth")
        else:
            high_text = low_text
        scanner.skip_spaces()
        scanner.expect("]")
        try:
            depths = DepthInterval(int(low_text), int(high_text))
        except Exception as exc:  # RuleValidationError from DepthInterval
            scanner.error(str(exc))
    conditions: Tuple[AttributeCondition, ...] = ()
    scanner.skip_spaces()
    if scanner.peek() == "{":
        scanner.expect("{")
        body = scanner.take_until("}")
        scanner.expect("}")
        parsed = []
        for chunk in _split_top_level(body, ","):
            chunk = chunk.strip()
            if chunk:
                try:
                    parsed.append(AttributeCondition.parse(chunk))
                except Exception as exc:
                    scanner.error(f"invalid attribute condition {chunk!r}: {exc}")
        conditions = tuple(parsed)
    scanner.skip_spaces()
    return Step(label=label, direction=direction, depths=depths, conditions=conditions)


@dataclass(frozen=True)
class PathExpression:
    """An ordered sequence of steps — the path ``p`` of an access condition."""

    steps: Tuple[Step, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    # ----------------------------------------------------------- construction

    @classmethod
    def parse(cls, text: str) -> "PathExpression":
        """Parse an expression from its textual form.

        Raises :class:`~repro.exceptions.PathExpressionSyntaxError` with the
        offending position on malformed input.
        """
        scanner = _Scanner(text)
        scanner.skip_spaces()
        if scanner.eof():
            scanner.error("an access path needs at least one step")
        steps: List[Step] = [_parse_step(scanner)]
        while not scanner.eof():
            scanner.skip_spaces()
            if scanner.eof():
                break
            scanner.expect("/")
            steps.append(_parse_step(scanner))
        return cls(tuple(steps))

    @classmethod
    def of(cls, *steps: Step) -> "PathExpression":
        """Build an expression directly from :class:`Step` objects."""
        return cls(tuple(steps))

    # ---------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    def labels(self) -> Tuple[str, ...]:
        """Return the relationship types used, in step order."""
        return tuple(step.label for step in self.steps)

    def min_length(self) -> int:
        """The shortest path length (in edges) that can satisfy the expression."""
        return sum(step.min_depth() for step in self.steps)

    def max_length(self) -> int:
        """The longest path length (in edges) that can satisfy the expression."""
        return sum(step.max_depth() for step in self.steps)

    def expansion_count(self) -> int:
        """Number of distinct depth combinations (= line queries after expansion)."""
        count = 1
        for step in self.steps:
            count *= step.depths.width()
        return count

    def has_attribute_conditions(self) -> bool:
        """Whether any step constrains user attributes."""
        return any(step.conditions for step in self.steps)

    def to_text(self) -> str:
        """Render the expression in the textual syntax accepted by :meth:`parse`."""
        return "/".join(step.to_text() for step in self.steps)

    def __str__(self) -> str:
        return self.to_text()


def parse_path_expression(text: str) -> PathExpression:
    """Module-level convenience alias for :meth:`PathExpression.parse`."""
    return PathExpression.parse(text)
