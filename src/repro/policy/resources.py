"""Shared resources (the objects access rules protect).

A resource is anything a user shares on the network — a photo album, a note,
a status update.  The access-control machinery only needs its identifier and
its owner; free-form metadata (title, kind, creation date) is carried along
for applications and the audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Mapping

__all__ = ["Resource"]


@dataclass(frozen=True)
class Resource:
    """A shared resource: an identifier, its owner, and free-form metadata."""

    resource_id: Hashable
    owner: Hashable
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        title = self.metadata.get("title") or self.metadata.get("kind") or "resource"
        return f"{title} {self.resource_id!r} owned by {self.owner!r}"

    def with_metadata(self, **extra: Any) -> "Resource":
        """Return a copy with additional metadata entries."""
        merged: Dict[str, Any] = dict(self.metadata)
        merged.update(extra)
        return Resource(self.resource_id, self.owner, merged)

    def __str__(self) -> str:
        return self.describe()
