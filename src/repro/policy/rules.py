"""Access rules and access conditions (Definitions 2 and 3 of the paper).

* An **access condition** is a couple ``(o, p)``: the resource owner ``o``
  (the starting node) and a path ``p`` — a
  :class:`~repro.policy.path_expression.PathExpression` — that must link the
  owner to the requester in the social graph.
* An **access rule** is a tuple ``(rid, ACS)``: the protected resource's id
  and a set of access conditions, *all* of which must hold for the rule to
  authorize the requester ("in order to be valid, an access rule should have
  all its access conditions validated").  As an extension the combination
  mode can be relaxed to ``any``.

A resource may carry several rules; the engine grants access when at least
one rule is satisfied (each rule describes one authorized audience).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Tuple, Union

from repro.exceptions import RuleValidationError
from repro.policy.path_expression import PathExpression

__all__ = ["CombinationMode", "AccessCondition", "AccessRule"]


class CombinationMode(enum.Enum):
    """How the conditions of one rule combine."""

    ALL = "all"   # paper semantics: every condition must be validated
    ANY = "any"   # extension: one satisfied condition is enough

    @classmethod
    def coerce(cls, value: Union["CombinationMode", str]) -> "CombinationMode":
        """Accept either the enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise RuleValidationError(
                f"unknown combination mode {value!r}; expected 'all' or 'any'"
            ) from None


@dataclass(frozen=True)
class AccessCondition:
    """One access condition ``(o, p)``: owner + required path to the requester."""

    owner: Hashable
    path: PathExpression

    @classmethod
    def parse(cls, owner: Hashable, expression: str) -> "AccessCondition":
        """Build a condition from the owner and a textual path expression."""
        return cls(owner, PathExpression.parse(expression))

    def describe(self) -> str:
        """Return the condition in the paper's ``owner/step/step`` notation."""
        return f"{self.owner}/{self.path.to_text()}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class AccessRule:
    """One access rule ``(rid, ACS)`` protecting a resource."""

    resource_id: Hashable
    conditions: Tuple[AccessCondition, ...]
    rule_id: Optional[Hashable] = None
    combination: CombinationMode = CombinationMode.ALL
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))
        object.__setattr__(self, "combination", CombinationMode.coerce(self.combination))
        if not self.conditions:
            raise RuleValidationError(
                f"access rule for resource {self.resource_id!r} has no access conditions"
            )
        owners = {condition.owner for condition in self.conditions}
        if len(owners) > 1:
            raise RuleValidationError(
                f"access rule for resource {self.resource_id!r} mixes owners {sorted(map(str, owners))}; "
                "every condition of a rule starts at the resource owner"
            )

    # ----------------------------------------------------------- convenience

    @classmethod
    def build(
        cls,
        resource_id: Hashable,
        owner: Hashable,
        expressions: Union[str, Iterable[str]],
        *,
        rule_id: Optional[Hashable] = None,
        combination: Union[CombinationMode, str] = CombinationMode.ALL,
        description: str = "",
    ) -> "AccessRule":
        """Build a rule from textual path expressions.

        ``expressions`` may be a single expression string or an iterable of
        them (one per access condition).
        """
        if isinstance(expressions, str):
            expressions = [expressions]
        conditions = tuple(AccessCondition.parse(owner, text) for text in expressions)
        return cls(
            resource_id=resource_id,
            conditions=conditions,
            rule_id=rule_id,
            combination=CombinationMode.coerce(combination),
            description=description,
        )

    @property
    def owner(self) -> Hashable:
        """The owner shared by every condition of the rule."""
        return self.conditions[0].owner

    def condition_count(self) -> int:
        """Number of access conditions in the rule."""
        return len(self.conditions)

    def describe(self) -> str:
        """Return a human-readable multi-line description of the rule."""
        header = f"rule {self.rule_id!r} on resource {self.resource_id!r}"
        if self.description:
            header += f" ({self.description})"
        mode = "all of" if self.combination is CombinationMode.ALL else "any of"
        lines = [header, f"  grants access to requesters matching {mode}:"]
        lines.extend(f"    - {condition.describe()}" for condition in self.conditions)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
