"""Steps and depth intervals of an access condition (Definition 3).

An access condition is a sequence of ordered *steps*; each step is a tuple
``(r, dir, I, C)`` where

* ``r`` is a relationship type (edge label),
* ``dir`` is the authorized edge orientation: ``+`` (outgoing), ``-``
  (incoming) or ``*`` (either),
* ``I`` is the set of authorized depth levels — here a closed integer
  interval ``[lo, hi]`` (the common case; a single depth is ``[d, d]``),
* ``C`` is a set of :class:`~repro.policy.conditions.AttributeCondition`
  constraints on the user reached at the end of the step.

A step matches a run of ``d`` consecutive edges, all labelled ``r`` and all
traversed in an authorized direction, with ``d`` in ``I``, ending at a user
satisfying ``C``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Tuple

from repro.exceptions import RuleValidationError
from repro.policy.conditions import AttributeCondition, evaluate_conditions

__all__ = ["Direction", "DepthInterval", "Step"]


class Direction(enum.Enum):
    """Authorized edge orientation of a step."""

    OUTGOING = "+"
    INCOMING = "-"
    ANY = "*"

    @classmethod
    def from_symbol(cls, symbol: str) -> "Direction":
        """Map a textual direction symbol to the enum member."""
        for member in cls:
            if member.value == symbol:
                return member
        raise RuleValidationError(f"unknown direction symbol {symbol!r}; expected one of + - *")

    def allows_forward(self) -> bool:
        """Whether an edge may be traversed from its source to its target."""
        return self in (Direction.OUTGOING, Direction.ANY)

    def allows_backward(self) -> bool:
        """Whether an edge may be traversed from its target to its source."""
        return self in (Direction.INCOMING, Direction.ANY)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class DepthInterval:
    """A closed interval ``[minimum, maximum]`` of authorized depths.

    Depths are positive edge counts: ``DepthInterval(1, 2)`` reads "one or two
    hops".  The default interval is ``[1, 1]`` (a direct relationship).
    """

    minimum: int = 1
    maximum: int = 1

    def __post_init__(self) -> None:
        if self.minimum < 1:
            raise RuleValidationError(f"depth minimum must be >= 1, got {self.minimum}")
        if self.maximum < self.minimum:
            raise RuleValidationError(
                f"depth maximum ({self.maximum}) must be >= minimum ({self.minimum})"
            )

    def __contains__(self, depth: object) -> bool:
        return isinstance(depth, int) and self.minimum <= depth <= self.maximum

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.minimum, self.maximum + 1))

    def width(self) -> int:
        """Return the number of authorized depths."""
        return self.maximum - self.minimum + 1

    def to_text(self) -> str:
        """Render the interval as it appears in path expressions."""
        if self.minimum == self.maximum:
            return f"[{self.minimum}]"
        return f"[{self.minimum},{self.maximum}]"

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class Step:
    """One step ``(r, dir, I, C)`` of an access condition."""

    label: str
    direction: Direction = Direction.OUTGOING
    depths: DepthInterval = field(default_factory=DepthInterval)
    conditions: Tuple[AttributeCondition, ...] = ()

    def __post_init__(self) -> None:
        if not self.label:
            raise RuleValidationError("a step needs a non-empty relationship label")

    def satisfied_by(self, attributes: Mapping[str, Any]) -> bool:
        """Return whether a user's attributes satisfy the step's conditions ``C``."""
        return evaluate_conditions(self.conditions, attributes)

    def max_depth(self) -> int:
        """The largest authorized depth of the step."""
        return self.depths.maximum

    def min_depth(self) -> int:
        """The smallest authorized depth of the step."""
        return self.depths.minimum

    def to_text(self) -> str:
        """Render the step in path-expression syntax (``friend+[1,2]{age>=18}``)."""
        text = self.label
        text += str(self.direction)
        text += self.depths.to_text()
        if self.conditions:
            text += "{" + ", ".join(condition.to_text() for condition in self.conditions) + "}"
        return text

    def __str__(self) -> str:
        return self.to_text()
