"""The policy store: resources, their owners, and their access rules.

"User privacy preferences are stored in terms of access rules.  Each time a
user submits an access request to a given resource of another user, the
system will intercept the request, and, on the basis of the specified access
rules, it determines whether access should be granted or denied" (Section 2,
problem statement).  :class:`PolicyStore` is that rule repository: it indexes
rules by resource and by owner, assigns rule identifiers, and is consulted by
the :class:`~repro.policy.engine.AccessControlEngine` on every request.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Union

from repro.exceptions import ResourceNotFoundError, RuleNotFoundError, RuleValidationError
from repro.policy.resources import Resource
from repro.policy.rules import AccessRule, CombinationMode

__all__ = ["PolicyStore"]


class PolicyStore:
    """An in-memory repository of resources and their access rules."""

    def __init__(self) -> None:
        self._resources: Dict[Hashable, Resource] = {}
        self._rules: Dict[Hashable, AccessRule] = {}
        self._rules_by_resource: Dict[Hashable, List[Hashable]] = {}
        self._counter = itertools.count(1)

    # -------------------------------------------------------------- resources

    def register_resource(self, resource: Resource) -> Resource:
        """Register a shared resource (idempotent for identical registrations)."""
        existing = self._resources.get(resource.resource_id)
        if existing is not None and existing != resource:
            raise RuleValidationError(
                f"resource {resource.resource_id!r} is already registered with a different owner/metadata"
            )
        self._resources[resource.resource_id] = resource
        self._rules_by_resource.setdefault(resource.resource_id, [])
        return resource

    def share(self, owner: Hashable, resource_id: Hashable, **metadata) -> Resource:
        """Convenience: register a resource owned by ``owner``."""
        return self.register_resource(Resource(resource_id, owner, metadata))

    def resource(self, resource_id: Hashable) -> Resource:
        """Return the registered resource, or raise :class:`ResourceNotFoundError`."""
        try:
            return self._resources[resource_id]
        except KeyError:
            raise ResourceNotFoundError(resource_id) from None

    def has_resource(self, resource_id: Hashable) -> bool:
        """Return whether the resource id is registered."""
        return resource_id in self._resources

    def resources(self) -> Iterator[Resource]:
        """Iterate over all registered resources."""
        return iter(self._resources.values())

    def resources_owned_by(self, owner: Hashable) -> List[Resource]:
        """Return all resources registered with the given owner."""
        return [resource for resource in self._resources.values() if resource.owner == owner]

    def remove_resource(self, resource_id: Hashable) -> None:
        """Remove a resource and every rule protecting it."""
        if resource_id not in self._resources:
            raise ResourceNotFoundError(resource_id)
        for rule_id in self._rules_by_resource.get(resource_id, []):
            self._rules.pop(rule_id, None)
        self._rules_by_resource.pop(resource_id, None)
        del self._resources[resource_id]

    # ------------------------------------------------------------------ rules

    def add_rule(self, rule: AccessRule) -> AccessRule:
        """Add an access rule for a registered resource.

        The rule's owner must match the resource owner (only the owner issues
        rules for a resource).  Rules without an explicit ``rule_id`` receive
        a generated one; the (possibly re-identified) rule is returned.
        """
        resource = self.resource(rule.resource_id)
        if rule.owner != resource.owner:
            raise RuleValidationError(
                f"rule owner {rule.owner!r} does not own resource {rule.resource_id!r} "
                f"(owned by {resource.owner!r})"
            )
        if rule.rule_id is None:
            rule = AccessRule(
                resource_id=rule.resource_id,
                conditions=rule.conditions,
                rule_id=f"rule-{next(self._counter)}",
                combination=rule.combination,
                description=rule.description,
            )
        if rule.rule_id in self._rules:
            raise RuleValidationError(f"rule id {rule.rule_id!r} is already used")
        self._rules[rule.rule_id] = rule
        self._rules_by_resource.setdefault(rule.resource_id, []).append(rule.rule_id)
        return rule

    def allow(
        self,
        resource_id: Hashable,
        expressions: Union[str, Iterable[str]],
        *,
        combination: Union[CombinationMode, str] = CombinationMode.ALL,
        description: str = "",
    ) -> AccessRule:
        """Convenience: add a rule for ``resource_id`` from textual expressions.

        The owner is looked up from the registered resource.
        """
        resource = self.resource(resource_id)
        rule = AccessRule.build(
            resource_id,
            resource.owner,
            expressions,
            combination=combination,
            description=description,
        )
        return self.add_rule(rule)

    def rule(self, rule_id: Hashable) -> AccessRule:
        """Return the rule with the given id."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleNotFoundError(rule_id) from None

    def rules_for(self, resource_id: Hashable) -> List[AccessRule]:
        """Return every rule protecting ``resource_id`` (possibly empty)."""
        self.resource(resource_id)
        return [self._rules[rule_id] for rule_id in self._rules_by_resource.get(resource_id, [])]

    def remove_rule(self, rule_id: Hashable) -> None:
        """Remove a single rule."""
        rule = self.rule(rule_id)
        del self._rules[rule_id]
        self._rules_by_resource[rule.resource_id].remove(rule_id)

    def rules(self) -> Iterator[AccessRule]:
        """Iterate over every rule in the store."""
        return iter(self._rules.values())

    # ------------------------------------------------------------------ misc

    def rule_count(self) -> int:
        """Total number of rules in the store."""
        return len(self._rules)

    def resource_count(self) -> int:
        """Total number of registered resources."""
        return len(self._resources)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return (
            f"<PolicyStore: {self.resource_count()} resources, {self.rule_count()} rules>"
        )
