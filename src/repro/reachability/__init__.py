"""Ordered label-constraint reachability query evaluation (Section 3).

The package provides the online baselines (BFS / DFS), the transitive-closure
baseline, and the paper's index pipeline (line graph → SCC condensation →
interval labeling → 2-hop cover → base tables / W-table / cluster join index
→ post-processing), all behind the common
:class:`~repro.reachability.engine.ReachabilityEngine` facade.
"""

from repro.reachability.automaton import AutomatonState, StepAutomaton
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.compiled_search import (
    AudienceSweep,
    AutomatonCache,
    CompiledAutomaton,
    SearchOutcome,
    SweepPlan,
    audience_sweep,
    audience_sweep_batched,
    plan_audience_sweep,
    product_search,
    reversed_automaton,
    reversed_expression,
)
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.engine import (
    BACKENDS,
    ReachabilityEngine,
    available_backends,
    create_evaluator,
)
from repro.reachability.interned import InternedLineIndex, interned_line_index
from repro.reachability.interval import IntervalLabeling, ReachabilityTable, topological_order
from repro.reachability.join_index import ClusterEntry, JoinIndex
from repro.reachability.linegraph import LineGraph, LineVertex
from repro.reachability.query import (
    LineHop,
    LineQuery,
    ReachabilityQuery,
    expand_line_queries,
)
from repro.reachability.result import EvaluationResult
from repro.reachability.scc import Condensation, condense, strongly_connected_components
from repro.reachability.transitive_closure import (
    TransitiveClosureEvaluator,
    TransitiveClosureIndex,
)
from repro.reachability.twohop import TwoHopCover, TwoHopIndex, TwoHopLabeling

__all__ = [
    "AutomatonState",
    "StepAutomaton",
    "AutomatonCache",
    "CompiledAutomaton",
    "SearchOutcome",
    "SweepPlan",
    "AudienceSweep",
    "product_search",
    "audience_sweep",
    "audience_sweep_batched",
    "plan_audience_sweep",
    "reversed_expression",
    "reversed_automaton",
    "InternedLineIndex",
    "interned_line_index",
    "OnlineBFSEvaluator",
    "OnlineDFSEvaluator",
    "TransitiveClosureIndex",
    "TransitiveClosureEvaluator",
    "ClusterIndexEvaluator",
    "ReachabilityEngine",
    "BACKENDS",
    "available_backends",
    "create_evaluator",
    "IntervalLabeling",
    "ReachabilityTable",
    "topological_order",
    "JoinIndex",
    "ClusterEntry",
    "LineGraph",
    "LineVertex",
    "LineHop",
    "LineQuery",
    "ReachabilityQuery",
    "expand_line_queries",
    "EvaluationResult",
    "Condensation",
    "condense",
    "strongly_connected_components",
    "TwoHopCover",
    "TwoHopIndex",
    "TwoHopLabeling",
]
