"""A step automaton: the compiled form of a path expression.

The online evaluators (BFS / DFS) walk the product of the social graph and a
small automaton derived from the path expression.  An automaton *state* is a
pair ``(step_index, depth)`` meaning "``depth`` edges of step ``step_index``
have been traversed so far".  Transitions:

* **edge transition** — from ``(i, d)`` with ``d < max_depth(i)``, traverse
  one more edge matching step ``i``'s label and direction, reaching
  ``(i, d + 1)``;
* **step advance** (spontaneous) — from ``(i, d)`` with ``d`` inside step
  ``i``'s authorized depth interval and the current user satisfying step
  ``i``'s attribute conditions, move to ``(i + 1, 0)``;
* **acceptance** — the state ``(len(steps), 0)`` is accepting: every step has
  been matched, the current user is the requester candidate.

The automaton is deterministic in structure but the product walk is not (a
user may be reached in several states), which is why the evaluators keep a
visited set of ``(user, state)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Mapping, Tuple

from repro.policy.path_expression import PathExpression
from repro.policy.steps import Step

__all__ = ["AutomatonState", "StepAutomaton"]


@dataclass(frozen=True, order=True)
class AutomatonState:
    """A position in the expression: ``depth`` edges into step ``step_index``."""

    step_index: int
    depth: int

    def __str__(self) -> str:
        return f"(step={self.step_index}, depth={self.depth})"


class StepAutomaton:
    """The compiled path expression used by the online evaluators."""

    def __init__(self, expression: PathExpression) -> None:
        self.expression = expression
        self._steps: Tuple[Step, ...] = tuple(expression)

    # ---------------------------------------------------------------- states

    @property
    def start_state(self) -> AutomatonState:
        """The initial state: about to start the first step."""
        return AutomatonState(0, 0)

    def is_accepting(self, state: AutomatonState) -> bool:
        """Whether the state means "the whole expression has been matched"."""
        return state.step_index >= len(self._steps)

    def step(self, state: AutomatonState) -> Step:
        """Return the step being matched in ``state``."""
        return self._steps[state.step_index]

    def state_count_bound(self) -> int:
        """An upper bound on the number of distinct automaton states."""
        return sum(step.max_depth() + 1 for step in self._steps) + 1

    # ----------------------------------------------------------- transitions

    def edge_requirements(self, state: AutomatonState) -> Tuple[str, bool, bool]:
        """Return ``(label, allow_forward, allow_backward)`` for the next edge.

        Only meaningful for non-accepting states where another edge of the
        current step may still be traversed.
        """
        step = self.step(state)
        return (step.label, step.direction.allows_forward(), step.direction.allows_backward())

    def can_traverse_more(self, state: AutomatonState) -> bool:
        """Whether another edge of the current step may be traversed."""
        if self.is_accepting(state):
            return False
        return state.depth < self.step(state).max_depth()

    def after_edge(self, state: AutomatonState) -> AutomatonState:
        """The state reached after traversing one more edge of the current step."""
        return AutomatonState(state.step_index, state.depth + 1)

    def closure(
        self,
        state: AutomatonState,
        attributes: Mapping[str, Any],
    ) -> List[AutomatonState]:
        """Return ``state`` plus every state reachable by spontaneous step advances.

        A step advance requires the current depth to be an authorized depth of
        the current step and the current user's ``attributes`` to satisfy the
        step's conditions.  Advancing can cascade only when a later step
        allowed depth 0, which never happens (depths are >= 1), so at most one
        advance applies per closure from a non-initial depth; the initial
        state of each step is still returned so the caller sees both options.
        """
        states = [state]
        current = state
        while not self.is_accepting(current):
            step = self.step(current)
            if current.depth in step.depths and step.satisfied_by(attributes):
                current = AutomatonState(current.step_index + 1, 0)
                states.append(current)
            else:
                break
        return states

    def __repr__(self) -> str:
        return f"<StepAutomaton over {self.expression.to_text()!r}>"

    def __iter__(self) -> Iterator[Step]:
        return iter(self._steps)
