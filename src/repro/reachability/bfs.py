"""Online constrained breadth-first search — the paper's first baseline.

"A straight-forward method for answering constraint-labeled reachability
queries is to apply a Depth-First Search algorithm (respectively,
Breadth-First Search algorithm) together with the constraints to reduce the
search space" (Section 1).  This evaluator does exactly that: a BFS over the
product of the social graph and the :class:`~repro.reachability.automaton.
StepAutomaton`, visiting each ``(user, automaton state)`` pair at most once.
It needs no precomputation, makes it the reference oracle for every other
backend, and its per-query cost grows with the size of the explored
neighbourhood — the ``O(|V| + |E|)`` behaviour the paper wants to avoid on
large graphs.

By default the search runs on the graph's compiled CSR snapshot
(:mod:`repro.graph.compiled`): user ids and labels are interned to dense
integers, the product walk touches only ``array('l')`` adjacency, and witness
paths are reconstructed into :class:`Relationship` objects on demand.  The
snapshot is acquired per query through ``compile_graph``, so under churn the
evaluator rides the delta-maintenance path: a journal-covered mutation burst
is absorbed in O(|delta|) and only the first query touching a mutated label
pays that label's side-table compaction.  Pass ``compiled=False`` (or a
duck-typed graph that is not a :class:`SocialGraph`) to fall back to the
legacy dict-of-dicts traversal — the benchmark harness compares the two, and
the test suite checks their equivalence.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import SocialGraph, raw_attributes_getter
from repro.policy.path_expression import PathExpression
from repro.reachability.automaton import AutomatonState, StepAutomaton
from repro.reachability.compiled_search import AutomatonCache, CompiledSearchMixin
from repro.reachability.result import EvaluationResult

__all__ = ["OnlineBFSEvaluator"]

_SearchNode = Tuple[Hashable, AutomatonState]


class OnlineBFSEvaluator(CompiledSearchMixin):
    """Evaluate ordered label-constraint reachability queries by constrained BFS."""

    name = "bfs"

    def __init__(self, graph: SocialGraph, *, compiled: bool = True) -> None:
        self.graph = graph
        self.compiled = compiled and isinstance(graph, SocialGraph)
        self._automata = AutomatonCache()

    # ------------------------------------------------------------------ api

    def build(self) -> "OnlineBFSEvaluator":
        """No precomputation is needed; returns ``self`` for interface parity."""
        return self

    def statistics(self) -> Dict[str, float]:
        """Index statistics (trivially empty for the online evaluator)."""
        return {"index_entries": 0, "build_seconds": 0.0}

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Return whether ``target`` is reachable from ``source`` under ``expression``."""
        started = time.perf_counter()
        result = EvaluationResult(reachable=False, backend=self.name)
        if self.compiled:
            outcome = self._compiled_search(source, expression, result, stop_at=target,
                                            collect_witness=collect_witness)
            result.reachable = outcome.contains(target)
            if collect_witness and result.reachable:
                result.witness = outcome.witness(target)
        else:
            found = self._search(source, expression, result, stop_at=target,
                                 collect_witness=collect_witness)
            result.reachable = target in found
            if collect_witness and result.reachable:
                result.witness = found[target]
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def find_targets(self, source: Hashable, expression: PathExpression) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``.

        Used to materialize the full authorized audience of an access rule.
        """
        result = EvaluationResult(reachable=False, backend=self.name)
        if self.compiled:
            outcome = self._compiled_search(source, expression, result, stop_at=None,
                                            collect_witness=False)
            return outcome.users()
        return set(self._search(source, expression, result, stop_at=None, collect_witness=False))

    def sweep_targets_many(self, sources, expression: PathExpression, *,
                           direction: str = "auto"):
        """Batched :meth:`find_targets`: one automaton, one shared owner sweep.

        The compiled path runs the multi-source owner-bitset sweep
        (:func:`~repro.reachability.compiled_search.audience_sweep`);
        ``direction`` pins the planner's forward/reverse choice (or selects
        the per-owner ``"batched"`` baseline).  The legacy dict path ignores
        ``direction`` and loops per owner.

        Returns ``({owner: audience}, executed SweepPlan or None)`` — the
        plan is ``None`` on the per-owner legacy path, which plans nothing.
        """
        if self.compiled:
            return self._compiled_sweep_many(
                list(sources), expression, direction=direction
            )
        return (
            {source: self.find_targets(source, expression) for source in sources},
            None,
        )

    # find_targets_many (the audiences-only legacy wrapper) is inherited
    # from SweepPlanSideChannel, shared by all four backends.

    # ------------------------------------------------- legacy (dict) search

    def _search(
        self,
        source: Hashable,
        expression: PathExpression,
        result: EvaluationResult,
        *,
        stop_at: Optional[Hashable],
        collect_witness: bool,
    ) -> Dict[Hashable, Optional[Path]]:
        """Run the product BFS; return accepted users mapped to a witness path (or None)."""
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if stop_at is not None and not self.graph.has_user(stop_at):
            raise NodeNotFoundError(stop_at)

        automaton = StepAutomaton(expression)
        accepted: Dict[Hashable, Optional[Path]] = {}
        parents: Dict[_SearchNode, Tuple[Optional[_SearchNode], Optional[Traversal]]] = {}
        visited: Set[_SearchNode] = set()
        queue: deque = deque()

        def enqueue(user: Hashable, state: AutomatonState, parent: Optional[_SearchNode],
                    traversal: Optional[Traversal]) -> None:
            node = (user, state)
            if node in visited:
                return
            visited.add(node)
            if collect_witness:
                parents[node] = (parent, traversal)
            queue.append(node)
            result.count("states_visited")
            if automaton.is_accepting(state) and user not in accepted:
                accepted[user] = self._reconstruct(node, parents) if collect_witness else None

        # Raw dict reads in the hot loop (no per-node AttributeMap views).
        attributes_of = raw_attributes_getter(self.graph)
        for state in automaton.closure(automaton.start_state, attributes_of(source)):
            enqueue(source, state, None, None)

        while queue:
            if stop_at is not None and stop_at in accepted:
                break
            user, state = queue.popleft()
            if not automaton.can_traverse_more(state):
                continue
            label, allow_forward, allow_backward = automaton.edge_requirements(state)
            next_state = automaton.after_edge(state)
            moves: Iterable[Tuple[Hashable, Traversal]] = self._moves(
                user, label, allow_forward, allow_backward
            )
            for next_user, traversal in moves:
                result.count("edges_expanded")
                attributes = attributes_of(next_user)
                for closed in automaton.closure(next_state, attributes):
                    enqueue(next_user, closed, (user, state), traversal)
        return accepted

    def _moves(
        self,
        user: Hashable,
        label: str,
        allow_forward: bool,
        allow_backward: bool,
    ) -> Iterable[Tuple[Hashable, Traversal]]:
        if allow_forward:
            for rel in self.graph.out_relationships(user, label):
                yield rel.target, Traversal(rel, forward=True)
        if allow_backward:
            for rel in self.graph.in_relationships(user, label):
                yield rel.source, Traversal(rel, forward=False)

    def _reconstruct(
        self,
        node: _SearchNode,
        parents: Dict[_SearchNode, Tuple[Optional[_SearchNode], Optional[Traversal]]],
    ) -> Path:
        traversals = []
        current: Optional[_SearchNode] = node
        while current is not None:
            parent, traversal = parents[current]
            if traversal is not None:
                traversals.append(traversal)
            current = parent
        traversals.reverse()
        start = traversals[0].start if traversals else node[0]
        return Path(start, traversals)
