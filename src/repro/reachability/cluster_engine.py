"""The cluster-index evaluator: the full Section-3 pipeline.

Evaluating an ordered label-constraint reachability query through the index
proceeds exactly as the paper describes:

1. **Line-query expansion** (Section 3.1 / Figure 4): the query is expanded
   into one line query per authorized depth combination.
2. **Pattern matching over the join index** (Section 3.3): each consecutive
   pair of hops of a line query is a reachability condition
   ``label_i ⤳ label_{i+1}``; the W-table names the relevant centers and
   their clusters provide the candidate line-vertex pairs.
3. **Post-processing** (Section 3.4): candidate tuples are kept only when
   (a) consecutive line vertices are *adjacent* — the tuple describes a
   single path, not a set of disjoint paths; (b) the owner is the start of
   the first vertex and the requester the end of the last one; (c) the users
   reached at step boundaries satisfy the step's attribute conditions.
   Distance constraints are already enforced by the expansion (each hop is
   one edge).

One deviation from a literal reading of the paper, made for tractability and
recorded in DESIGN.md: tuples are assembled left-to-right with the adjacency
check applied *while* chaining join pairs instead of only after full tuples
are materialized — materializing the full cartesian pattern-match first can
be exponentially larger, and filtering early yields exactly the same final
tuple set (adjacency is a per-consecutive-pair predicate).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.join_index import JoinIndex
from repro.reachability.linegraph import FORWARD, LineGraph, LineVertex
from repro.reachability.query import LineHop, LineQuery, expand_line_queries
from repro.reachability.result import EvaluationResult

__all__ = ["ClusterIndexEvaluator"]


class ClusterIndexEvaluator:
    """Index-backed evaluator (line graph + 2-hop cover + cluster join index)."""

    name = "cluster-index"

    def __init__(
        self,
        graph: SocialGraph,
        *,
        include_reverse: bool = True,
        expansion_limit: Optional[int] = 4096,
        btree_order: int = 16,
    ) -> None:
        self.graph = graph
        self.include_reverse = include_reverse
        self.expansion_limit = expansion_limit
        self._btree_order = btree_order
        self.line_graph: Optional[LineGraph] = None
        self.join_index: Optional[JoinIndex] = None
        self.build_seconds = 0.0
        self._built = False

    # ---------------------------------------------------------------- build

    def build(self) -> "ClusterIndexEvaluator":
        """Construct the line graph and the join index (the expensive, offline part)."""
        started = time.perf_counter()
        self.line_graph = LineGraph(self.graph, include_reverse=self.include_reverse)
        self.join_index = JoinIndex(self.line_graph, btree_order=self._btree_order).build()
        self.build_seconds = time.perf_counter() - started
        self._built = True
        return self

    def statistics(self) -> Dict[str, float]:
        """Return index construction / size metrics."""
        if not self._built or self.join_index is None:
            return {"build_seconds": 0.0, "index_entries": 0.0}
        stats = dict(self.join_index.statistics())
        stats["build_seconds"] = self.build_seconds
        return stats

    def _require_built(self) -> Tuple[LineGraph, JoinIndex]:
        if not self._built or self.line_graph is None or self.join_index is None:
            raise IndexNotBuiltError("call build() before evaluating queries")
        return self.line_graph, self.join_index

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Return whether ``target`` is reachable from ``source`` under ``expression``."""
        line_graph, _join_index = self._require_built()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if not self.graph.has_user(target):
            raise NodeNotFoundError(target)
        self._check_directions(expression)
        started = time.perf_counter()
        result = EvaluationResult(reachable=False, backend=self.name)
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            result.count("line_queries")
            tuples = self._match_line_query(line_query, expression, source, target, result,
                                            first_only=True)
            if tuples:
                result.reachable = True
                if collect_witness:
                    result.witness = self._witness(source, tuples[0])
                break
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def find_targets(self, source: Hashable, expression: PathExpression) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        self._require_built()
        self._check_directions(expression)
        result = EvaluationResult(reachable=False, backend=self.name)
        targets: Set[Hashable] = set()
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            tuples = self._match_line_query(line_query, expression, source, None, result,
                                            first_only=False)
            targets.update(chain[-1].end for chain in tuples)
        return targets

    def _check_directions(self, expression: PathExpression) -> None:
        """A forward-only line graph cannot evaluate steps that traverse edges backwards."""
        if self.include_reverse:
            return
        if any(step.direction is not Direction.OUTGOING for step in expression):
            raise IndexNotBuiltError(
                "this index was built with include_reverse=False and only supports "
                "outgoing ('+') steps; rebuild with include_reverse=True for '-' or '*' steps"
            )

    # ------------------------------------------------------------- matching

    def _hop_matches(self, hop: LineHop, vertex: LineVertex) -> bool:
        if vertex.label != hop.label:
            return False
        if vertex.direction == FORWARD:
            return hop.direction.allows_forward()
        return hop.direction.allows_backward()

    def _conditions_hold(self, hop: LineHop, expression: PathExpression, vertex: LineVertex) -> bool:
        if not hop.closes_step:
            return True
        step = expression[hop.step_index]
        return step.satisfied_by(self.graph.attributes(vertex.end))

    def _match_line_query(
        self,
        line_query: LineQuery,
        expression: PathExpression,
        source: Hashable,
        target: Optional[Hashable],
        result: EvaluationResult,
        *,
        first_only: bool,
    ) -> List[Tuple[LineVertex, ...]]:
        """Return complete, post-processed tuples matching one line query."""
        line_graph, join_index = self._require_built()
        hops = list(line_query.hops)
        last = len(hops) - 1

        def acceptable(hop: LineHop, position: int, vertex: LineVertex) -> bool:
            if not self._hop_matches(hop, vertex):
                return False
            if position == last and target is not None and vertex.end != target:
                return False
            return self._conditions_hold(hop, expression, vertex)

        # Seed: line vertices leaving the owner that match the first hop
        # (Section 3.4's "owner is the first node" endpoint check).
        seeds = [vertex for vertex in line_graph.starting_at(source, key=None)
                 if acceptable(hops[0], 0, vertex)]
        result.count("tuples_examined", len(seeds))
        if not seeds:
            return []
        if len(hops) == 1:
            tuples = [(vertex,) for vertex in seeds]
            return tuples[:1] if first_only else tuples
        chains: List[Tuple[LineVertex, ...]] = [(vertex,) for vertex in seeds]

        # Tuple assembly + post-processing.  Each consecutive hop pair is a
        # reachability condition ``label_i ⤳ label_{i+1}`` evaluated through
        # the 2-hop labels stored in the base tables (``Lout(x) ∩ Lin(y)``,
        # Section 3.3); the adjacency check of Section 3.4 (the tuple must
        # describe a single path) is folded into the same chaining loop, so
        # the work per extension is proportional to the tail's line-graph
        # degree rather than to the size of the materialized join.
        for position in range(1, len(hops)):
            hop = hops[position]
            next_chains: List[Tuple[LineVertex, ...]] = []
            for chain in chains:
                tail = chain[-1]
                for successor_id in line_graph.successors(tail.vertex_id):
                    result.count("tuples_examined")
                    result.count("join_checks")
                    if not join_index.vertex_reaches(tail.vertex_id, successor_id):
                        continue
                    vertex = line_graph.vertex(successor_id)
                    if not acceptable(hop, position, vertex):
                        continue
                    next_chains.append(chain + (vertex,))
            chains = next_chains
            if not chains:
                return []
        if first_only and chains:
            return chains[:1]
        return chains

    def _keys_for(self, hop: LineHop) -> List[Tuple[str, str]]:
        keys = []
        if hop.direction.allows_forward():
            keys.append((hop.label, "+"))
        if hop.direction.allows_backward():
            keys.append((hop.label, "-"))
        return keys

    # -------------------------------------------------------------- witness

    def _witness(self, source: Hashable, chain: Sequence[LineVertex]) -> Path:
        traversals = [
            Traversal(vertex.relationship, forward=(vertex.direction == FORWARD))
            for vertex in chain
        ]
        return Path(source, traversals)
