"""The cluster-index evaluator: the full Section-3 pipeline.

Evaluating an ordered label-constraint reachability query through the index
proceeds exactly as the paper describes:

1. **Line-query expansion** (Section 3.1 / Figure 4): the query is expanded
   into one line query per authorized depth combination.
2. **Pattern matching over the join index** (Section 3.3): each consecutive
   pair of hops of a line query is a reachability condition
   ``label_i ⤳ label_{i+1}``; the W-table names the relevant centers and
   their clusters provide the candidate line-vertex pairs.
3. **Post-processing** (Section 3.4): candidate tuples are kept only when
   (a) consecutive line vertices are *adjacent* — the tuple describes a
   single path, not a set of disjoint paths; (b) the owner is the start of
   the first vertex and the requester the end of the last one; (c) the users
   reached at step boundaries satisfy the step's attribute conditions.
   Distance constraints are already enforced by the expansion (each hop is
   one edge).

Two deviations from a literal reading of the paper, made for tractability
and recorded in docs/architecture.md:

* tuples are assembled left-to-right with the adjacency check applied
  *while* chaining join pairs instead of only after full tuples are
  materialized — materializing the full cartesian pattern-match first can be
  exponentially larger, and filtering early yields exactly the same final
  tuple set (adjacency is a per-consecutive-pair predicate);
* on the default interned path the assembly additionally deduplicates
  chains by their tail vertex at every position: whether a partial tuple can
  be extended depends only on its last line vertex, so one representative
  chain (with parent links for witness decoding) stands for all chains
  sharing a tail — the frontier is bounded by the number of line vertices
  instead of growing with the number of distinct paths.

By default the matching runs on the snapshot's
:class:`~repro.reachability.interned.InternedLineIndex` — line vertices are
dense ints, the frontier is deduplicated through ``bytearray`` seen-sets and
string ids are decoded only for witness paths.  ``interned=False`` keeps the
legacy string-id matching over the :class:`LineGraph` /
:class:`JoinIndex` structures (the benchmark harness compares the two).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import SocialGraph, raw_attributes_getter
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.compiled_search import (
    AutomatonCache,
    SweepPlanSideChannel,
    audience_sweep,
)
from repro.reachability.interned import FORWARD_BYTE, InternedLineIndex, interned_line_index
from repro.reachability.join_index import JoinIndex
from repro.reachability.linegraph import FORWARD, LineGraph, LineVertex
from repro.reachability.query import (
    LineHop,
    LineQuery,
    check_expansion_limit,
    expand_line_queries,
)
from repro.reachability.result import EvaluationResult
from repro.reliability.guard import active_guard

__all__ = ["ClusterIndexEvaluator"]

#: Per-hop matching spec on the interned path:
#: (label id, allows forward, allows backward, condition step index or -1).
_HopSpec = Tuple[int, bool, bool, int]


class ClusterIndexEvaluator(SweepPlanSideChannel):
    """Index-backed evaluator (line graph + 2-hop cover + cluster join index)."""

    name = "cluster-index"

    def __init__(
        self,
        graph: SocialGraph,
        *,
        include_reverse: bool = True,
        expansion_limit: Optional[int] = 4096,
        btree_order: int = 16,
        interned: bool = True,
    ) -> None:
        self.graph = graph
        self.include_reverse = include_reverse
        self.expansion_limit = expansion_limit
        self._btree_order = btree_order
        self.interned = interned and isinstance(graph, SocialGraph)
        self._line_graph: Optional[LineGraph] = None
        self._join_index: Optional[JoinIndex] = None
        self._index: Optional[InternedLineIndex] = None
        # Compiled automata for the batched audience sweep.  The build-time
        # snapshot's structure is frozen, but its attribute dicts are live
        # (shared with the graph), so the cache — whose automata memoize
        # per-(step, node) condition outcomes — must be invalidated on the
        # *live* graph epoch, not the snapshot's frozen one; that keeps
        # find_targets_many's condition reads exactly as fresh as the
        # per-owner matcher's (which builds a new memo every call).
        self._audience_automata = AutomatonCache()
        self._audience_epoch: Optional[int] = None
        self.build_seconds = 0.0
        self.refresh_seconds = 0.0
        self.last_refresh_mode: Optional[str] = None
        self._built = False

    # ---------------------------------------------------------------- build

    def build(self) -> "ClusterIndexEvaluator":
        """Construct the index (the expensive, offline part).

        On the interned path only the dense :class:`InternedLineIndex` is
        built here; the string-facing :class:`LineGraph` / :class:`JoinIndex`
        views (base tables, clusters, W-table — the paper artifacts) decode
        from it lazily on first access, so evaluation never pays for them.
        The legacy path (``interned=False``) needs the views to match
        queries and builds them eagerly.
        """
        started = time.perf_counter()
        self._line_graph = None
        self._join_index = None
        if self.interned:
            # refresh=True: an explicit build() always pays (and re-seeds)
            # the construction, so build_seconds never times a cache hit.
            self._index = interned_line_index(
                self.graph, include_reverse=self.include_reverse, refresh=True
            )
            # This evaluator answers every query from the build-time
            # snapshot (stale-read semantics).  Pin it so delta maintenance
            # for the online backends never patches the structure this
            # index's dense arrays were derived from — after the next
            # mutation, compile_graph() hands everyone else a fresh object.
            self._index.snapshot.pin()
        else:
            self._index = None
        self._built = True
        if not self.interned:
            self._views()
        self.build_seconds = time.perf_counter() - started
        return self

    def refresh(self) -> str:
        """Bring the index up to date with the live graph, cheaply if possible.

        Tries the bounded in-place re-condensation
        (:meth:`InternedLineIndex.refresh_from_ops`) on the journal burst
        since the index's snapshot epoch before falling back to a cold
        :meth:`build`.  Returns the mode taken — ``"noop"`` (already
        current), ``"incremental"``, or ``"rebuild"`` — and records it in
        :attr:`last_refresh_mode`; ``refresh_seconds`` holds the cost of
        the last non-noop refresh (build_seconds on a rebuild).
        """
        if not self._built or self._index is None:
            self.build()
            self.refresh_seconds = self.build_seconds
            self.last_refresh_mode = "rebuild"
            return "rebuild"
        live_epoch = getattr(self.graph, "epoch", None)
        if live_epoch is not None and live_epoch == self._index.snapshot.epoch:
            self.last_refresh_mode = "noop"
            return "noop"
        mutations_since = getattr(self.graph, "mutations_since", None)
        ops = (
            mutations_since(self._index.snapshot.epoch)
            if mutations_since is not None
            else None
        )
        if ops is not None and self._index.refresh_from_ops(ops):
            # The lazy string-facing views read the live graph; drop any
            # materialized copies so statistics() stays current.
            self._line_graph = None
            self._join_index = None
            self.refresh_seconds = self._index.refresh_seconds
            self.last_refresh_mode = "incremental"
            return "incremental"
        self.build()
        self.refresh_seconds = self.build_seconds
        self.last_refresh_mode = "rebuild"
        return "rebuild"

    def _views(self) -> Tuple[LineGraph, JoinIndex]:
        """Materialize (or return) the string-facing line graph + join index."""
        if self._join_index is None or self._line_graph is None:
            self._line_graph = LineGraph(self.graph, include_reverse=self.include_reverse)
            self._join_index = JoinIndex(
                self._line_graph, btree_order=self._btree_order
            ).build()
        return self._line_graph, self._join_index

    @property
    def line_graph(self) -> Optional[LineGraph]:
        """The decoded line graph (``None`` before :meth:`build`)."""
        if not self._built:
            return None
        return self._views()[0]

    @property
    def join_index(self) -> Optional[JoinIndex]:
        """The decoded join index (``None`` before :meth:`build`)."""
        if not self._built:
            return None
        return self._views()[1]

    def statistics(self) -> Dict[str, float]:
        """Return index construction / size metrics.

        Size metrics include the string-facing artifacts (base-table rows,
        W-table entries, B+-tree nodes), so this call materializes the lazy
        :class:`LineGraph` / :class:`JoinIndex` views on the interned path.
        The views read the *live* graph: after post-build mutations they
        describe the current graph, while queries keep answering from the
        snapshot captured at :meth:`build` time.
        """
        if not self._built:
            return {"build_seconds": 0.0, "index_entries": 0.0}
        stats = dict(self._views()[1].statistics())
        stats["build_seconds"] = self.build_seconds
        return stats

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("call build() before evaluating queries")

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Return whether ``target`` is reachable from ``source`` under ``expression``."""
        self._require_built()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if not self.graph.has_user(target):
            raise NodeNotFoundError(target)
        self._check_directions(expression)
        started = time.perf_counter()
        result = EvaluationResult(reachable=False, backend=self.name)
        if self._index is not None:
            self._evaluate_interned(source, target, expression, result, collect_witness)
        else:
            self._evaluate_strings(source, target, expression, result, collect_witness)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def find_targets(self, source: Hashable, expression: PathExpression) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        self._require_built()
        self._check_directions(expression)
        if self._index is not None:
            return self._find_targets_interned(source, expression, {})
        result = EvaluationResult(reachable=False, backend=self.name)
        targets: Set[Hashable] = set()
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            tuples = self._match_line_query(line_query, expression, source, None, result,
                                            first_only=False)
            targets.update(chain[-1].end for chain in tuples)
        return targets

    def sweep_targets_many(
        self,
        sources: Iterable[Hashable],
        expression: PathExpression,
        *,
        direction: str = "auto",
    ):
        """Materialize audiences for many owners in one multi-source sweep.

        On the interned path the sweep runs the shared owner-bitset product
        walk (:func:`~repro.reachability.compiled_search.audience_sweep`)
        over the index's **build-time snapshot**, so the stale-read
        semantics match the per-owner :meth:`find_targets` exactly: owners
        added after :meth:`build` (absent from the snapshot) get an empty
        audience instead of raising, and post-build mutations stay
        invisible.  The sweep itself needs no depth expansion, but the
        ``expansion_limit`` guard is still enforced so this method raises on
        exactly the expressions :meth:`find_targets` raises on (the engine
        memoizes both under the same key, so diverging here would make
        results call-order dependent).  ``direction`` pins the planner.

        Returns ``({owner: audience}, executed SweepPlan or None)`` — the
        plan is ``None`` on the legacy string path, which plans nothing.
        """
        self._require_built()
        self._check_directions(expression)
        check_expansion_limit(expression, self.expansion_limit)
        sources = list(sources)
        if self._index is None:
            return (
                {source: self.find_targets(source, expression) for source in sources},
                None,
            )
        snapshot = self._index.snapshot
        live_epoch = getattr(self.graph, "epoch", None)
        if live_epoch != self._audience_epoch:
            # Attribute mutations are visible through the snapshot's live
            # attrs, so cached condition memos must not outlive the epoch.
            self._audience_automata = AutomatonCache()
            self._audience_epoch = live_epoch
        automaton = self._audience_automata.get(expression, snapshot)
        node_index = snapshot.node_index
        present = [
            (position, node_index[source])
            for position, source in enumerate(sources)
            if source in node_index
        ]
        sweep = audience_sweep(
            snapshot, automaton, [index for _position, index in present],
            direction=direction,
        )
        user_of = snapshot.node_ids
        audiences: Dict[Hashable, Set[Hashable]] = {source: set() for source in sources}
        for (position, _index), accepted in zip(present, sweep.audiences):
            audiences[sources[position]] = {user_of[node] for node in accepted}
        return audiences, sweep.plan

    # find_targets_many (the audiences-only legacy wrapper) is inherited
    # from SweepPlanSideChannel, shared by all four backends.

    def _check_directions(self, expression: PathExpression) -> None:
        """A forward-only line graph cannot evaluate steps that traverse edges backwards."""
        if self.include_reverse:
            return
        if any(step.direction is not Direction.OUTGOING for step in expression):
            raise IndexNotBuiltError(
                "this index was built with include_reverse=False and only supports "
                "outgoing ('+') steps; rebuild with include_reverse=True for '-' or '*' steps"
            )

    # ------------------------------------------------- interned matching

    def _evaluate_interned(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        result: EvaluationResult,
        collect_witness: bool,
    ) -> None:
        index = self._index
        assert index is not None
        # Users added after build() exist in the live graph but not in the
        # snapshot; like the string matcher (which simply finds no line
        # vertices for them) the stale index answers "unreachable" rather
        # than raising.  -1 is a target sentinel no vertex endpoint matches.
        source_index = index.snapshot.node_index.get(source)
        target_index = index.snapshot.node_index.get(target, -1)
        if source_index is None:
            return
        condition_memo: Dict[int, bytearray] = {}
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            result.count("line_queries")
            chain = self._match_interned(
                line_query, expression, source_index, target_index, result,
                condition_memo, witness=collect_witness,
            )
            if chain is not None:
                result.reachable = True
                if collect_witness:
                    result.witness = Path(
                        source, [index.traversal(vertex) for vertex in chain]
                    )
                break

    def _find_targets_interned(
        self,
        source: Hashable,
        expression: PathExpression,
        condition_memo: Dict[int, bytearray],
    ) -> Set[Hashable]:
        index = self._index
        assert index is not None
        # The legacy matcher quietly returned an empty audience for unknown
        # owners (no line vertex starts there); keep that behaviour.
        source_index = index.snapshot.node_index.get(source)
        if source_index is None:
            return set()
        result = EvaluationResult(reachable=False, backend=self.name)
        user_of = index.snapshot.node_ids
        ends = index.ends
        targets: Set[Hashable] = set()
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            finals = self._match_interned(
                line_query, expression, source_index, None, result,
                condition_memo, witness=False, first_only=False,
            )
            targets.update(user_of[ends[vertex]] for vertex in finals)
        return targets

    def _hop_specs(self, line_query: LineQuery, expression: PathExpression) -> List[_HopSpec]:
        index = self._index
        assert index is not None
        label_id_of = index.snapshot.label_id
        specs: List[_HopSpec] = []
        for hop in line_query.hops:
            step = expression[hop.step_index]
            condition_step = hop.step_index if (hop.closes_step and step.conditions) else -1
            specs.append(
                (
                    label_id_of(hop.label),
                    hop.direction.allows_forward(),
                    hop.direction.allows_backward(),
                    condition_step,
                )
            )
        return specs

    def _condition_holds(
        self,
        step_index: int,
        node: int,
        expression: PathExpression,
        memo: Dict[int, bytearray],
    ) -> bool:
        """Memoized per-(step, user) attribute-condition check (0/1/2 tri-state)."""
        index = self._index
        assert index is not None
        states = memo.get(step_index)
        if states is None:
            states = memo[step_index] = bytearray(index.snapshot.number_of_nodes())
        cached = states[node]
        if cached:
            return cached == 1
        holds = expression[step_index].satisfied_by(index.snapshot.attrs[node])
        states[node] = 1 if holds else 2
        return holds

    def _match_interned(
        self,
        line_query: LineQuery,
        expression: PathExpression,
        source: int,
        target: Optional[int],
        result: EvaluationResult,
        condition_memo: Dict[int, bytearray],
        *,
        witness: bool,
        first_only: bool = True,
    ):
        """Match one line query on the interned index.

        With ``first_only`` (the ``evaluate`` form) returns the first
        complete chain as a tuple of line-vertex ints (an empty tuple when
        ``witness`` is off — existence is all the caller needs), or ``None``
        when the line query has no answer.  Otherwise (the ``find_targets``
        form) returns the deduplicated list of final tail vertices.
        """
        index = self._index
        assert index is not None
        label_ids = index.label_ids
        dirs = index.dirs
        ends = index.ends
        start_offsets = index.start_offsets
        start_vertices = index.start_vertices
        reaches = index.reaches
        hops = self._hop_specs(line_query, expression)
        last = len(hops) - 1

        def acceptable(position: int, vertex: int) -> bool:
            label_id, allow_forward, allow_backward, condition_step = hops[position]
            if label_ids[vertex] != label_id:
                return False
            if dirs[vertex] == FORWARD_BYTE:
                if not allow_forward:
                    return False
            elif not allow_backward:
                return False
            if position == last and target is not None and ends[vertex] != target:
                return False
            if condition_step >= 0 and not self._condition_holds(
                condition_step, ends[vertex], expression, condition_memo
            ):
                return False
            return True

        # Seed: line vertices leaving the owner that match the first hop
        # (Section 3.4's "owner is the first node" endpoint check).
        frontier = [
            start_vertices[cursor]
            for cursor in range(start_offsets[source], start_offsets[source + 1])
            if acceptable(0, start_vertices[cursor])
        ]
        result.count("tuples_examined", len(frontier))
        if not frontier:
            return None if first_only else []
        parents: Optional[List[Dict[int, int]]] = None
        if first_only:
            if last == 0:
                return (frontier[0],) if witness else ()
            if witness:
                parents = [dict.fromkeys(frontier, -1)]
        elif last == 0:
            return frontier

        # Tuple assembly + post-processing.  Each consecutive hop pair is a
        # reachability condition ``label_i ⤳ label_{i+1}`` evaluated through
        # the per-component 2-hop labels (``Lout(x) ∩ Lin(y)``, Section 3.3);
        # the adjacency check of Section 3.4 (the tuple must describe one
        # path) is the frontier extension itself, and tails are deduplicated
        # per position with a byte seen-set.
        guard = active_guard()
        for position in range(1, last + 1):
            seen = bytearray(index.count)
            next_frontier: List[int] = []
            layer_parents: Optional[Dict[int, int]] = {} if parents is not None else None
            for tail in frontier:
                head = ends[tail]
                row_start = start_offsets[head]
                row_end = start_offsets[head + 1]
                if guard is not None and not guard.spend(1 + row_end - row_start):
                    # Partial mode: stop matching; an under-approximated
                    # answer (no chain / fewer tails) is the documented
                    # degraded result for guarded bulk shapes.
                    return None if first_only else []
                for cursor in range(row_start, row_end):
                    successor = start_vertices[cursor]
                    result.count("tuples_examined")
                    result.count("join_checks")
                    if not reaches(tail, successor):
                        continue
                    if seen[successor]:
                        continue
                    seen[successor] = 1
                    if not acceptable(position, successor):
                        continue
                    next_frontier.append(successor)
                    if layer_parents is not None:
                        layer_parents[successor] = tail
                    if first_only and position == last:
                        if not witness:
                            return ()
                        assert parents is not None and layer_parents is not None
                        parents.append(layer_parents)
                        return self._decode_chain(successor, parents)
            frontier = next_frontier
            if not frontier:
                return None if first_only else []
            if parents is not None and layer_parents is not None:
                parents.append(layer_parents)
        return None if first_only else frontier

    @staticmethod
    def _decode_chain(tail: int, parents: List[Dict[int, int]]) -> Tuple[int, ...]:
        """Walk the per-position parent links back into a full vertex chain."""
        chain = [tail]
        current = tail
        for layer in range(len(parents) - 1, 0, -1):
            current = parents[layer][current]
            chain.append(current)
        chain.reverse()
        return tuple(chain)

    # ------------------------------------------------- legacy (string) path

    def _evaluate_strings(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        result: EvaluationResult,
        collect_witness: bool,
    ) -> None:
        for line_query in expand_line_queries(expression, limit=self.expansion_limit):
            result.count("line_queries")
            tuples = self._match_line_query(line_query, expression, source, target, result,
                                            first_only=True)
            if tuples:
                result.reachable = True
                if collect_witness:
                    result.witness = self._witness(source, tuples[0])
                break

    def _hop_matches(self, hop: LineHop, vertex: LineVertex) -> bool:
        if vertex.label != hop.label:
            return False
        if vertex.direction == FORWARD:
            return hop.direction.allows_forward()
        return hop.direction.allows_backward()

    def _conditions_hold(self, hop: LineHop, expression: PathExpression, vertex: LineVertex) -> bool:
        if not hop.closes_step:
            return True
        step = expression[hop.step_index]
        return step.satisfied_by(raw_attributes_getter(self.graph)(vertex.end))

    def _match_line_query(
        self,
        line_query: LineQuery,
        expression: PathExpression,
        source: Hashable,
        target: Optional[Hashable],
        result: EvaluationResult,
        *,
        first_only: bool,
    ) -> List[Tuple[LineVertex, ...]]:
        """Return complete, post-processed tuples matching one line query."""
        line_graph, join_index = self._views()
        hops = list(line_query.hops)
        last = len(hops) - 1

        def acceptable(hop: LineHop, position: int, vertex: LineVertex) -> bool:
            if not self._hop_matches(hop, vertex):
                return False
            if position == last and target is not None and vertex.end != target:
                return False
            return self._conditions_hold(hop, expression, vertex)

        # Seed: line vertices leaving the owner that match the first hop
        # (Section 3.4's "owner is the first node" endpoint check).
        seeds = [vertex for vertex in line_graph.starting_at(source, key=None)
                 if acceptable(hops[0], 0, vertex)]
        result.count("tuples_examined", len(seeds))
        if not seeds:
            return []
        if len(hops) == 1:
            tuples = [(vertex,) for vertex in seeds]
            return tuples[:1] if first_only else tuples
        chains: List[Tuple[LineVertex, ...]] = [(vertex,) for vertex in seeds]

        # Tuple assembly + post-processing.  Each consecutive hop pair is a
        # reachability condition ``label_i ⤳ label_{i+1}`` evaluated through
        # the 2-hop labels stored in the base tables (``Lout(x) ∩ Lin(y)``,
        # Section 3.3); the adjacency check of Section 3.4 (the tuple must
        # describe a single path) is folded into the same chaining loop, so
        # the work per extension is proportional to the tail's line-graph
        # degree rather than to the size of the materialized join.
        for position in range(1, len(hops)):
            hop = hops[position]
            next_chains: List[Tuple[LineVertex, ...]] = []
            for chain in chains:
                tail = chain[-1]
                for successor_id in line_graph.successors(tail.vertex_id):
                    result.count("tuples_examined")
                    result.count("join_checks")
                    if not join_index.vertex_reaches(tail.vertex_id, successor_id):
                        continue
                    vertex = line_graph.vertex(successor_id)
                    if not acceptable(hop, position, vertex):
                        continue
                    next_chains.append(chain + (vertex,))
            chains = next_chains
            if not chains:
                return []
        if first_only and chains:
            return chains[:1]
        return chains

    def _keys_for(self, hop: LineHop) -> List[Tuple[str, str]]:
        keys = []
        if hop.direction.allows_forward():
            keys.append((hop.label, "+"))
        if hop.direction.allows_backward():
            keys.append((hop.label, "-"))
        return keys

    # -------------------------------------------------------------- witness

    def _witness(self, source: Hashable, chain: Sequence[LineVertex]) -> Path:
        traversals = [
            Traversal(vertex.relationship, forward=(vertex.direction == FORWARD))
            for vertex in chain
        ]
        return Path(source, traversals)
