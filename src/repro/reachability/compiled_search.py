"""Integer product search over a :class:`~repro.graph.compiled.CompiledGraph`.

This module is the shared traversal core of the online evaluators: the same
constrained product walk as :mod:`repro.reachability.bfs` /
:mod:`repro.reachability.dfs`, but run entirely on dense integers.

* :class:`CompiledAutomaton` flattens a :class:`~repro.reachability.
  automaton.StepAutomaton` into per-state lookup lists bound to one graph
  snapshot: labels become label ids, states become consecutive ints, and the
  epsilon-closure of states whose steps carry no attribute conditions is
  precomputed into a shared tuple.  Attribute conditions are evaluated at
  most once per (step, node) thanks to a byte-array memo.
* :func:`product_search` walks the product of the CSR adjacency and the
  compiled automaton.  A search node is packed into a single int
  (``node * num_states + state``) so the visited set only ever hashes small
  integers; witness information is kept as packed parent links and
  reconstructed into :class:`~repro.graph.paths.Path` objects only on
  demand, through :class:`SearchOutcome`.

Both the breadth-first and the depth-first evaluator use the same core —
they differ only in which end of the frontier is popped.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import UserId
from repro.policy.path_expression import PathExpression
from repro.reachability.result import EvaluationResult

__all__ = [
    "CompiledAutomaton",
    "AutomatonCache",
    "CompiledSearchMixin",
    "SearchOutcome",
    "product_search",
    "audience_sweep",
]

#: A packed CSR edge as stored in parent links: (rel source, rel target,
#: label id, traversed forward?).
_Edge = Tuple[int, int, int, bool]

#: One CSR adjacency half: (offsets, targets) arrays.
CSR_PAIR = Tuple[Sequence[int], Sequence[int]]


class CompiledAutomaton:
    """A step automaton flattened to dense ints and bound to one snapshot."""

    __slots__ = (
        "expression",
        "snapshot",
        "num_states",
        "start_id",
        "accept_id",
        "can_more",
        "label_of",
        "allow_fwd",
        "allow_bwd",
        "depth_ok",
        "advance_to",
        "cond_of",
        "_steps",
        "_static_closure",
        "_cond_memo",
    )

    def __init__(self, expression: PathExpression, snapshot: CompiledGraph) -> None:
        self.expression = expression
        self.snapshot = snapshot
        steps = tuple(expression)
        self._steps = steps
        # State layout: step i owns the consecutive ids base[i] + d for depth
        # d in [0, max_depth(i)]; the single accepting state comes last, so
        # "one more edge of step i" is always ``state + 1``.
        bases: List[int] = []
        total = 0
        for step in steps:
            bases.append(total)
            total += step.max_depth() + 1
        self.num_states = total + 1
        self.start_id = 0
        self.accept_id = total

        size = self.num_states
        self.can_more: List[bool] = [False] * size
        self.label_of: List[int] = [-1] * size
        self.allow_fwd: List[bool] = [False] * size
        self.allow_bwd: List[bool] = [False] * size
        self.depth_ok: List[bool] = [False] * size
        self.advance_to: List[int] = [self.accept_id] * size
        self.cond_of: List[int] = [-1] * size

        for index, step in enumerate(steps):
            label_id = snapshot.label_id(step.label)
            forward = step.direction.allows_forward()
            backward = step.direction.allows_backward()
            next_base = bases[index + 1] if index + 1 < len(steps) else self.accept_id
            has_conditions = bool(step.conditions)
            for depth in range(step.max_depth() + 1):
                state = bases[index] + depth
                self.label_of[state] = label_id
                self.allow_fwd[state] = forward
                self.allow_bwd[state] = backward
                self.can_more[state] = depth < step.max_depth() and label_id >= 0
                self.depth_ok[state] = depth in step.depths
                self.advance_to[state] = next_base
                self.cond_of[state] = index if has_conditions else -1

        # Conditions are memoized per (step, node): 0 unknown, 1 holds, 2 fails.
        self._cond_memo: Dict[int, bytearray] = {
            index: bytearray(snapshot.number_of_nodes())
            for index, step in enumerate(steps)
            if step.conditions
        }
        self._static_closure: List[Optional[Tuple[int, ...]]] = [
            self._compute_static_closure(state) for state in range(size)
        ]

    def _compute_static_closure(self, state: int) -> Optional[Tuple[int, ...]]:
        """Precompute the closure when no attribute condition gates the chain."""
        chain = [state]
        current = state
        while current != self.accept_id and self.depth_ok[current]:
            if self.cond_of[current] >= 0:
                return None
            current = self.advance_to[current]
            chain.append(current)
        return tuple(chain)

    def condition_holds(self, step_index: int, node: int) -> bool:
        """Memoized evaluation of one step's attribute conditions at one node."""
        memo = self._cond_memo[step_index]
        cached = memo[node]
        if cached:
            return cached == 1
        holds = self._steps[step_index].satisfied_by(self.snapshot.attrs[node])
        memo[node] = 1 if holds else 2
        return holds

    def static_closures(self) -> List[Optional[Tuple[int, ...]]]:
        """Per-state precomputed closures (``None`` where conditions gate the chain)."""
        return self._static_closure

    def closure(self, state: int, node: int) -> Sequence[int]:
        """Return ``state`` plus every state reachable by spontaneous advances."""
        static = self._static_closure[state]
        if static is not None:
            return static
        chain = [state]
        current = state
        while current != self.accept_id and self.depth_ok[current]:
            step_index = self.cond_of[current]
            if step_index >= 0 and not self.condition_holds(step_index, node):
                break
            current = self.advance_to[current]
            chain.append(current)
        return chain

    def __repr__(self) -> str:
        return (
            f"<CompiledAutomaton over {self.expression.to_text()!r}, "
            f"{self.num_states} states, epoch={self.snapshot.epoch}>"
        )


class AutomatonCache:
    """Per-engine ``PathExpression -> CompiledAutomaton`` memo.

    Compiled automata are bound to one snapshot (label ids, condition memos),
    so the cache is invalidated as a whole whenever the snapshot's epoch
    moves on.
    """

    __slots__ = ("_epoch", "_cache")

    def __init__(self) -> None:
        self._epoch: Optional[int] = None
        self._cache: Dict[str, CompiledAutomaton] = {}

    def get(self, expression: PathExpression, snapshot: CompiledGraph) -> CompiledAutomaton:
        """Return the compiled automaton for ``expression`` over ``snapshot``."""
        if self._epoch != snapshot.epoch:
            self._cache.clear()
            self._epoch = snapshot.epoch
        key = expression.to_text()
        automaton = self._cache.get(key)
        if automaton is None or automaton.snapshot is not snapshot:
            automaton = CompiledAutomaton(expression, snapshot)
            self._cache[key] = automaton
        return automaton

    def __len__(self) -> int:
        return len(self._cache)


class CompiledSearchMixin:
    """Compiled-search dispatch shared by the online BFS/DFS evaluators.

    Hosts need ``self.graph`` and an ``AutomatonCache`` at ``self._automata``;
    the only degree of freedom is the class attribute ``_depth_first``.
    """

    _depth_first = False

    def _compiled_search(
        self,
        source: UserId,
        expression: PathExpression,
        result: EvaluationResult,
        *,
        stop_at: Optional[UserId],
        collect_witness: bool,
    ) -> "SearchOutcome":
        """Run the product walk on the compiled CSR snapshot of the graph."""
        snapshot = compile_graph(self.graph)
        source_index = snapshot.index_of(source)
        stop_index = None if stop_at is None else snapshot.index_of(stop_at)
        automaton = self._automata.get(expression, snapshot)
        return product_search(
            snapshot,
            automaton,
            source_index,
            stop_index,
            result,
            collect_witness=collect_witness,
            depth_first=self._depth_first,
        )


    def _compiled_find_targets_many(
        self,
        sources: Sequence[UserId],
        expression: PathExpression,
    ) -> Dict[UserId, Set[UserId]]:
        """Batched ``find_targets``: one automaton compile, one sweep per owner."""
        snapshot = compile_graph(self.graph)
        automaton = self._automata.get(expression, snapshot)
        indices = [snapshot.index_of(source) for source in sources]
        user_of = snapshot.node_ids
        audiences = audience_sweep(snapshot, automaton, indices)
        return {
            source: {user_of[node] for node in accepted}
            for source, accepted in zip(sources, audiences)
        }


class SearchOutcome:
    """Accepted nodes of one product search, with on-demand witness decoding."""

    __slots__ = ("_snapshot", "_source", "_accepted", "_parents")

    def __init__(
        self,
        snapshot: CompiledGraph,
        source: int,
        accepted: Dict[int, Optional[int]],
        parents: Optional[Dict[int, Tuple[Optional[int], Optional[_Edge]]]],
    ) -> None:
        self._snapshot = snapshot
        self._source = source
        self._accepted = accepted
        self._parents = parents

    def contains(self, user: UserId) -> bool:
        """Whether ``user`` was accepted by the search."""
        index = self._snapshot.node_index.get(user)
        return index is not None and index in self._accepted

    def users(self) -> Set[UserId]:
        """Return the accepted nodes translated back to user ids."""
        user_of = self._snapshot.node_ids
        return {user_of[index] for index in self._accepted}

    def witness(self, user: UserId) -> Optional[Path]:
        """Reconstruct the witness path to ``user`` (``None`` without parents)."""
        if self._parents is None:
            return None
        index = self._snapshot.node_index.get(user)
        if index is None:
            return None
        key = self._accepted.get(index)
        if key is None:
            return None
        edges: List[_Edge] = []
        current: Optional[int] = key
        while current is not None:
            parent, edge = self._parents[current]
            if edge is not None:
                edges.append(edge)
            current = parent
        edges.reverse()
        snapshot = self._snapshot
        traversals = [
            Traversal(snapshot.relationship(rel_source, rel_target, label_id), forward=forward)
            for rel_source, rel_target, label_id, forward in edges
        ]
        return Path(snapshot.user_of(self._source), traversals)


def product_search(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    source: int,
    stop_at: Optional[int],
    result: EvaluationResult,
    *,
    collect_witness: bool,
    depth_first: bool = False,
) -> SearchOutcome:
    """Run the constrained product walk from ``source`` on integer CSR arrays.

    ``stop_at`` short-circuits the walk once that node is accepted (the
    ``evaluate`` form); ``None`` exhausts the reachable product space (the
    ``find_targets`` form).  Counters mirror the legacy dict-based search:
    one ``states_visited`` per product state discovered, one
    ``edges_expanded`` per CSR entry scanned.
    """
    num_states = automaton.num_states
    accept_id = automaton.accept_id
    can_more = automaton.can_more
    label_of = automaton.label_of
    allow_fwd = automaton.allow_fwd
    allow_bwd = automaton.allow_bwd
    closure = automaton.closure

    visited: Set[int] = set()
    accepted: Dict[int, Optional[int]] = {}
    parents: Optional[Dict[int, Tuple[Optional[int], Optional[_Edge]]]] = (
        {} if collect_witness else None
    )
    frontier: deque = deque()
    edges_expanded = 0

    for state in closure(automaton.start_id, source):
        key = source * num_states + state
        if key not in visited:
            visited.add(key)
            if parents is not None:
                parents[key] = (None, None)
            frontier.append(key)
            if state == accept_id and source not in accepted:
                accepted[source] = key if collect_witness else None

    pop = frontier.pop if depth_first else frontier.popleft
    while frontier:
        if stop_at is not None and stop_at in accepted:
            break
        key = pop()
        node, state = divmod(key, num_states)
        if not can_more[state]:
            continue
        label_id = label_of[state]
        next_state = state + 1
        for forward in (True, False):
            if forward:
                if not allow_fwd[state]:
                    continue
                offsets, targets = snapshot.forward(label_id)
            else:
                if not allow_bwd[state]:
                    continue
                offsets, targets = snapshot.backward(label_id)
            for position in range(offsets[node], offsets[node + 1]):
                neighbor = targets[position]
                edges_expanded += 1
                edge: Optional[_Edge] = None
                for closed in closure(next_state, neighbor):
                    neighbor_key = neighbor * num_states + closed
                    if neighbor_key in visited:
                        continue
                    visited.add(neighbor_key)
                    if parents is not None:
                        if edge is None:
                            edge = (
                                (node, neighbor, label_id, True)
                                if forward
                                else (neighbor, node, label_id, False)
                            )
                        parents[neighbor_key] = (key, edge)
                    frontier.append(neighbor_key)
                    if closed == accept_id and neighbor not in accepted:
                        accepted[neighbor] = neighbor_key if collect_witness else None

    if visited:
        result.count("states_visited", len(visited))
    if edges_expanded:
        result.count("edges_expanded", edges_expanded)
    return SearchOutcome(snapshot, source, accepted, parents)


def audience_sweep(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    sources: Sequence[int],
) -> List[List[int]]:
    """Materialize the accepted node set of every owner in ``sources``.

    The batched form of the ``find_targets`` product walk: the automaton is
    compiled once (its per-(step, node) condition memo is shared by every
    owner), each owner's walk keeps its frontier in a plain int list and its
    visited / accepted markers in ``bytearray`` seen-sets — no per-state
    hashing, no witness bookkeeping.  Distance limits are enforced by the
    automaton's depth-encoded states, exactly as in :func:`product_search`.

    Returns one list of accepted node indices per source, in input order.
    """
    num_states = automaton.num_states
    accept_id = automaton.accept_id
    closure = automaton.closure
    node_count = snapshot.number_of_nodes()

    # Hoisted once for the whole batch (the payoff of batching): per-state
    # CSR selections (direction checks and label lookups leave the edge
    # loop) and the precomputed spontaneous-advance chains of states whose
    # steps carry no attribute conditions.
    state_moves: List[List[CSR_PAIR]] = []
    for state in range(num_states):
        moves: List[CSR_PAIR] = []
        if automaton.can_more[state]:
            label_id = automaton.label_of[state]
            if automaton.allow_fwd[state]:
                moves.append(snapshot.forward(label_id))
            if automaton.allow_bwd[state]:
                moves.append(snapshot.backward(label_id))
        state_moves.append(moves)
    static_closure = automaton.static_closures()

    audiences: List[List[int]] = []
    for source in sources:
        visited = bytearray(node_count * num_states)
        is_accepted = bytearray(node_count)
        accepted: List[int] = []
        frontier: List[int] = []
        for state in closure(automaton.start_id, source):
            key = source * num_states + state
            if not visited[key]:
                visited[key] = 1
                frontier.append(key)
                if state == accept_id and not is_accepted[source]:
                    is_accepted[source] = 1
                    accepted.append(source)
        while frontier:
            key = frontier.pop()
            node, state = divmod(key, num_states)
            moves = state_moves[state]
            if not moves:
                continue
            next_state = state + 1
            next_static = static_closure[next_state]
            for offsets, targets in moves:
                for position in range(offsets[node], offsets[node + 1]):
                    neighbor = targets[position]
                    base = neighbor * num_states
                    chain = next_static if next_static is not None else closure(
                        next_state, neighbor
                    )
                    for closed in chain:
                        neighbor_key = base + closed
                        if visited[neighbor_key]:
                            continue
                        visited[neighbor_key] = 1
                        frontier.append(neighbor_key)
                        if closed == accept_id and not is_accepted[neighbor]:
                            is_accepted[neighbor] = 1
                            accepted.append(neighbor)
        audiences.append(accepted)
    return audiences
