"""Integer product search over a :class:`~repro.graph.compiled.CompiledGraph`.

This module is the shared traversal core of the online evaluators: the same
constrained product walk as :mod:`repro.reachability.bfs` /
:mod:`repro.reachability.dfs`, but run entirely on dense integers.

* :class:`CompiledAutomaton` flattens a :class:`~repro.reachability.
  automaton.StepAutomaton` into per-state lookup lists bound to one graph
  snapshot: labels become label ids, states become consecutive ints, and the
  epsilon-closure of states whose steps carry no attribute conditions is
  precomputed into a shared tuple.  Attribute conditions are evaluated at
  most once per (step, node) thanks to a byte-array memo.
* :func:`product_search` walks the product of the CSR adjacency and the
  compiled automaton.  A search node is packed into a single int
  (``node * num_states + state``) so the visited set only ever hashes small
  integers; witness information is kept as packed parent links and
  reconstructed into :class:`~repro.graph.paths.Path` objects only on
  demand, through :class:`SearchOutcome`.
* :func:`audience_sweep` is the batched ``find_targets`` form: a **single
  multi-source product sweep** that keeps, per ``(node, state)`` slot, a
  bitmask of the owners whose walk has reached that slot (Python ints over
  a dense owner index).  Overlapping owner neighbourhoods are traversed
  once — a slot's outgoing CSR rows are rescanned only when *new* owner
  bits arrive — instead of once per owner.  A :func:`direction planner
  <plan_audience_sweep>` decides per expression whether to run the sweep
  forward from the owners or backward from the whole vertex set over the
  :func:`reversed automaton <reversed_expression>`.

Both the breadth-first and the depth-first evaluator use the same core —
they differ only in which end of the frontier is popped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro._deprecation import warn_deprecated
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import UserId
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction, Step
from repro.reachability.result import EvaluationResult
from repro.reliability.guard import active_guard

__all__ = [
    "CompiledAutomaton",
    "AutomatonCache",
    "CompiledSearchMixin",
    "SearchOutcome",
    "SweepPlan",
    "SweepPlanSideChannel",
    "AudienceSweep",
    "product_search",
    "audience_sweep",
    "audience_sweep_batched",
    "plan_audience_sweep",
    "reversed_expression",
    "reversed_automaton",
]

#: Accepted values of every ``direction=`` parameter along the audience path.
SWEEP_DIRECTIONS = ("auto", "forward", "reverse", "batched")

#: A packed CSR edge as stored in parent links: (rel source, rel target,
#: label id, traversed forward?).
_Edge = Tuple[int, int, int, bool]

#: One CSR adjacency half: (offsets, targets) arrays.
CSR_PAIR = Tuple[Sequence[int], Sequence[int]]


class CompiledAutomaton:
    """A step automaton flattened to dense ints and bound to one snapshot."""

    __slots__ = (
        "expression",
        "snapshot",
        "num_states",
        "start_id",
        "accept_id",
        "can_more",
        "label_of",
        "allow_fwd",
        "allow_bwd",
        "depth_ok",
        "advance_to",
        "cond_of",
        "_steps",
        "_static_closure",
        "_cond_memo",
    )

    def __init__(self, expression: PathExpression, snapshot: CompiledGraph) -> None:
        self.expression = expression
        self.snapshot = snapshot
        steps = tuple(expression)
        self._steps = steps
        # State layout: step i owns the consecutive ids base[i] + d for depth
        # d in [0, max_depth(i)]; the single accepting state comes last, so
        # "one more edge of step i" is always ``state + 1``.
        bases: List[int] = []
        total = 0
        for step in steps:
            bases.append(total)
            total += step.max_depth() + 1
        self.num_states = total + 1
        self.start_id = 0
        self.accept_id = total

        size = self.num_states
        self.can_more: List[bool] = [False] * size
        self.label_of: List[int] = [-1] * size
        self.allow_fwd: List[bool] = [False] * size
        self.allow_bwd: List[bool] = [False] * size
        self.depth_ok: List[bool] = [False] * size
        self.advance_to: List[int] = [self.accept_id] * size
        self.cond_of: List[int] = [-1] * size

        for index, step in enumerate(steps):
            label_id = snapshot.label_id(step.label)
            forward = step.direction.allows_forward()
            backward = step.direction.allows_backward()
            next_base = bases[index + 1] if index + 1 < len(steps) else self.accept_id
            has_conditions = bool(step.conditions)
            for depth in range(step.max_depth() + 1):
                state = bases[index] + depth
                self.label_of[state] = label_id
                self.allow_fwd[state] = forward
                self.allow_bwd[state] = backward
                self.can_more[state] = depth < step.max_depth() and label_id >= 0
                self.depth_ok[state] = depth in step.depths
                self.advance_to[state] = next_base
                self.cond_of[state] = index if has_conditions else -1

        # Conditions are memoized per (step, node): 0 unknown, 1 holds, 2 fails.
        self._cond_memo: Dict[int, bytearray] = {
            index: bytearray(snapshot.number_of_nodes())
            for index, step in enumerate(steps)
            if step.conditions
        }
        self._static_closure: List[Optional[Tuple[int, ...]]] = [
            self._compute_static_closure(state) for state in range(size)
        ]

    def _compute_static_closure(self, state: int) -> Optional[Tuple[int, ...]]:
        """Precompute the closure when no attribute condition gates the chain."""
        chain = [state]
        current = state
        while current != self.accept_id and self.depth_ok[current]:
            if self.cond_of[current] >= 0:
                return None
            current = self.advance_to[current]
            chain.append(current)
        return tuple(chain)

    def condition_holds(self, step_index: int, node: int) -> bool:
        """Memoized evaluation of one step's attribute conditions at one node."""
        memo = self._cond_memo[step_index]
        cached = memo[node]
        if cached:
            return cached == 1
        holds = self._steps[step_index].satisfied_by(self.snapshot.attrs[node])
        memo[node] = 1 if holds else 2
        return holds

    def static_closures(self) -> List[Optional[Tuple[int, ...]]]:
        """Per-state precomputed closures (``None`` where conditions gate the chain)."""
        return self._static_closure

    def closure(self, state: int, node: int) -> Sequence[int]:
        """Return ``state`` plus every state reachable by spontaneous advances."""
        static = self._static_closure[state]
        if static is not None:
            return static
        chain = [state]
        current = state
        while current != self.accept_id and self.depth_ok[current]:
            step_index = self.cond_of[current]
            if step_index >= 0 and not self.condition_holds(step_index, node):
                break
            current = self.advance_to[current]
            chain.append(current)
        return chain

    def __repr__(self) -> str:
        return (
            f"<CompiledAutomaton over {self.expression.to_text()!r}, "
            f"{self.num_states} states, epoch={self.snapshot.epoch}>"
        )


class AutomatonCache:
    """Per-engine ``PathExpression -> CompiledAutomaton`` memo.

    Compiled automata are bound to one snapshot (label ids, condition memos),
    so the cache is invalidated as a whole whenever the snapshot's epoch
    moves on.
    """

    __slots__ = ("_epoch", "_cache")

    def __init__(self) -> None:
        self._epoch: Optional[int] = None
        self._cache: Dict[str, CompiledAutomaton] = {}

    def get(self, expression: PathExpression, snapshot: CompiledGraph) -> CompiledAutomaton:
        """Return the compiled automaton for ``expression`` over ``snapshot``."""
        if self._epoch != snapshot.epoch:
            self._cache.clear()
            self._epoch = snapshot.epoch
        key = expression.to_text()
        automaton = self._cache.get(key)
        if automaton is None or automaton.snapshot is not snapshot:
            automaton = CompiledAutomaton(expression, snapshot)
            self._cache[key] = automaton
        return automaton

    def __len__(self) -> int:
        return len(self._cache)


class SweepPlanSideChannel:
    """Deprecated ``last_sweep_plan`` alias shared by every backend.

    Since PR 5 the executed :class:`SweepPlan` is *returned* next to the
    audiences (``sweep_targets_many``) and carried on the
    :class:`~repro.service.results.AudienceResult` objects the
    :class:`~repro.service.GraphService` facade hands out — a result owns
    its plan forever, where the mutable attribute only described the most
    recent call (and a memo-warm call could leave a *previous* call's plan
    behind on the backend).  Reading the attribute still works but emits a
    :class:`DeprecationWarning`; assigning it is allowed so legacy callers
    that reset it keep working.
    """

    _last_sweep_plan: Optional["SweepPlan"] = None

    @property
    def last_sweep_plan(self) -> Optional["SweepPlan"]:
        warn_deprecated(
            f"{type(self).__name__}.last_sweep_plan is a deprecated side-channel; "
            "use the plan returned by sweep_targets_many() (or carried by "
            "GraphService audience results) instead"
        )
        return self._last_sweep_plan

    @last_sweep_plan.setter
    def last_sweep_plan(self, plan: Optional["SweepPlan"]) -> None:
        self._last_sweep_plan = plan

    def find_targets_many(
        self, sources, expression: PathExpression, *, direction: str = "auto"
    ):
        """Audiences-only form of ``sweep_targets_many`` (the pre-PR 5 shape).

        The one legacy wrapper shared by every backend: kept for callers
        that do not need the executed plan, which is still mirrored on the
        deprecated ``last_sweep_plan`` side-channel.
        """
        audiences, plan = self.sweep_targets_many(
            sources, expression, direction=direction
        )
        self._last_sweep_plan = plan
        return audiences


class CompiledSearchMixin(SweepPlanSideChannel):
    """Compiled-search dispatch shared by the online BFS/DFS evaluators.

    Hosts need ``self.graph`` and an ``AutomatonCache`` at ``self._automata``;
    the only degree of freedom is the class attribute ``_depth_first``.
    """

    _depth_first = False

    def _compiled_search(
        self,
        source: UserId,
        expression: PathExpression,
        result: EvaluationResult,
        *,
        stop_at: Optional[UserId],
        collect_witness: bool,
    ) -> "SearchOutcome":
        """Run the product walk on the compiled CSR snapshot of the graph."""
        snapshot = compile_graph(self.graph)
        source_index = snapshot.index_of(source)
        stop_index = None if stop_at is None else snapshot.index_of(stop_at)
        automaton = self._automata.get(expression, snapshot)
        return product_search(
            snapshot,
            automaton,
            source_index,
            stop_index,
            result,
            collect_witness=collect_witness,
            depth_first=self._depth_first,
        )


    def _compiled_sweep_many(
        self,
        sources: Sequence[UserId],
        expression: PathExpression,
        *,
        direction: str = "auto",
    ) -> Tuple[Dict[UserId, Set[UserId]], "SweepPlan"]:
        """Batched ``find_targets``: one automaton compile, one shared sweep.

        Returns ``(audiences, executed plan)`` — the plan travels with the
        result instead of through a mutable attribute.
        """
        snapshot = compile_graph(self.graph)
        automaton = self._automata.get(expression, snapshot)
        indices = [snapshot.index_of(source) for source in sources]
        user_of = snapshot.node_ids
        sweep = audience_sweep(snapshot, automaton, indices, direction=direction)
        audiences = {
            source: {user_of[node] for node in accepted}
            for source, accepted in zip(sources, sweep.audiences)
        }
        return audiences, sweep.plan


class SearchOutcome:
    """Accepted nodes of one product search, with on-demand witness decoding."""

    __slots__ = ("_snapshot", "_source", "_accepted", "_parents")

    def __init__(
        self,
        snapshot: CompiledGraph,
        source: int,
        accepted: Dict[int, Optional[int]],
        parents: Optional[Dict[int, Tuple[Optional[int], Optional[_Edge]]]],
    ) -> None:
        self._snapshot = snapshot
        self._source = source
        self._accepted = accepted
        self._parents = parents

    def contains(self, user: UserId) -> bool:
        """Whether ``user`` was accepted by the search."""
        index = self._snapshot.node_index.get(user)
        return index is not None and index in self._accepted

    def users(self) -> Set[UserId]:
        """Return the accepted nodes translated back to user ids."""
        user_of = self._snapshot.node_ids
        return {user_of[index] for index in self._accepted}

    def witness(self, user: UserId) -> Optional[Path]:
        """Reconstruct the witness path to ``user`` (``None`` without parents)."""
        if self._parents is None:
            return None
        index = self._snapshot.node_index.get(user)
        if index is None:
            return None
        key = self._accepted.get(index)
        if key is None:
            return None
        edges: List[_Edge] = []
        current: Optional[int] = key
        while current is not None:
            parent, edge = self._parents[current]
            if edge is not None:
                edges.append(edge)
            current = parent
        edges.reverse()
        snapshot = self._snapshot
        traversals = [
            Traversal(snapshot.relationship(rel_source, rel_target, label_id), forward=forward)
            for rel_source, rel_target, label_id, forward in edges
        ]
        return Path(snapshot.user_of(self._source), traversals)


def product_search(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    source: int,
    stop_at: Optional[int],
    result: EvaluationResult,
    *,
    collect_witness: bool,
    depth_first: bool = False,
) -> SearchOutcome:
    """Run the constrained product walk from ``source`` on integer CSR arrays.

    ``stop_at`` short-circuits the walk once that node is accepted (the
    ``evaluate`` form); ``None`` exhausts the reachable product space (the
    ``find_targets`` form).  Counters mirror the legacy dict-based search:
    one ``states_visited`` per product state discovered, one
    ``edges_expanded`` per CSR entry scanned.

    An active :class:`~repro.reliability.guard.QueryGuard` is ticked once
    per popped frontier entry, charged with the edges scanned since the
    previous tick — a blown budget either raises (``"raise"`` mode) or ends
    the walk early (``"partial"`` mode; the under-approximated outcome is
    only surfaced through result shapes that carry a ``partial`` flag).
    """
    num_states = automaton.num_states
    accept_id = automaton.accept_id
    can_more = automaton.can_more
    label_of = automaton.label_of
    allow_fwd = automaton.allow_fwd
    allow_bwd = automaton.allow_bwd
    closure = automaton.closure

    visited: Set[int] = set()
    accepted: Dict[int, Optional[int]] = {}
    parents: Optional[Dict[int, Tuple[Optional[int], Optional[_Edge]]]] = (
        {} if collect_witness else None
    )
    frontier: deque = deque()
    edges_expanded = 0

    for state in closure(automaton.start_id, source):
        key = source * num_states + state
        if key not in visited:
            visited.add(key)
            if parents is not None:
                parents[key] = (None, None)
            frontier.append(key)
            if state == accept_id and source not in accepted:
                accepted[source] = key if collect_witness else None

    guard = active_guard()
    charged = 0
    pop = frontier.pop if depth_first else frontier.popleft
    while frontier:
        if stop_at is not None and stop_at in accepted:
            break
        if guard is not None:
            if not guard.spend(1 + edges_expanded - charged):
                break
            charged = edges_expanded
        key = pop()
        node, state = divmod(key, num_states)
        if not can_more[state]:
            continue
        label_id = label_of[state]
        next_state = state + 1
        for forward in (True, False):
            if forward:
                if not allow_fwd[state]:
                    continue
                offsets, targets = snapshot.forward(label_id)
            else:
                if not allow_bwd[state]:
                    continue
                offsets, targets = snapshot.backward(label_id)
            for position in range(offsets[node], offsets[node + 1]):
                neighbor = targets[position]
                edges_expanded += 1
                edge: Optional[_Edge] = None
                for closed in closure(next_state, neighbor):
                    neighbor_key = neighbor * num_states + closed
                    if neighbor_key in visited:
                        continue
                    visited.add(neighbor_key)
                    if parents is not None:
                        if edge is None:
                            edge = (
                                (node, neighbor, label_id, True)
                                if forward
                                else (neighbor, node, label_id, False)
                            )
                        parents[neighbor_key] = (key, edge)
                    frontier.append(neighbor_key)
                    if closed == accept_id and neighbor not in accepted:
                        accepted[neighbor] = neighbor_key if collect_witness else None

    if visited:
        result.count("states_visited", len(visited))
    if edges_expanded:
        result.count("edges_expanded", edges_expanded)
    return SearchOutcome(snapshot, source, accepted, parents)


def _hoisted_state_moves(
    snapshot: CompiledGraph, automaton: CompiledAutomaton
) -> List[List[CSR_PAIR]]:
    """Per-state CSR selections, hoisted so the edge loops never re-check
    directions or re-resolve label ids."""
    state_moves: List[List[CSR_PAIR]] = []
    for state in range(automaton.num_states):
        moves: List[CSR_PAIR] = []
        if automaton.can_more[state]:
            label_id = automaton.label_of[state]
            if automaton.allow_fwd[state]:
                moves.append(snapshot.forward(label_id))
            if automaton.allow_bwd[state]:
                moves.append(snapshot.backward(label_id))
        state_moves.append(moves)
    return state_moves


def audience_sweep_batched(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    sources: Sequence[int],
) -> List[List[int]]:
    """Materialize the accepted node set of every owner, one walk per owner.

    The PR 2 batched sweep, kept as the measurable baseline of
    :func:`audience_sweep`: the automaton is compiled once (its per-(step,
    node) condition memo is shared by every owner), each owner's walk keeps
    its frontier in a plain int list and its visited / accepted markers in
    ``bytearray`` seen-sets — no per-state hashing, no witness bookkeeping.
    Overlapping owner neighbourhoods are still re-expanded per owner, which
    is exactly what the multi-source sweep eliminates.

    Returns one list of accepted node indices per source, in input order.
    """
    num_states = automaton.num_states
    accept_id = automaton.accept_id
    closure = automaton.closure
    node_count = snapshot.number_of_nodes()
    state_moves = _hoisted_state_moves(snapshot, automaton)
    static_closure = automaton.static_closures()

    guard = active_guard()
    tripped = False
    scanned = 0
    charged = 0
    audiences: List[List[int]] = []
    for source in sources:
        if tripped:
            # Budget blown on an earlier owner: remaining owners get empty
            # audiences; the caller surfaces the whole sweep as partial.
            audiences.append([])
            continue
        visited = bytearray(node_count * num_states)
        is_accepted = bytearray(node_count)
        accepted: List[int] = []
        frontier: List[int] = []
        for state in closure(automaton.start_id, source):
            key = source * num_states + state
            if not visited[key]:
                visited[key] = 1
                frontier.append(key)
                if state == accept_id and not is_accepted[source]:
                    is_accepted[source] = 1
                    accepted.append(source)
        while frontier:
            if guard is not None:
                if not guard.spend(1 + scanned - charged):
                    tripped = True
                    break
                charged = scanned
            key = frontier.pop()
            node, state = divmod(key, num_states)
            moves = state_moves[state]
            if not moves:
                continue
            next_state = state + 1
            next_static = static_closure[next_state]
            for offsets, targets in moves:
                row_end = offsets[node + 1]
                scanned += row_end - offsets[node]
                for position in range(offsets[node], row_end):
                    neighbor = targets[position]
                    base = neighbor * num_states
                    chain = next_static if next_static is not None else closure(
                        next_state, neighbor
                    )
                    for closed in chain:
                        neighbor_key = base + closed
                        if visited[neighbor_key]:
                            continue
                        visited[neighbor_key] = 1
                        frontier.append(neighbor_key)
                        if closed == accept_id and not is_accepted[neighbor]:
                            is_accepted[neighbor] = 1
                            accepted.append(neighbor)
        audiences.append(accepted)
    return audiences


# --------------------------------------------------------------------------
# Multi-source owner-bitset sweep + direction planner
# --------------------------------------------------------------------------

#: ``+`` and ``-`` swap when a path is walked target -> owner; ``*`` is its
#: own mirror image.
_FLIPPED_DIRECTION = {
    Direction.OUTGOING: Direction.INCOMING,
    Direction.INCOMING: Direction.OUTGOING,
    Direction.ANY: Direction.ANY,
}

# Reversed automata live on snapshot.derived under the conservative default
# delta policy ("always"): any in-place patch drops the cache, and the
# live-epoch check below additionally covers snapshots that outlive graph
# mutations (the cluster backend's pinned build-time snapshot) — compiled
# automata memoize per-(step, node) condition outcomes and must never serve
# values frozen at an earlier epoch.
_REVERSED_AUTOMATA_KEY = "compiled_search.reversed_automata"


def reversed_expression(expression: PathExpression) -> PathExpression:
    """Return the expression matching every satisfying path walked backwards.

    A path ``owner -> ... -> target`` satisfying ``expression`` corresponds
    one-to-one to a path ``target -> ... -> owner`` satisfying the reversed
    expression: step order is reversed, each step's direction is flipped and
    its depth interval kept.  Attribute conditions shift one step towards
    the owner — a forward step's conditions constrain the user at the *end*
    of its edge run, and the backward walk reaches that user at the end of
    the *following* reversed step's run.  The last forward step's conditions
    constrain the backward walk's start nodes and therefore do not appear in
    the reversed expression at all: reverse sweeps must filter their seeds
    with them instead (see :func:`audience_sweep`).
    """
    steps = tuple(expression)
    reversed_steps: List[Step] = []
    for position in range(len(steps) - 1, -1, -1):
        step = steps[position]
        reversed_steps.append(
            Step(
                label=step.label,
                direction=_FLIPPED_DIRECTION[step.direction],
                depths=step.depths,
                conditions=steps[position - 1].conditions if position > 0 else (),
            )
        )
    return PathExpression(tuple(reversed_steps))


def reversed_automaton(
    snapshot: CompiledGraph, expression: PathExpression
) -> CompiledAutomaton:
    """Return the compiled automaton of ``reversed_expression(expression)``.

    Cached in ``snapshot.derived`` (keyed by the forward expression's text),
    so it shares the snapshot's lifetime and inherits epoch-based
    invalidation — exactly like the interned line index.  A snapshot that
    outlives graph mutations (the cluster index answers from its build-time
    snapshot) still sees *live* attribute dicts, so the cache is additionally
    dropped whenever the live graph epoch moves: compiled automata memoize
    per-(step, node) condition outcomes and must not serve values frozen at
    an earlier epoch.
    """
    live_epoch = getattr(snapshot.graph, "epoch", snapshot.epoch)
    entry = snapshot.derived.get(_REVERSED_AUTOMATA_KEY)
    if entry is None or entry[0] != live_epoch:
        entry = (live_epoch, {})
        snapshot.derived[_REVERSED_AUTOMATA_KEY] = entry
    cache: Dict[str, CompiledAutomaton] = entry[1]
    key = expression.to_text()
    automaton = cache.get(key)
    if automaton is None:
        automaton = cache[key] = CompiledAutomaton(
            reversed_expression(expression), snapshot
        )
    return automaton


@dataclass(frozen=True)
class SweepPlan:
    """The direction planner's verdict for one audience sweep.

    ``direction`` is what actually ran: ``"forward"`` (multi-source from the
    owners), ``"reverse"`` (multi-source from the whole vertex set over the
    reversed automaton) or ``"batched"`` (the per-owner PR 2 baseline,
    selectable only by forcing).  Costs are the planner's estimates in
    arbitrary explored-work units; they are computed even when the caller
    forced the direction, so benchmarks can grade the heuristic.
    """

    direction: str
    forced: bool
    owners: int
    forward_cost: float
    reverse_cost: float
    reason: str


def _estimate_sweep_cost(
    snapshot: CompiledGraph,
    steps: Sequence[Step],
    seed_count: int,
    mask_bits: int,
) -> float:
    """Rough explored-work estimate of one multi-source sweep.

    A geometric frontier model over the snapshot's per-label degree
    statistics: every depth level of every step expands the frontier by the
    label's mean degree (counted once per allowed edge orientation), and the
    frontier saturates at ``|V|``.  Owners are assumed degree-typical.  Mask
    width enters as a slow multiplier: big-int bitset ops on a few words are
    drowned out by interpreter overhead, so each extra 16 words of mask
    costs roughly one more interpreter-op equivalent per edge.
    """
    node_count = max(1, snapshot.number_of_live_nodes())
    stats = snapshot.degree_statistics()
    frontier = float(seed_count)
    cost = float(seed_count)
    for step in steps:
        label_id = snapshot.label_id(step.label)
        if label_id < 0:
            break  # no edges carry this label: the sweep dies here
        orientations = int(step.direction.allows_forward()) + int(
            step.direction.allows_backward()
        )
        mean_degree = stats[label_id].mean_degree * orientations
        for _depth in range(step.max_depth()):
            expansions = frontier * mean_degree
            cost += expansions
            frontier = min(float(node_count), expansions)
            if not frontier:
                break
        if not frontier:
            break
    words = 1 + (max(0, mask_bits - 1) >> 6)
    return cost * (1.0 + words / 16.0)


def plan_audience_sweep(
    snapshot: CompiledGraph,
    expression: PathExpression,
    owner_count: int,
    *,
    direction: str = "auto",
) -> SweepPlan:
    """Choose the direction of one audience sweep.

    Forward sweeps seed ``owner_count`` nodes with ``owner_count``-bit
    masks; reverse sweeps seed the whole vertex set with ``|V|``-bit masks
    over the reversed automaton.  Reverse wins when the owner set is large
    (the two costs converge as ``owner_count -> |V|``) or when the forward
    first step fans out much harder than the reversed one — e.g. a
    high-degree ``*`` first step feeding into a rare last label.
    ``direction`` other than ``"auto"`` pins the outcome (used by the
    differential tests and benchmarks); costs are estimated either way.
    """
    if direction not in SWEEP_DIRECTIONS:
        raise ValueError(
            f"unknown sweep direction {direction!r}; expected one of {SWEEP_DIRECTIONS}"
        )
    node_count = snapshot.number_of_live_nodes()
    forward_cost = _estimate_sweep_cost(
        snapshot, tuple(expression), owner_count, owner_count
    )
    reverse_cost = _estimate_sweep_cost(
        snapshot, tuple(reversed_expression(expression)), node_count, node_count
    )
    if direction != "auto":
        return SweepPlan(
            direction=direction,
            forced=True,
            owners=owner_count,
            forward_cost=forward_cost,
            reverse_cost=reverse_cost,
            reason=f"direction pinned to {direction!r} by the caller",
        )
    if reverse_cost < forward_cost:
        chosen, reason = "reverse", (
            f"reverse sweep estimated cheaper ({reverse_cost:.0f} vs "
            f"{forward_cost:.0f}) for {owner_count} owners over {node_count} nodes"
        )
    else:
        chosen, reason = "forward", (
            f"forward sweep estimated cheaper ({forward_cost:.0f} vs "
            f"{reverse_cost:.0f}) for {owner_count} owners over {node_count} nodes"
        )
    return SweepPlan(
        direction=chosen,
        forced=False,
        owners=owner_count,
        forward_cost=forward_cost,
        reverse_cost=reverse_cost,
        reason=reason,
    )


def _multisource_mask_sweep(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    seeds: Mapping[int, int],
) -> List[int]:
    """Propagate owner bitmasks through the product space in one shared pass.

    ``seeds`` maps node index -> initial bitmask.  Per ``(node, state)``
    slot the flat ``seen`` table holds the mask of owners whose walk has
    reached the slot; ``pending`` accumulates the not-yet-propagated part.
    The worklist is FIFO so the owners' frontiers advance level-aligned and
    merge into single slot visits — a slot's CSR rows are rescanned only
    when genuinely new owner bits arrive (``new = mask & ~seen[slot]``),
    which is the whole win over the per-owner sweep: overlapping owner
    neighbourhoods cost one traversal, not one per owner.

    Monotonicity makes this equivalent to running the per-owner walk for
    every seed bit: a bit enters a slot's mask at most once, so each
    (owner, node, state) triple is expanded at most once, exactly as in
    :func:`audience_sweep_batched`.

    Returns the flat ``seen`` table; callers read acceptance off
    ``seen[node * num_states + accept_id]``.
    """
    num_states = automaton.num_states
    closure = automaton.closure
    static_closure = automaton.static_closures()
    state_moves = _hoisted_state_moves(snapshot, automaton)
    node_count = snapshot.number_of_nodes()

    seen: List[int] = [0] * (node_count * num_states)
    pending: List[int] = [0] * (node_count * num_states)
    # Spontaneous-advance chains of condition-gated states, memoized per
    # (state, node) slot: condition outcomes are stable within a sweep (the
    # automaton's per-(step, node) memo), so the chain never changes and the
    # closure call leaves the edge loop after the first visit.
    chain_memo: Dict[int, Tuple[int, ...]] = {}
    queue: List[int] = []
    for node, mask in seeds.items():
        for state in closure(automaton.start_id, node):
            key = node * num_states + state
            add = mask & ~seen[key]
            if add:
                seen[key] |= add
                if not pending[key]:
                    queue.append(key)
                pending[key] |= add

    guard = active_guard()
    scanned = 0
    charged = 0
    head = 0
    while head < len(queue):
        if guard is not None:
            if not guard.spend(1 + scanned - charged):
                break
            charged = scanned
        key = queue[head]
        head += 1
        delta = pending[key]
        pending[key] = 0
        if not delta:
            continue
        node, state = divmod(key, num_states)
        moves = state_moves[state]
        if not moves:
            continue
        next_state = state + 1
        next_static = static_closure[next_state]
        for offsets, targets in moves:
            # Slicing the CSR row and iterating the array directly saves an
            # index lookup per edge — this loop is the sweep's entire cost.
            row = targets[offsets[node]:offsets[node + 1]]
            scanned += len(row)
            for neighbor in row:
                base = neighbor * num_states
                if next_static is not None:
                    chain = next_static
                else:
                    chain = chain_memo.get(base + next_state)
                    if chain is None:
                        chain = chain_memo[base + next_state] = tuple(
                            closure(next_state, neighbor)
                        )
                for closed in chain:
                    neighbor_key = base + closed
                    previous = seen[neighbor_key]
                    if previous:
                        add = delta & ~previous
                        if not add:
                            continue
                        seen[neighbor_key] = previous | add
                    else:
                        add = delta
                        seen[neighbor_key] = delta
                    if not pending[neighbor_key]:
                        queue.append(neighbor_key)
                    pending[neighbor_key] |= add
    return seen


def _mask_bits(mask: int) -> List[int]:
    """Return the set bit positions of ``mask`` (lowest first)."""
    bits: List[int] = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return bits


def _sweep_forward(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    sources: Sequence[int],
) -> List[List[int]]:
    """Multi-source sweep from the owners; bit ``i`` stands for ``sources[i]``."""
    seeds: Dict[int, int] = {}
    for bit, node in enumerate(sources):
        seeds[node] = seeds.get(node, 0) | (1 << bit)
    seen = _multisource_mask_sweep(snapshot, automaton, seeds)
    num_states = automaton.num_states
    accept_id = automaton.accept_id
    audiences: List[List[int]] = [[] for _ in sources]
    # Accepted nodes cluster on few distinct owner masks (overlapping
    # audiences are the whole point of the batch), so bit extraction is
    # memoized per mask value and the decode degenerates to list appends —
    # the same Sum|audience| appends the per-owner baseline pays.
    bits_of: Dict[int, List[int]] = {}
    for node in range(snapshot.number_of_nodes()):
        mask = seen[node * num_states + accept_id]
        if not mask:
            continue
        bits = bits_of.get(mask)
        if bits is None:
            bits = bits_of[mask] = _mask_bits(mask)
        for bit in bits:
            audiences[bit].append(node)
    return audiences


def _sweep_reverse(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    sources: Sequence[int],
) -> List[List[int]]:
    """Multi-source sweep over the reversed automaton from the whole vertex set.

    Bit ``t`` stands for the candidate *target* node ``t``; seeds are
    filtered by the last forward step's attribute conditions (the one
    constraint :func:`reversed_expression` cannot carry).  A bit reaching an
    owner's accepting slot means the backward walk ``t -> owner`` succeeded,
    i.e. ``t`` belongs to that owner's audience.
    """
    reverse = reversed_automaton(snapshot, automaton.expression)
    steps = tuple(automaton.expression)
    node_count = snapshot.number_of_nodes()
    # Tombstoned slots carry no edges, but they must not be seeded either:
    # their attribute entries are gone, so a condition probe would fail, and
    # a dead bit reaching nothing still widens every mask word for free.
    dead = snapshot.dead_slots
    if steps[-1].conditions:
        # The forward automaton's per-(step, node) memo covers the last
        # step, so repeated reverse sweeps re-evaluate nothing.
        last_index = len(steps) - 1
        holds = automaton.condition_holds
        seeds = {
            node: 1 << node
            for node in range(node_count)
            if node not in dead and holds(last_index, node)
        }
    else:
        seeds = {
            node: 1 << node for node in range(node_count) if node not in dead
        }
    seen = _multisource_mask_sweep(snapshot, reverse, seeds)
    num_states = reverse.num_states
    accept_id = reverse.accept_id
    audiences: List[List[int]] = []
    for node in sources:
        audiences.append(_mask_bits(seen[node * num_states + accept_id]))
    return audiences


class AudienceSweep:
    """Result of one audience sweep: per-owner audiences plus the plan run.

    ``partial`` is ``True`` when an active query guard ran out of budget
    mid-sweep: the audiences are a correct *under*-approximation (every
    listed member is genuinely reachable) but owners past the trip point may
    be missing members entirely.  Partial sweeps are never cached.
    """

    __slots__ = ("audiences", "plan", "partial")

    def __init__(
        self, audiences: List[List[int]], plan: SweepPlan, partial: bool = False
    ) -> None:
        self.audiences = audiences
        self.plan = plan
        self.partial = partial

    def __iter__(self) -> Iterable[List[int]]:
        return iter(self.audiences)

    def __repr__(self) -> str:
        flag = " partial" if self.partial else ""
        return (
            f"<AudienceSweep {len(self.audiences)} owners via "
            f"{self.plan.direction}{flag}>"
        )


def audience_sweep(
    snapshot: CompiledGraph,
    automaton: CompiledAutomaton,
    sources: Sequence[int],
    *,
    direction: str = "auto",
    plan: Optional[SweepPlan] = None,
) -> AudienceSweep:
    """Materialize the accepted node set of every owner in ``sources`` at once.

    The multi-source form of the ``find_targets`` product walk: one frontier
    pass shared by all owners, with per-slot owner bitmasks instead of one
    bytearray walk per owner (:func:`audience_sweep_batched`, the PR 2
    baseline, remains available and selectable via ``direction="batched"``).
    ``direction`` is resolved by :func:`plan_audience_sweep` unless an
    explicit ``plan`` is handed in.  Distance limits are enforced by the
    automaton's depth-encoded states, exactly as in :func:`product_search`.

    Returns an :class:`AudienceSweep` with one list of accepted node indices
    per source, in input order, and the executed :class:`SweepPlan`.
    """
    if plan is None:
        plan = plan_audience_sweep(
            snapshot, automaton.expression, len(sources), direction=direction
        )
    if plan.direction == "batched":
        audiences = audience_sweep_batched(snapshot, automaton, sources)
    elif plan.direction == "reverse":
        audiences = _sweep_reverse(snapshot, automaton, sources)
    else:
        audiences = _sweep_forward(snapshot, automaton, sources)
    guard = active_guard()
    partial = bool(guard is not None and guard.tripped)
    return AudienceSweep(audiences, plan, partial)
