"""Online constrained depth-first search.

The depth-first twin of :class:`~repro.reachability.bfs.OnlineBFSEvaluator`
(the paper mentions both as the straightforward baselines).  Semantics are
identical — the two must agree on every query — but the exploration order
differs: DFS dives along one branch first, which tends to find *a* witness
faster on graphs with long chains, at the cost of not returning shortest
witnesses.  Implemented iteratively (explicit stack) so that deep graphs do
not hit Python's recursion limit.

Like the BFS evaluator, the search runs on the graph's compiled CSR snapshot
by default (``compiled=False`` restores the legacy dict traversal); the two
modes are equivalent and only differ in constant factors.  Snapshot
acquisition is per query through ``compile_graph`` and therefore inherits
delta maintenance under churn, exactly as described in
:mod:`repro.reachability.bfs`.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import SocialGraph, raw_attributes_getter
from repro.policy.path_expression import PathExpression
from repro.reachability.automaton import AutomatonState, StepAutomaton
from repro.reachability.compiled_search import AutomatonCache, CompiledSearchMixin
from repro.reachability.result import EvaluationResult

__all__ = ["OnlineDFSEvaluator"]

_SearchNode = Tuple[Hashable, AutomatonState]


class OnlineDFSEvaluator(CompiledSearchMixin):
    """Evaluate ordered label-constraint reachability queries by constrained DFS."""

    name = "dfs"
    _depth_first = True

    def __init__(self, graph: SocialGraph, *, compiled: bool = True) -> None:
        self.graph = graph
        self.compiled = compiled and isinstance(graph, SocialGraph)
        self._automata = AutomatonCache()

    def build(self) -> "OnlineDFSEvaluator":
        """No precomputation is needed; returns ``self`` for interface parity."""
        return self

    def statistics(self) -> Dict[str, float]:
        """Index statistics (trivially empty for the online evaluator)."""
        return {"index_entries": 0, "build_seconds": 0.0}

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Return whether ``target`` is reachable from ``source`` under ``expression``."""
        started = time.perf_counter()
        result = EvaluationResult(reachable=False, backend=self.name)
        if self.compiled:
            outcome = self._compiled_search(source, expression, result, stop_at=target,
                                            collect_witness=collect_witness)
            result.reachable = outcome.contains(target)
            if collect_witness and result.reachable:
                result.witness = outcome.witness(target)
        else:
            accepted = self._search(source, expression, result, stop_at=target,
                                    collect_witness=collect_witness)
            result.reachable = target in accepted
            if collect_witness and result.reachable:
                result.witness = accepted[target]
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def find_targets(self, source: Hashable, expression: PathExpression) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        result = EvaluationResult(reachable=False, backend=self.name)
        if self.compiled:
            outcome = self._compiled_search(source, expression, result, stop_at=None,
                                            collect_witness=False)
            return outcome.users()
        return set(self._search(source, expression, result, stop_at=None, collect_witness=False))

    def sweep_targets_many(self, sources, expression: PathExpression, *,
                           direction: str = "auto"):
        """Batched :meth:`find_targets`: one automaton, one shared owner sweep.

        Same multi-source owner-bitset sweep as the BFS evaluator (audience
        materialization has no exploration order); ``direction`` pins the
        planner.  Returns ``({owner: audience}, executed SweepPlan or None)``.
        """
        if self.compiled:
            return self._compiled_sweep_many(
                list(sources), expression, direction=direction
            )
        return (
            {source: self.find_targets(source, expression) for source in sources},
            None,
        )

    # find_targets_many (the audiences-only legacy wrapper) is inherited
    # from SweepPlanSideChannel, shared by all four backends.

    # ------------------------------------------------- legacy (dict) search

    def _search(
        self,
        source: Hashable,
        expression: PathExpression,
        result: EvaluationResult,
        *,
        stop_at: Optional[Hashable],
        collect_witness: bool,
    ) -> Dict[Hashable, Optional[Path]]:
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if stop_at is not None and not self.graph.has_user(stop_at):
            raise NodeNotFoundError(stop_at)

        automaton = StepAutomaton(expression)
        accepted: Dict[Hashable, Optional[Path]] = {}
        visited: Set[_SearchNode] = set()
        # Raw dict reads in the hot loop (no per-node AttributeMap views).
        attributes_of = raw_attributes_getter(self.graph)
        # Each stack entry carries the partial witness (tuple of traversals) so
        # no parent map is needed; tuples share structure, keeping this cheap.
        stack: List[Tuple[Hashable, AutomatonState, Tuple[Traversal, ...]]] = []

        def push(user: Hashable, state: AutomatonState, trail: Tuple[Traversal, ...]) -> None:
            node = (user, state)
            if node in visited:
                return
            visited.add(node)
            stack.append((user, state, trail))
            result.count("states_visited")
            if automaton.is_accepting(state) and user not in accepted:
                accepted[user] = Path(source, trail) if collect_witness else None

        for state in automaton.closure(automaton.start_state, attributes_of(source)):
            push(source, state, ())

        while stack:
            if stop_at is not None and stop_at in accepted:
                break
            user, state, trail = stack.pop()
            if not automaton.can_traverse_more(state):
                continue
            label, allow_forward, allow_backward = automaton.edge_requirements(state)
            next_state = automaton.after_edge(state)
            if allow_forward:
                for rel in self.graph.out_relationships(user, label):
                    result.count("edges_expanded")
                    extended = trail + (Traversal(rel, forward=True),) if collect_witness else ()
                    for closed in automaton.closure(next_state, attributes_of(rel.target)):
                        push(rel.target, closed, extended)
            if allow_backward:
                for rel in self.graph.in_relationships(user, label):
                    result.count("edges_expanded")
                    extended = trail + (Traversal(rel, forward=False),) if collect_witness else ()
                    for closed in automaton.closure(next_state, attributes_of(rel.source)):
                        push(rel.source, closed, extended)
        return accepted
