"""The unified reachability engine: backend registry and facade.

Four interchangeable backends evaluate ordered label-constraint reachability
queries:

``bfs``
    Online constrained breadth-first search — no precomputation, the paper's
    straightforward baseline and the correctness oracle.
``dfs``
    Online constrained depth-first search (same semantics, different order).
``transitive-closure``
    Full transitive-closure precomputation used to prune, plus constrained
    search for the survivors — the paper's second baseline.
``cluster-index``
    The paper's proposal: line graph + SCC condensation + interval labeling +
    2-hop cover + cluster-based join index + post-processing.

:func:`create_evaluator` builds any of them by name;
:class:`ReachabilityEngine` wraps one backend behind a stable facade used by
the access-control engine, the examples and the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Union

from repro.exceptions import UnknownBackendError
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.result import EvaluationResult
from repro.reachability.transitive_closure import TransitiveClosureEvaluator

__all__ = [
    "BACKENDS",
    "available_backends",
    "create_evaluator",
    "ReachabilityEngine",
]

EvaluatorFactory = Callable[..., object]

BACKENDS: Dict[str, EvaluatorFactory] = {
    "bfs": OnlineBFSEvaluator,
    "dfs": OnlineDFSEvaluator,
    "transitive-closure": TransitiveClosureEvaluator,
    "cluster-index": ClusterIndexEvaluator,
}


def available_backends() -> List[str]:
    """Return the registered backend names, sorted."""
    return sorted(BACKENDS)


def create_evaluator(backend: str, graph: SocialGraph, *, build: bool = True, **options):
    """Instantiate (and by default build) the named backend over ``graph``.

    ``options`` are forwarded to the backend constructor (e.g.
    ``include_reverse=False`` for the cluster index).
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise UnknownBackendError(backend, available_backends()) from None
    evaluator = factory(graph, **options)
    if build:
        evaluator.build()
    return evaluator


class ReachabilityEngine:
    """Facade over one evaluation backend, with convenience query forms."""

    def __init__(
        self,
        graph: SocialGraph,
        backend: Union[str, object] = "bfs",
        *,
        build: bool = True,
        **options,
    ) -> None:
        self.graph = graph
        if isinstance(backend, str):
            self._evaluator = create_evaluator(backend, graph, build=build, **options)
        else:
            self._evaluator = backend
        self.backend_name = getattr(self._evaluator, "name", type(self._evaluator).__name__)

    @property
    def evaluator(self):
        """The underlying backend instance."""
        return self._evaluator

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: Union[str, PathExpression],
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Evaluate one query; ``expression`` may be a string or a parsed expression."""
        if isinstance(expression, str):
            expression = PathExpression.parse(expression)
        return self._evaluator.evaluate(
            source, target, expression, collect_witness=collect_witness
        )

    def is_reachable(
        self,
        source: Hashable,
        target: Hashable,
        expression: Union[str, PathExpression],
    ) -> bool:
        """Boolean-only form of :meth:`evaluate`."""
        return self.evaluate(source, target, expression, collect_witness=False).reachable

    def find_targets(
        self,
        source: Hashable,
        expression: Union[str, PathExpression],
    ) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        if isinstance(expression, str):
            expression = PathExpression.parse(expression)
        return self._evaluator.find_targets(source, expression)

    def statistics(self) -> Dict[str, float]:
        """Return the backend's index statistics (size, build time...)."""
        return dict(self._evaluator.statistics())

    def __repr__(self) -> str:
        return f"<ReachabilityEngine backend={self.backend_name!r} over {self.graph!r}>"
