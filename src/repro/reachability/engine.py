"""The unified reachability engine: backend registry and facade.

Four interchangeable backends evaluate ordered label-constraint reachability
queries:

``bfs``
    Online constrained breadth-first search — no precomputation, the paper's
    straightforward baseline and the correctness oracle.
``dfs``
    Online constrained depth-first search (same semantics, different order).
``transitive-closure``
    Full transitive-closure precomputation used to prune, plus constrained
    search for the survivors — the paper's second baseline.
``cluster-index``
    The paper's proposal: line graph + SCC condensation + interval labeling +
    2-hop cover + cluster-based join index + post-processing.

:func:`create_evaluator` builds any of them by name;
:class:`ReachabilityEngine` wraps one backend behind a stable facade used by
the access-control engine, the examples and the benchmark harness.

Cache-invalidation contract
---------------------------
The facade's memos are correct because every layer observes one rule: a
derived result is served only while ``graph.epoch`` — bumped by *every*
committed mutation, including writes through the live mapping returned by
``graph.attributes(u)`` — still equals the epoch the result was computed at.

* The **decision memo** (``(source, target, expression text, witness?)``)
  and the **target-set memo** (``(source, expression text)``) are cleared
  wholesale the first time a call observes a moved epoch; entries are LRU
  with capacity ``cache_size``.  ``cache_size=0`` disables both memos (no
  entries, no hit/miss accounting) — benchmarks use it to measure raw
  backend cost.  The **parse cache** (expression text to parsed
  :class:`~repro.policy.path_expression.PathExpression`) is pure and never
  invalidated.
* Under the facade, ``compile_graph`` keeps the CSR snapshot fresh the same
  way — since the delta-maintenance layer (see :mod:`repro.graph.compiled`)
  it absorbs journal-covered mutation bursts in O(|delta|) instead of
  rebuilding, without changing anything observable here.
* :meth:`ReachabilityEngine.sweep_targets_many` serves warm owners from
  the target-set memo and sweeps only the misses.  ``direction=`` pins the
  audience sweep planner (``"auto"`` | ``"forward"`` | ``"reverse"`` |
  ``"batched"``) and is validated even when everything is served from
  cache; the executed
  :class:`~repro.reachability.compiled_search.SweepPlan` is **returned
  with the audiences** (``None`` when nothing was swept).  The legacy
  :attr:`ReachabilityEngine.last_sweep_plan` attribute survives as a
  deprecated read-property mirroring the most recent
  :meth:`find_targets_many` call.
"""

from __future__ import annotations

import dataclasses
import inspect
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro._deprecation import warn_deprecated
from repro.exceptions import UnknownBackendError
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.compiled_search import SWEEP_DIRECTIONS, SweepPlan
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.result import EvaluationResult
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.reliability.guard import active_guard

__all__ = [
    "BACKENDS",
    "available_backends",
    "create_evaluator",
    "ReachabilityEngine",
]

EvaluatorFactory = Callable[..., object]

BACKENDS: Dict[str, EvaluatorFactory] = {
    "bfs": OnlineBFSEvaluator,
    "dfs": OnlineDFSEvaluator,
    "transitive-closure": TransitiveClosureEvaluator,
    "cluster-index": ClusterIndexEvaluator,
}


def available_backends() -> List[str]:
    """Return the registered backend names, sorted."""
    return sorted(BACKENDS)


def create_evaluator(backend: str, graph: SocialGraph, *, build: bool = True, **options):
    """Instantiate (and by default build) the named backend over ``graph``.

    ``options`` are forwarded to the backend constructor (e.g.
    ``include_reverse=False`` for the cluster index).
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise UnknownBackendError(backend, available_backends()) from None
    evaluator = factory(graph, **options)
    if build:
        evaluator.build()
    return evaluator


class ReachabilityEngine:
    """Facade over one evaluation backend, with convenience query forms.

    Besides dispatching to the backend, the facade memoizes at two levels:

    * a **parse cache** mapping expression text to its parsed
      :class:`PathExpression` (the policy engine re-submits the same textual
      conditions for every access request);
    * an **LRU decision memo** keyed by ``(source, target, expression,
      collect_witness)`` and stamped with the graph's mutation epoch — any
      committed graph mutation invalidates the whole memo, so cached
      decisions are never stale.  :meth:`~repro.policy.engine.
      AccessControlEngine.check_access` rides on this cache directly; set
      ``cache_size=0`` to disable it (e.g. for benchmarking raw backends).
    """

    def __init__(
        self,
        graph: SocialGraph,
        backend: Union[str, object] = "bfs",
        *,
        build: bool = True,
        cache_size: int = 4096,
        **options,
    ) -> None:
        self.graph = graph
        if isinstance(backend, str):
            self._evaluator = create_evaluator(backend, graph, build=build, **options)
        else:
            self._evaluator = backend
        self.backend_name = getattr(self._evaluator, "name", type(self._evaluator).__name__)
        self._cache_size = max(0, cache_size)
        self._caching = self._cache_size > 0 and hasattr(graph, "epoch")
        self._cache_epoch: Optional[int] = None
        self._parse_cache: Dict[str, PathExpression] = {}
        self._decision_cache: "OrderedDict[Tuple, EvaluationResult]" = OrderedDict()
        self._targets_cache: "OrderedDict[Tuple, FrozenSet[Hashable]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # Executed plan of the most recent batched audience sweep (``None``
        # before the first sweep, or when every owner was served from cache).
        # Exposed only through the deprecated ``last_sweep_plan`` property —
        # plans travel with results since PR 5.
        self._last_sweep_plan: Optional[SweepPlan] = None
        batched = getattr(self._evaluator, "find_targets_many", None)
        try:
            self._batched_takes_direction = batched is not None and (
                "direction" in inspect.signature(batched).parameters
            )
        except (TypeError, ValueError):  # builtins / exotic callables
            self._batched_takes_direction = False

    @property
    def evaluator(self):
        """The underlying backend instance."""
        return self._evaluator

    @property
    def last_sweep_plan(self) -> Optional[SweepPlan]:
        """Deprecated side-channel: the most recent sweep's executed plan.

        ``None`` whenever the most recent batched call swept nothing (fully
        warm memo, or no batched call yet).  Prefer
        :meth:`sweep_targets_many`, which returns the plan *with* the
        audiences it describes — the attribute only ever reflects the latest
        call, so interleaved or memo-warm calls can observe another call's
        plan (the race this API closes).
        """
        warn_deprecated(
            "ReachabilityEngine.last_sweep_plan is a deprecated side-channel; "
            "use sweep_targets_many() (or GraphService.audience) which return "
            "the executed plan with the result"
        )
        return self._last_sweep_plan

    @last_sweep_plan.setter
    def last_sweep_plan(self, plan: Optional[SweepPlan]) -> None:
        self._last_sweep_plan = plan

    # -------------------------------------------------------------- caching

    def _parse(self, expression: Union[str, PathExpression]) -> PathExpression:
        if not isinstance(expression, str):
            return expression
        parsed = self._parse_cache.get(expression)
        if parsed is None:
            parsed = PathExpression.parse(expression)
            self._parse_cache[expression] = parsed
        return parsed

    def _cache_ready(self) -> bool:
        """Roll the memo forward to the current graph epoch; False disables it."""
        if not self._caching:
            return False
        epoch = self.graph.epoch
        if epoch != self._cache_epoch:
            self._decision_cache.clear()
            self._targets_cache.clear()
            self._cache_epoch = epoch
        return True

    def _cache_put(self, cache: OrderedDict, key: Tuple, value) -> None:
        # A query that blew its guard budget produced an under-approximated
        # answer — correct to degrade with, poison if memoized: the memo
        # outlives the guard scope and would serve the truncated result to
        # later unguarded queries at the same epoch.
        guard = active_guard()
        if guard is not None and guard.tripped:
            return
        cache[key] = value
        if len(cache) > self._cache_size:
            cache.popitem(last=False)

    def cache_info(self) -> Dict[str, int]:
        """Return decision-memo occupancy and hit/miss counts."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "decisions": len(self._decision_cache),
            "target_sets": len(self._targets_cache),
            "max_size": self._cache_size,
        }

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: Union[str, PathExpression],
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Evaluate one query; ``expression`` may be a string or a parsed expression."""
        expression = self._parse(expression)
        if not self._cache_ready():
            return self._evaluator.evaluate(
                source, target, expression, collect_witness=collect_witness
            )
        key = (source, target, expression.to_text(), collect_witness)
        cached = self._decision_cache.get(key)
        if cached is not None:
            self._decision_cache.move_to_end(key)
            self.cache_hits += 1
            # Hand out a copy so callers mutating counters cannot poison the memo.
            return dataclasses.replace(cached, counters=dict(cached.counters))
        self.cache_misses += 1
        result = self._evaluator.evaluate(
            source, target, expression, collect_witness=collect_witness
        )
        self._cache_put(self._decision_cache, key,
                        dataclasses.replace(result, counters=dict(result.counters)))
        return result

    def is_reachable(
        self,
        source: Hashable,
        target: Hashable,
        expression: Union[str, PathExpression],
    ) -> bool:
        """Boolean-only form of :meth:`evaluate`."""
        return self.evaluate(source, target, expression, collect_witness=False).reachable

    def find_targets(
        self,
        source: Hashable,
        expression: Union[str, PathExpression],
    ) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        expression = self._parse(expression)
        if not self._cache_ready():
            return self._evaluator.find_targets(source, expression)
        key = (source, expression.to_text())
        cached = self._targets_cache.get(key)
        if cached is not None:
            self._targets_cache.move_to_end(key)
            self.cache_hits += 1
            return set(cached)
        self.cache_misses += 1
        targets = self._evaluator.find_targets(source, expression)
        self._cache_put(self._targets_cache, key, frozenset(targets))
        return targets

    def sweep_targets_many(
        self,
        sources: Iterable[Hashable],
        expression: Union[str, PathExpression],
        *,
        direction: str = "auto",
    ) -> Tuple[Dict[Hashable, Set[Hashable]], Optional[SweepPlan]]:
        """Materialize audiences for many owners at once, with the plan run.

        The batched form of :meth:`find_targets`: backends exposing
        ``sweep_targets_many`` (all four do over a :class:`SocialGraph`)
        compile their per-expression machinery once and run a single
        multi-source owner-bitset sweep shared by all owners; other
        evaluators fall back to a per-owner loop.  The epoch-stamped
        target-set memo is consulted per owner first, so a warm cache serves
        the cached owners from the memo and sweeps only the misses — as one
        mask.  ``direction`` pins the sweep planner (``"forward"``,
        ``"reverse"`` or the per-owner ``"batched"`` baseline; default
        ``"auto"`` lets the planner decide).

        Returns ``(audiences, plan)``.  The executed
        :class:`~repro.reachability.compiled_search.SweepPlan` belongs to
        *this* call — ``None`` when nothing was swept (every owner came from
        the memo, or the backend plans nothing).  Because the plan is part
        of the return value, a later (possibly fully-warm) call can never
        make an earlier result's plan unreadable, which the deprecated
        ``last_sweep_plan`` attribute could not guarantee.
        """
        if direction not in SWEEP_DIRECTIONS:
            # Validate up front: on a warm cache nothing is swept and a
            # typo'd pinned direction would otherwise be silently accepted.
            raise ValueError(
                f"unknown sweep direction {direction!r}; expected one of {SWEEP_DIRECTIONS}"
            )
        expression = self._parse(expression)
        sources = list(dict.fromkeys(sources))
        if not self._cache_ready():
            return self._dispatch_targets_many(sources, expression, direction)
        text = expression.to_text()
        audiences: Dict[Hashable, Set[Hashable]] = {}
        missing: List[Hashable] = []
        for source in sources:
            cached = self._targets_cache.get((source, text))
            if cached is not None:
                self._targets_cache.move_to_end((source, text))
                self.cache_hits += 1
                audiences[source] = set(cached)
            else:
                missing.append(source)
        plan: Optional[SweepPlan] = None
        if missing:
            self.cache_misses += len(missing)
            computed, plan = self._dispatch_targets_many(missing, expression, direction)
            for source, targets in computed.items():
                self._cache_put(self._targets_cache, (source, text), frozenset(targets))
                audiences[source] = targets
        return audiences, plan

    def find_targets_many(
        self,
        sources: Iterable[Hashable],
        expression: Union[str, PathExpression],
        *,
        direction: str = "auto",
    ) -> Dict[Hashable, Set[Hashable]]:
        """Audiences-only form of :meth:`sweep_targets_many`.

        Kept for callers that do not need the executed plan; the plan is
        still mirrored on the deprecated ``last_sweep_plan`` side-channel.
        """
        self._last_sweep_plan = None
        audiences, plan = self.sweep_targets_many(
            sources, expression, direction=direction
        )
        self._last_sweep_plan = plan
        return audiences

    def _dispatch_targets_many(
        self,
        sources: List[Hashable],
        expression: PathExpression,
        direction: str,
    ) -> Tuple[Dict[Hashable, Set[Hashable]], Optional[SweepPlan]]:
        sweep = getattr(self._evaluator, "sweep_targets_many", None)
        if sweep is not None:
            return sweep(sources, expression, direction=direction)
        batched = getattr(self._evaluator, "find_targets_many", None)
        if batched is None:
            return (
                {
                    source: self._evaluator.find_targets(source, expression)
                    for source in sources
                },
                None,
            )
        if self._batched_takes_direction:
            audiences = batched(sources, expression, direction=direction)
        else:  # duck-typed legacy evaluator: no planner to steer
            audiences = batched(sources, expression)
        # Legacy duck-typed evaluator: the side-channel is all it offers.
        return audiences, getattr(self._evaluator, "last_sweep_plan", None)

    def statistics(self) -> Dict[str, float]:
        """Return the backend's index statistics (size, build time...)."""
        stats = dict(self._evaluator.statistics())
        stats["decision_cache_hits"] = float(self.cache_hits)
        stats["decision_cache_misses"] = float(self.cache_misses)
        return stats

    def __repr__(self) -> str:
        return f"<ReachabilityEngine backend={self.backend_name!r} over {self.graph!r}>"
