"""Dense-integer cores of the cluster-index stack.

The Section-3 pipeline (line graph -> SCC condensation -> 2-hop cover ->
join index) was originally written over string line-vertex ids and
dict-of-sets adjacency.  This module hosts the interned counterparts: every
structure is an ``array('l')`` / ``bytearray`` indexed by dense ints derived
from a :class:`~repro.graph.compiled.CompiledGraph` snapshot, and string ids
are decoded only at the API boundary (witness paths, base tables, figures).

Three layers live here:

* **Dense graph cores** — :func:`tarjan_scc_dense` (iterative Tarjan over a
  CSR adjacency, optionally indirected through a ``head_of`` array so the
  line graph's adjacency never needs materializing) and
  :func:`two_hop_cover_dense` (the greedy MaxCardinality-style cover over a
  DAG in CSR form, with integer bitsets).  The generic, hashable-keyed APIs
  in :mod:`repro.reachability.scc` and :mod:`repro.reachability.twohop`
  intern their inputs and delegate to these cores.
* **:class:`InternedLineIndex`** — the compiled form of the whole cluster
  index for one graph snapshot: per-line-vertex label/direction/endpoint
  arrays, an implicit CSR line adjacency (vertices grouped by start node),
  the SCC condensation of the line graph and per-component 2-hop label sets.
  ``a -[r]-> a`` self-loops are fully supported: a self-loop line vertex may
  succeed itself, so queries that traverse the same self-loop edge twice
  agree with the BFS oracle (the seed's string pipeline excluded
  self-succession and silently missed those tuples).
* **:func:`interned_line_index`** — the per-snapshot cache: the index is
  derived from ``compile_graph(graph)`` and stored on the snapshot keyed by
  orientation, so it is rebuilt exactly when the graph's mutation epoch
  moves (same staleness contract as the snapshot itself).
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReachabilityError
from repro.graph.compiled import (
    CompiledGraph,
    build_csr,
    compile_graph,
    register_derived_policy,
)
from repro.graph.paths import Traversal
from repro.graph.social_graph import SocialGraph

__all__ = [
    "tarjan_scc_dense",
    "two_hop_cover_dense",
    "InternedLineIndex",
    "interned_line_index",
]

FORWARD_BYTE = 1
REVERSE_BYTE = 0

# The line index is purely structural (labels, directions, endpoints — no
# attribute state), so delta patches that only touch attributes keep it;
# edge or user deltas drop the cached entries and the next
# interned_line_index() call rebuilds just the orientation it is asked for.
register_derived_policy("line-index", "structural")


def tarjan_scc_dense(
    count: int,
    offsets: array,
    targets: array,
    head_of: Optional[Sequence[int]] = None,
) -> Tuple[array, int]:
    """Iterative Tarjan over a dense CSR adjacency.

    Successors of node ``v`` are ``targets[offsets[h]:offsets[h + 1]]`` where
    ``h = v`` by default, or ``h = head_of[v]`` when an indirection array is
    given — the line graph uses that to walk its adjacency (every successor
    of a line vertex starts at the vertex's end node) without materializing
    one successor list per vertex.

    Returns ``(comp_of, comp_count)`` with components numbered in emission
    order: an edge between different components always points from a higher
    component id to a lower one, so descending id order is topological.
    """
    indices = array("l", [-1]) * count
    lowlink = array("l", [0]) * count
    comp_of = array("l", [-1]) * count
    on_stack = bytearray(count)
    stack: List[int] = []
    comp_count = 0
    counter = 0
    for root in range(count):
        if indices[root] != -1:
            continue
        indices[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        head = root if head_of is None else head_of[root]
        # Work frames are [node, next edge cursor, edge end] lists so the
        # cursor survives re-entry after descending into a successor.
        work: List[List[int]] = [[root, offsets[head], offsets[head + 1]]]
        while work:
            frame = work[-1]
            node = frame[0]
            cursor = frame[1]
            end = frame[2]
            advanced = False
            while cursor < end:
                successor = targets[cursor]
                cursor += 1
                if indices[successor] == -1:
                    frame[1] = cursor
                    indices[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = 1
                    head = successor if head_of is None else head_of[successor]
                    work.append([successor, offsets[head], offsets[head + 1]])
                    advanced = True
                    break
                if on_stack[successor] and indices[successor] < lowlink[node]:
                    lowlink[node] = indices[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
    return comp_of, comp_count


def dag_reachability_bitsets(
    count: int,
    offsets: array,
    targets: array,
    topo: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Descendant and ancestor bitsets of a DAG, positions taken from ``topo``.

    Returns ``(position, descendants, ancestors)`` where bit ``position[v]``
    stands for node ``v`` in each bitset.
    """
    position = [0] * count
    for index, node in enumerate(topo):
        position[node] = index
    descendants = [0] * count
    for node in reversed(topo):
        bits = 0
        for cursor in range(offsets[node], offsets[node + 1]):
            successor = targets[cursor]
            bits |= descendants[successor] | (1 << position[successor])
        descendants[node] = bits
    ancestors = [0] * count
    for node in topo:
        bits = ancestors[node] | (1 << position[node])
        for cursor in range(offsets[node], offsets[node + 1]):
            ancestors[targets[cursor]] |= bits
    return position, descendants, ancestors


def two_hop_cover_dense(
    count: int,
    offsets: array,
    targets: array,
    topo: Sequence[int],
    candidates: Optional[Sequence[int]] = None,
    bitsets: Optional[Tuple[List[int], List[int], List[int]]] = None,
) -> Tuple[List[set], List[set], List[int]]:
    """Greedy 2-hop cover of a DAG in CSR form (Definition 5's contract).

    ``topo`` must be a topological order of the ``count`` nodes.  Candidate
    centers are offered in ``candidates`` order when given (the generic
    :class:`~repro.reachability.twohop.TwoHopCover` passes its
    string-tie-broken order for determinism-compatibility); by default they
    are ordered by decreasing (ancestors x descendants) coverage with int
    ties.  ``bitsets`` may hand in a precomputed
    :func:`dag_reachability_bitsets` result (callers that already ranked
    candidates with it avoid the second propagation).  Returns
    ``(lin, lout, centers)`` with per-node center sets such that ``u``
    reaches ``v`` iff ``u == v`` or ``lout[u] & lin[v]``.
    """
    if bitsets is None:
        bitsets = dag_reachability_bitsets(count, offsets, targets, topo)
    position, descendants, ancestors = bitsets
    node_at = [0] * count
    for node, pos in enumerate(position):
        node_at[pos] = node
    bit_of = [1 << pos for pos in position]

    if candidates is None:
        def coverage(node: int) -> int:
            above = bin(ancestors[node]).count("1") + 1
            below = bin(descendants[node]).count("1") + 1
            return above * below

        candidates = sorted(range(count), key=lambda node: (-coverage(node), node))

    # Remaining uncovered (u, v) pairs, as a bitset of targets per source.
    uncovered = list(descendants)
    lin: List[set] = [set() for _ in range(count)]
    lout: List[set] = [set() for _ in range(count)]
    centers: List[int] = []
    for center in candidates:
        reach_down = descendants[center] | bit_of[center]
        reach_up = ancestors[center] | bit_of[center]
        newly_covered = 0
        sources: List[int] = []
        remaining = reach_up
        while remaining:
            low_bit = remaining & -remaining
            remaining ^= low_bit
            source = node_at[low_bit.bit_length() - 1]
            needed = uncovered[source] & reach_down
            if needed:
                sources.append(source)
                newly_covered |= needed
        if not sources:
            continue
        centers.append(center)
        mask = ~newly_covered
        for source in sources:
            lout[source].add(center)
            uncovered[source] &= mask
        covered_targets = newly_covered
        while covered_targets:
            low_bit = covered_targets & -covered_targets
            covered_targets ^= low_bit
            lin[node_at[low_bit.bit_length() - 1]].add(center)
    leftover = sum(1 for node in range(count) if uncovered[node])
    if leftover:
        raise ReachabilityError(
            f"2-hop cover construction left {leftover} vertices uncovered"
        )
    return lin, lout, centers


class InternedLineIndex:
    """The cluster-index stack compiled onto one graph snapshot.

    Line vertices are dense ints; per-vertex facts live in parallel arrays
    and the line adjacency is implicit (``successors(v)`` = every vertex
    starting at ``ends[v]``, read straight out of the by-start CSR).  On top
    sit the SCC condensation of the line graph and the per-component 2-hop
    label sets that answer ``vertex u reaches vertex v`` in O(label size).
    """

    __slots__ = (
        "snapshot",
        "include_reverse",
        "count",
        "label_ids",
        "dirs",
        "starts",
        "ends",
        "start_offsets",
        "start_vertices",
        "comp_of",
        "comp_count",
        "comp_sizes",
        "comp_lin",
        "comp_lout",
        "centers",
        "build_seconds",
        "_rep_names",
    )

    def __init__(self, snapshot: CompiledGraph, *, include_reverse: bool = True) -> None:
        started = time.perf_counter()
        self.snapshot = snapshot
        self.include_reverse = include_reverse
        graph = snapshot.graph
        node_index = snapshot.node_index
        label_index = snapshot.label_index

        starts: List[int] = []
        ends: List[int] = []
        label_ids: List[int] = []
        dirs = bytearray()
        # Enumeration follows graph.relationships() (forward vertex first,
        # then its reverse twin) so vertex ints line up with the insertion
        # order of the decoded LineGraph view.
        for rel in graph.relationships():
            source = node_index[rel.source]
            target = node_index[rel.target]
            label_id = label_index[rel.label]
            starts.append(source)
            ends.append(target)
            label_ids.append(label_id)
            dirs.append(FORWARD_BYTE)
            if include_reverse:
                starts.append(target)
                ends.append(source)
                label_ids.append(label_id)
                dirs.append(REVERSE_BYTE)
        count = len(starts)
        self.count = count
        self.starts = array("l", starts)
        self.ends = array("l", ends)
        self.label_ids = array("l", label_ids)
        self.dirs = dirs

        # By-start CSR over graph nodes: start_vertices[start_offsets[u]:
        # start_offsets[u + 1]] are the line vertices leaving user u, in
        # vertex order (counting sort is stable).  The line adjacency is this
        # CSR read through ``ends``: succ(v) = vertices starting at ends[v],
        # *including v itself* when v is a self-loop vertex — the tuple
        # <v, v> is a real one-path answer there.
        node_count = snapshot.number_of_nodes()
        self.start_offsets, self.start_vertices = build_csr(
            list(zip(starts, range(count))), node_count
        )

        self.comp_of, self.comp_count = tarjan_scc_dense(
            count, self.start_offsets, self.start_vertices, head_of=self.ends
        )

        comp_sizes = [0] * self.comp_count
        for vertex in range(count):
            comp_sizes[self.comp_of[vertex]] += 1
        self.comp_sizes = comp_sizes

        # Condensation DAG, deduplicated through packed (source, target) ints.
        comp_count = self.comp_count
        dag_edges = set()
        comp_of = self.comp_of
        start_offsets = self.start_offsets
        start_vertices = self.start_vertices
        for vertex in range(count):
            source_comp = comp_of[vertex]
            head = ends[vertex]
            for cursor in range(start_offsets[head], start_offsets[head + 1]):
                target_comp = comp_of[start_vertices[cursor]]
                if target_comp != source_comp:
                    dag_edges.add(source_comp * comp_count + target_comp)
        dag_offsets, dag_targets = build_csr(
            [divmod(edge, comp_count) for edge in dag_edges], comp_count
        )

        # Tarjan numbers components in reverse topological order, so
        # descending ids are a topological order of the condensation.
        topo = range(comp_count - 1, -1, -1)
        lin, lout, centers = two_hop_cover_dense(comp_count, dag_offsets, dag_targets, topo)
        self.centers = centers
        # Members of a non-trivial SCC are mutually reachable; sharing the
        # component itself as a center keeps the Definition-5 contract valid
        # at the level of original line vertices (base tables intersect the
        # decoded label sets directly, without a same-component shortcut).
        self.comp_lin = [
            frozenset(lin[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lin[comp])
            for comp in range(comp_count)
        ]
        self.comp_lout = [
            frozenset(lout[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lout[comp])
            for comp in range(comp_count)
        ]
        self._rep_names: Optional[List[str]] = None
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------- queries

    def successors_slice(self, vertex: int) -> Tuple[int, int]:
        """Return the ``start_vertices`` range holding ``vertex``'s successors."""
        head = self.ends[vertex]
        return self.start_offsets[head], self.start_offsets[head + 1]

    def reaches(self, first: int, second: int) -> bool:
        """2-hop test: does line vertex ``first`` reach line vertex ``second``?"""
        if first == second:
            return True
        first_comp = self.comp_of[first]
        second_comp = self.comp_of[second]
        if first_comp == second_comp:
            return True
        return not self.comp_lout[first_comp].isdisjoint(self.comp_lin[second_comp])

    def number_of_line_edges(self) -> int:
        """Return the (implicit) line-graph edge count."""
        start_offsets = self.start_offsets
        ends = self.ends
        return sum(
            start_offsets[ends[vertex] + 1] - start_offsets[ends[vertex]]
            for vertex in range(self.count)
        )

    def labeling_size(self) -> int:
        """Return ``sum |Lin(v)| + |Lout(v)|`` over line vertices (Definition 5)."""
        comp_of = self.comp_of
        comp_lin = self.comp_lin
        comp_lout = self.comp_lout
        return sum(
            len(comp_lin[comp_of[vertex]]) + len(comp_lout[comp_of[vertex]])
            for vertex in range(self.count)
        )

    # ------------------------------------------------------------- decoding

    def vertex_id(self, vertex: int) -> str:
        """Decode the canonical string id (matches ``LineGraph.vertex_id_for``)."""
        label = self.snapshot.labels[self.label_ids[vertex]]
        start = self.snapshot.node_ids[self.starts[vertex]]
        end = self.snapshot.node_ids[self.ends[vertex]]
        if self.dirs[vertex] == FORWARD_BYTE:
            return f"{label}:{start}->{end}"
        return f"{label}~:{end}->{start}"

    def traversal(self, vertex: int) -> Traversal:
        """Decode one line vertex into a witness :class:`Traversal`."""
        snapshot = self.snapshot
        label_id = self.label_ids[vertex]
        if self.dirs[vertex] == FORWARD_BYTE:
            rel = snapshot.relationship(self.starts[vertex], self.ends[vertex], label_id)
            return Traversal(rel, forward=True)
        rel = snapshot.relationship(self.ends[vertex], self.starts[vertex], label_id)
        return Traversal(rel, forward=False)

    def representative_names(self) -> List[str]:
        """Per-component representative vertex ids (smallest by string order).

        This is the only place the index decodes strings during a build, and
        it runs lazily — the join index needs the names for its base tables
        and W-table; pure evaluation never does.
        """
        if self._rep_names is None:
            reps: List[Optional[str]] = [None] * self.comp_count
            for vertex in range(self.count):
                vertex_id = self.vertex_id(vertex)
                comp = self.comp_of[vertex]
                current = reps[comp]
                if current is None or vertex_id < current:
                    reps[comp] = vertex_id
            self._rep_names = [name for name in reps if name is not None]
        return self._rep_names

    def statistics(self) -> Dict[str, float]:
        """Return build-time and size metrics for the index benchmarks."""
        return {
            "build_seconds": self.build_seconds,
            "index_entries": float(self.labeling_size()),
            "centers": float(len(self.centers)),
            "components": float(self.comp_count),
            "line_vertices": float(self.count),
            "line_edges": float(self.number_of_line_edges()),
        }

    def __repr__(self) -> str:
        mode = "oriented" if self.include_reverse else "forward-only"
        return (
            f"<InternedLineIndex ({mode}): {self.count} line vertices, "
            f"{self.comp_count} components, epoch={self.snapshot.epoch}>"
        )


def interned_line_index(
    graph: SocialGraph,
    *,
    include_reverse: bool = True,
    refresh: bool = False,
) -> InternedLineIndex:
    """Return the (lazily rebuilt) interned cluster index of ``graph``.

    Cached on the compiled snapshot keyed by orientation, so the index
    follows the snapshot's epoch-based staleness contract: one build per
    burst of mutations, shared by every consumer of the same snapshot.
    ``refresh`` forces a fresh construction even on a warm cache (and seeds
    the cache with the result) — explicit ``build()`` calls use it so that
    construction-time measurements never time a cache hit.
    """
    snapshot = compile_graph(graph)
    key = ("line-index", include_reverse)
    index = None if refresh else snapshot.derived.get(key)
    if index is None:
        index = InternedLineIndex(snapshot, include_reverse=include_reverse)
        snapshot.derived[key] = index
    return index
