"""Dense-integer cores of the cluster-index stack.

The Section-3 pipeline (line graph -> SCC condensation -> 2-hop cover ->
join index) was originally written over string line-vertex ids and
dict-of-sets adjacency.  This module hosts the interned counterparts: every
structure is an ``array('l')`` / ``bytearray`` indexed by dense ints derived
from a :class:`~repro.graph.compiled.CompiledGraph` snapshot, and string ids
are decoded only at the API boundary (witness paths, base tables, figures).

Three layers live here:

* **Dense graph cores** — :func:`tarjan_scc_dense` (iterative Tarjan over a
  CSR adjacency, optionally indirected through a ``head_of`` array so the
  line graph's adjacency never needs materializing) and
  :func:`two_hop_cover_dense` (the greedy MaxCardinality-style cover over a
  DAG in CSR form, with integer bitsets).  The generic, hashable-keyed APIs
  in :mod:`repro.reachability.scc` and :mod:`repro.reachability.twohop`
  intern their inputs and delegate to these cores.
* **:class:`InternedLineIndex`** — the compiled form of the whole cluster
  index for one graph snapshot: per-line-vertex label/direction/endpoint
  arrays, an implicit CSR line adjacency (vertices grouped by start node),
  the SCC condensation of the line graph and per-component 2-hop label sets.
  ``a -[r]-> a`` self-loops are fully supported: a self-loop line vertex may
  succeed itself, so queries that traverse the same self-loop edge twice
  agree with the BFS oracle (the seed's string pipeline excluded
  self-succession and silently missed those tuples).
* **:func:`interned_line_index`** — the per-snapshot cache: the index is
  derived from ``compile_graph(graph)`` and stored on the snapshot keyed by
  orientation, so it is rebuilt exactly when the graph's mutation epoch
  moves (same staleness contract as the snapshot itself).
"""

from __future__ import annotations

import time
from array import array
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ReachabilityError
from repro.graph.compiled import (
    CompiledGraph,
    build_csr,
    compile_graph,
    register_derived_policy,
)
from repro.graph.paths import Traversal
from repro.graph.social_graph import SocialGraph

__all__ = [
    "tarjan_scc_dense",
    "two_hop_cover_dense",
    "InternedLineIndex",
    "interned_line_index",
]

FORWARD_BYTE = 1
REVERSE_BYTE = 0

# The line index is purely structural (labels, directions, endpoints — no
# attribute state), so delta patches that only touch attributes keep it;
# edge or user deltas drop the cached entries and the next
# interned_line_index() call rebuilds just the orientation it is asked for.
register_derived_policy("line-index", "structural")

#: :meth:`InternedLineIndex.refresh_from_ops` falls back to a full rebuild
#: once the burst touches more than this fraction of the line vertices —
#: past that point re-running Tarjan over everything is cheaper than the
#: bookkeeping of the contracted pass.
REFRESH_REBUILD_FRACTION = 0.25


def tarjan_scc_dense(
    count: int,
    offsets: array,
    targets: array,
    head_of: Optional[Sequence[int]] = None,
) -> Tuple[array, int]:
    """Iterative Tarjan over a dense CSR adjacency.

    Successors of node ``v`` are ``targets[offsets[h]:offsets[h + 1]]`` where
    ``h = v`` by default, or ``h = head_of[v]`` when an indirection array is
    given — the line graph uses that to walk its adjacency (every successor
    of a line vertex starts at the vertex's end node) without materializing
    one successor list per vertex.

    Returns ``(comp_of, comp_count)`` with components numbered in emission
    order: an edge between different components always points from a higher
    component id to a lower one, so descending id order is topological.
    """
    indices = array("l", [-1]) * count
    lowlink = array("l", [0]) * count
    comp_of = array("l", [-1]) * count
    on_stack = bytearray(count)
    stack: List[int] = []
    comp_count = 0
    counter = 0
    for root in range(count):
        if indices[root] != -1:
            continue
        indices[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        head = root if head_of is None else head_of[root]
        # Work frames are [node, next edge cursor, edge end] lists so the
        # cursor survives re-entry after descending into a successor.
        work: List[List[int]] = [[root, offsets[head], offsets[head + 1]]]
        while work:
            frame = work[-1]
            node = frame[0]
            cursor = frame[1]
            end = frame[2]
            advanced = False
            while cursor < end:
                successor = targets[cursor]
                cursor += 1
                if indices[successor] == -1:
                    frame[1] = cursor
                    indices[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = 1
                    head = successor if head_of is None else head_of[successor]
                    work.append([successor, offsets[head], offsets[head + 1]])
                    advanced = True
                    break
                if on_stack[successor] and indices[successor] < lowlink[node]:
                    lowlink[node] = indices[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
    return comp_of, comp_count


def dag_reachability_bitsets(
    count: int,
    offsets: array,
    targets: array,
    topo: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Descendant and ancestor bitsets of a DAG, positions taken from ``topo``.

    Returns ``(position, descendants, ancestors)`` where bit ``position[v]``
    stands for node ``v`` in each bitset.
    """
    position = [0] * count
    for index, node in enumerate(topo):
        position[node] = index
    descendants = [0] * count
    for node in reversed(topo):
        bits = 0
        for cursor in range(offsets[node], offsets[node + 1]):
            successor = targets[cursor]
            bits |= descendants[successor] | (1 << position[successor])
        descendants[node] = bits
    ancestors = [0] * count
    for node in topo:
        bits = ancestors[node] | (1 << position[node])
        for cursor in range(offsets[node], offsets[node + 1]):
            ancestors[targets[cursor]] |= bits
    return position, descendants, ancestors


def two_hop_cover_dense(
    count: int,
    offsets: array,
    targets: array,
    topo: Sequence[int],
    candidates: Optional[Sequence[int]] = None,
    bitsets: Optional[Tuple[List[int], List[int], List[int]]] = None,
) -> Tuple[List[set], List[set], List[int]]:
    """Greedy 2-hop cover of a DAG in CSR form (Definition 5's contract).

    ``topo`` must be a topological order of the ``count`` nodes.  Candidate
    centers are offered in ``candidates`` order when given (the generic
    :class:`~repro.reachability.twohop.TwoHopCover` passes its
    string-tie-broken order for determinism-compatibility); by default they
    are ordered by decreasing (ancestors x descendants) coverage with int
    ties.  ``bitsets`` may hand in a precomputed
    :func:`dag_reachability_bitsets` result (callers that already ranked
    candidates with it avoid the second propagation).  Returns
    ``(lin, lout, centers)`` with per-node center sets such that ``u``
    reaches ``v`` iff ``u == v`` or ``lout[u] & lin[v]``.
    """
    if bitsets is None:
        bitsets = dag_reachability_bitsets(count, offsets, targets, topo)
    position, descendants, ancestors = bitsets
    node_at = [0] * count
    for node, pos in enumerate(position):
        node_at[pos] = node
    bit_of = [1 << pos for pos in position]

    if candidates is None:
        def coverage(node: int) -> int:
            above = bin(ancestors[node]).count("1") + 1
            below = bin(descendants[node]).count("1") + 1
            return above * below

        candidates = sorted(range(count), key=lambda node: (-coverage(node), node))

    # Remaining uncovered (u, v) pairs, as a bitset of targets per source.
    uncovered = list(descendants)
    lin: List[set] = [set() for _ in range(count)]
    lout: List[set] = [set() for _ in range(count)]
    centers: List[int] = []
    for center in candidates:
        reach_down = descendants[center] | bit_of[center]
        reach_up = ancestors[center] | bit_of[center]
        newly_covered = 0
        sources: List[int] = []
        remaining = reach_up
        while remaining:
            low_bit = remaining & -remaining
            remaining ^= low_bit
            source = node_at[low_bit.bit_length() - 1]
            needed = uncovered[source] & reach_down
            if needed:
                sources.append(source)
                newly_covered |= needed
        if not sources:
            continue
        centers.append(center)
        mask = ~newly_covered
        for source in sources:
            lout[source].add(center)
            uncovered[source] &= mask
        covered_targets = newly_covered
        while covered_targets:
            low_bit = covered_targets & -covered_targets
            covered_targets ^= low_bit
            lin[node_at[low_bit.bit_length() - 1]].add(center)
    leftover = sum(1 for node in range(count) if uncovered[node])
    if leftover:
        raise ReachabilityError(
            f"2-hop cover construction left {leftover} vertices uncovered"
        )
    return lin, lout, centers


class InternedLineIndex:
    """The cluster-index stack compiled onto one graph snapshot.

    Line vertices are dense ints; per-vertex facts live in parallel arrays
    and the line adjacency is implicit (``successors(v)`` = every vertex
    starting at ``ends[v]``, read straight out of the by-start CSR).  On top
    sit the SCC condensation of the line graph and the per-component 2-hop
    label sets that answer ``vertex u reaches vertex v`` in O(label size).
    """

    __slots__ = (
        "snapshot",
        "include_reverse",
        "count",
        "label_ids",
        "dirs",
        "starts",
        "ends",
        "start_offsets",
        "start_vertices",
        "comp_of",
        "comp_count",
        "comp_sizes",
        "comp_lin",
        "comp_lout",
        "centers",
        "build_seconds",
        "refresh_seconds",
        "refreshes",
        "_dag_edges",
        "_dead_vertices",
        "_vertex_of",
        "_rep_names",
    )

    def __init__(self, snapshot: CompiledGraph, *, include_reverse: bool = True) -> None:
        started = time.perf_counter()
        self.snapshot = snapshot
        self.include_reverse = include_reverse
        graph = snapshot.graph
        node_index = snapshot.node_index
        label_index = snapshot.label_index

        starts: List[int] = []
        ends: List[int] = []
        label_ids: List[int] = []
        dirs = bytearray()
        # Enumeration follows graph.relationships() (forward vertex first,
        # then its reverse twin) so vertex ints line up with the insertion
        # order of the decoded LineGraph view.
        for rel in graph.relationships():
            source = node_index[rel.source]
            target = node_index[rel.target]
            label_id = label_index[rel.label]
            starts.append(source)
            ends.append(target)
            label_ids.append(label_id)
            dirs.append(FORWARD_BYTE)
            if include_reverse:
                starts.append(target)
                ends.append(source)
                label_ids.append(label_id)
                dirs.append(REVERSE_BYTE)
        count = len(starts)
        self.count = count
        self.starts = array("l", starts)
        self.ends = array("l", ends)
        self.label_ids = array("l", label_ids)
        self.dirs = dirs

        # By-start CSR over graph nodes: start_vertices[start_offsets[u]:
        # start_offsets[u + 1]] are the line vertices leaving user u, in
        # vertex order (counting sort is stable).  The line adjacency is this
        # CSR read through ``ends``: succ(v) = vertices starting at ends[v],
        # *including v itself* when v is a self-loop vertex — the tuple
        # <v, v> is a real one-path answer there.
        node_count = snapshot.number_of_nodes()
        self.start_offsets, self.start_vertices = build_csr(
            list(zip(starts, range(count))), node_count
        )

        self.comp_of, self.comp_count = tarjan_scc_dense(
            count, self.start_offsets, self.start_vertices, head_of=self.ends
        )

        comp_sizes = [0] * self.comp_count
        for vertex in range(count):
            comp_sizes[self.comp_of[vertex]] += 1
        self.comp_sizes = comp_sizes

        # Condensation DAG, deduplicated through packed (source, target) ints.
        comp_count = self.comp_count
        dag_edges = set()
        comp_of = self.comp_of
        start_offsets = self.start_offsets
        start_vertices = self.start_vertices
        for vertex in range(count):
            source_comp = comp_of[vertex]
            head = ends[vertex]
            for cursor in range(start_offsets[head], start_offsets[head + 1]):
                target_comp = comp_of[start_vertices[cursor]]
                if target_comp != source_comp:
                    dag_edges.add(source_comp * comp_count + target_comp)
        # Retained for :meth:`refresh_from_ops`: DAG edges between components
        # untouched by a burst survive verbatim (a line edge between intact
        # components can only vanish when one of its endpoints is removed,
        # which would dirty that component), so the contracted pass reuses
        # this set instead of rescanning every line edge.
        self._dag_edges: Set[int] = dag_edges
        dag_offsets, dag_targets = build_csr(
            [divmod(edge, comp_count) for edge in dag_edges], comp_count
        )

        # Tarjan numbers components in reverse topological order, so
        # descending ids are a topological order of the condensation.
        topo = range(comp_count - 1, -1, -1)
        lin, lout, centers = two_hop_cover_dense(comp_count, dag_offsets, dag_targets, topo)
        self.centers = centers
        # Members of a non-trivial SCC are mutually reachable; sharing the
        # component itself as a center keeps the Definition-5 contract valid
        # at the level of original line vertices (base tables intersect the
        # decoded label sets directly, without a same-component shortcut).
        self.comp_lin = [
            frozenset(lin[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lin[comp])
            for comp in range(comp_count)
        ]
        self.comp_lout = [
            frozenset(lout[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lout[comp])
            for comp in range(comp_count)
        ]
        self._rep_names: Optional[List[str]] = None
        self._dead_vertices: Set[int] = set()
        self._vertex_of: Optional[Dict[Tuple[int, int, int], int]] = None
        self.build_seconds = time.perf_counter() - started
        self.refresh_seconds = 0.0
        self.refreshes = 0

    # --------------------------------------------------------- maintenance

    def _vertex_map(self) -> Dict[Tuple[int, int, int], int]:
        """Lazily build {(start, end, label_id): forward vertex} over live rows.

        Node indices are stable across snapshot patches (removals tombstone
        their slot in place), so the keys stay valid between refreshes; the
        map is maintained incrementally once built.
        """
        if self._vertex_of is None:
            mapping: Dict[Tuple[int, int, int], int] = {}
            comp_of = self.comp_of
            dirs = self.dirs
            starts = self.starts
            ends = self.ends
            label_ids = self.label_ids
            for vertex in range(self.count):
                if dirs[vertex] != FORWARD_BYTE or comp_of[vertex] < 0:
                    continue
                mapping[(starts[vertex], ends[vertex], label_ids[vertex])] = vertex
            self._vertex_of = mapping
        return self._vertex_of

    def refresh_from_ops(self, ops: Sequence[tuple]) -> bool:
        """Absorb a journaled mutation burst without a full rebuild.

        Only line-graph components touched by the burst's edge removals are
        re-condensed: intact components enter a contracted graph as single
        supernodes (reusing the stored condensation edges between them),
        survivors of dirty components and newly added line vertices join as
        free agents, and Tarjan runs over that contracted graph instead of
        every line vertex.  The 2-hop cover is then recomputed at component
        level — together this skips both O(line-edges) phases of a cold
        build (the dense Tarjan sweep and the condensation dedup scan).

        Returns ``False`` when the burst cannot be absorbed — unknown ops,
        journal/graph inconsistency, or more than
        :data:`REFRESH_REBUILD_FRACTION` of the vertices touched — in which
        case the caller should rebuild from scratch; the index itself is
        untouched unless the snapshot patch already succeeded, and a failed
        attempt after that point is answered by the caller discarding this
        instance.  On success the pinned snapshot has been patched to the
        live epoch and the index mutated in place to match, with removed
        line vertices tombstoned (``comp_of`` = -1) rather than compacted.
        """
        started = time.perf_counter()
        snapshot = self.snapshot
        graph = snapshot.graph
        if graph is None:
            return False
        if self._dead_vertices and len(self._dead_vertices) * 2 > self.count:
            return False  # too much tombstone debt: a rebuild resets the arrays
        # Net effect per (source, target, label): the journal is replayable,
        # so the last op wins and intermediate flips cancel out.
        net: Dict[Tuple[Any, Any, str], int] = {}
        for op in ops:
            kind = op[0]
            if kind == "add_edge":
                net[(op[1], op[2], op[3])] = 1
            elif kind == "remove_edge":
                net[(op[1], op[2], op[3])] = -1
            elif kind not in ("add_user", "update_user", "remove_user"):
                return False
        vertex_of = self._vertex_map()
        node_index = snapshot.node_index
        label_index = snapshot.label_index
        removed_keys: List[Tuple[int, int, int]] = []
        removed_vertices: List[int] = []
        pending_adds: List[Tuple[Any, Any, str]] = []
        for (source, target, label), effect in net.items():
            if effect == 1:
                pending_adds.append((source, target, label))
                continue
            source_idx = node_index.get(source)
            target_idx = node_index.get(target)
            label_id = label_index.get(label)
            if source_idx is None or target_idx is None or label_id is None:
                continue  # edge born and gone within the burst
            key = (source_idx, target_idx, label_id)
            vertex = vertex_of.get(key)
            if vertex is None:
                continue  # added earlier in the same burst: never indexed
            removed_keys.append(key)
            removed_vertices.append(vertex)
        per_edge = 2 if self.include_reverse else 1
        comp_of = self.comp_of
        dirty_comps: Set[int] = set()
        for vertex in removed_vertices:
            dirty_comps.add(comp_of[vertex])
            if self.include_reverse:
                dirty_comps.add(comp_of[vertex + 1])
        touched = sum(self.comp_sizes[comp] for comp in dirty_comps)
        touched += per_edge * len(pending_adds)
        if touched > max(1, self.count) * REFRESH_REBUILD_FRACTION:
            return False
        # Patch the (pinned) snapshot in place.  The pin exists so nobody
        # patches it *under* the index; the refresh is the one controlled
        # transition where index and snapshot move together, so lifting the
        # pin for its duration is sound.
        was_pinned = snapshot._pinned
        snapshot._pinned = False
        try:
            patched = snapshot.apply_deltas(ops)
        finally:
            snapshot._pinned = was_pinned
        if not patched:
            return False  # caller rebuilds on a freshly compiled snapshot
        # Resolve additions post-patch (new users/labels are interned now).
        node_index = snapshot.node_index
        label_index = snapshot.label_index
        resolved_adds: List[Tuple[int, int, int]] = []
        for source, target, label in pending_adds:
            source_idx = node_index.get(source)
            target_idx = node_index.get(target)
            label_id = label_index.get(label)
            if source_idx is None or target_idx is None or label_id is None:
                return False  # journal out of sync with the graph
            resolved_adds.append((source_idx, target_idx, label_id))
        # Tombstone removed line vertices before the membership checks below
        # so a re-added edge at a reused node slot lands on a fresh vertex.
        dead = self._dead_vertices
        for key, vertex in zip(removed_keys, removed_vertices):
            del vertex_of[key]
            dead.add(vertex)
            if self.include_reverse:
                dead.add(vertex + 1)
        for key in resolved_adds:
            if key in vertex_of:
                continue  # removed and re-added within the burst: still indexed
            source_idx, target_idx, label_id = key
            vertex = len(self.starts)
            vertex_of[key] = vertex
            self.starts.append(source_idx)
            self.ends.append(target_idx)
            self.label_ids.append(label_id)
            self.dirs.append(FORWARD_BYTE)
            if self.include_reverse:
                self.starts.append(target_idx)
                self.ends.append(source_idx)
                self.label_ids.append(label_id)
                self.dirs.append(REVERSE_BYTE)
        count = len(self.starts)
        self.count = count
        live = [vertex for vertex in range(count) if vertex not in dead]
        node_count = snapshot.number_of_nodes()
        starts = self.starts
        ends = self.ends
        self.start_offsets, self.start_vertices = build_csr(
            [(starts[vertex], vertex) for vertex in live], node_count
        )
        end_offsets, end_vertices = build_csr(
            [(ends[vertex], vertex) for vertex in live], node_count
        )
        # Contracted condensation: intact old components collapse to one
        # supernode each; survivors of dirty components and new vertices are
        # free agents with their own node.
        old_count = len(comp_of)
        contracted_of = array("l", [-1]) * count
        intact_id: Dict[int, int] = {}
        next_id = 0
        agents: List[int] = []
        for vertex in live:
            if vertex < old_count:
                comp = comp_of[vertex]
                if comp >= 0 and comp not in dirty_comps:
                    contracted = intact_id.get(comp)
                    if contracted is None:
                        contracted = intact_id[comp] = next_id
                        next_id += 1
                    contracted_of[vertex] = contracted
                    continue
            agents.append(vertex)
        for vertex in agents:
            contracted_of[vertex] = next_id
            next_id += 1
        contracted_count = next_id
        # Edges: intact<->intact pairs survive from the stored condensation
        # (they can only change when an endpoint vertex is removed, which
        # dirties its component); everything incident to an agent is scanned
        # through the rebuilt CSRs.
        old_comp_count = self.comp_count
        packed_edges: Set[int] = set()
        for packed in self._dag_edges:
            source_comp, target_comp = divmod(packed, old_comp_count)
            source_cid = intact_id.get(source_comp)
            target_cid = intact_id.get(target_comp)
            if source_cid is not None and target_cid is not None:
                packed_edges.add(source_cid * contracted_count + target_cid)
        start_offsets = self.start_offsets
        start_vertices = self.start_vertices
        for agent in agents:
            agent_cid = contracted_of[agent]
            head = ends[agent]
            for cursor in range(start_offsets[head], start_offsets[head + 1]):
                succ_cid = contracted_of[start_vertices[cursor]]
                if succ_cid != agent_cid:
                    packed_edges.add(agent_cid * contracted_count + succ_cid)
            tail = starts[agent]
            for cursor in range(end_offsets[tail], end_offsets[tail + 1]):
                pred_cid = contracted_of[end_vertices[cursor]]
                if pred_cid != agent_cid:
                    packed_edges.add(pred_cid * contracted_count + agent_cid)
        contracted_offsets, contracted_targets = build_csr(
            [divmod(edge, contracted_count) for edge in packed_edges],
            contracted_count,
        )
        contracted_comp, comp_count = tarjan_scc_dense(
            contracted_count, contracted_offsets, contracted_targets
        )
        new_comp_of = array("l", [-1]) * count
        for vertex in live:
            new_comp_of[vertex] = contracted_comp[contracted_of[vertex]]
        comp_sizes = [0] * comp_count
        for comp, contracted in intact_id.items():
            comp_sizes[contracted_comp[contracted]] += self.comp_sizes[comp]
        for vertex in agents:
            comp_sizes[contracted_comp[contracted_of[vertex]]] += 1
        dag_edges: Set[int] = set()
        for packed in packed_edges:
            source_cid, target_cid = divmod(packed, contracted_count)
            source_comp = contracted_comp[source_cid]
            target_comp = contracted_comp[target_cid]
            if source_comp != target_comp:
                dag_edges.add(source_comp * comp_count + target_comp)
        dag_offsets, dag_targets = build_csr(
            [divmod(edge, comp_count) for edge in dag_edges], comp_count
        )
        # The contracted Tarjan numbers final components in reverse
        # topological order just like the dense pass, so descending ids
        # remain a valid topological order for the cover recursion.
        topo = range(comp_count - 1, -1, -1)
        lin, lout, centers = two_hop_cover_dense(comp_count, dag_offsets, dag_targets, topo)
        self.comp_of = new_comp_of
        self.comp_count = comp_count
        self.comp_sizes = comp_sizes
        self._dag_edges = dag_edges
        self.centers = centers
        self.comp_lin = [
            frozenset(lin[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lin[comp])
            for comp in range(comp_count)
        ]
        self.comp_lout = [
            frozenset(lout[comp] | {comp}) if comp_sizes[comp] > 1 else frozenset(lout[comp])
            for comp in range(comp_count)
        ]
        self._rep_names = None
        # Re-seed the derived cache: the structural sweep inside the patch
        # dropped every cached line index, but this one is current again.
        snapshot.derived[("line-index", self.include_reverse)] = self
        self.refresh_seconds = time.perf_counter() - started
        self.refreshes += 1
        return True

    # ------------------------------------------------------------- queries

    def successors_slice(self, vertex: int) -> Tuple[int, int]:
        """Return the ``start_vertices`` range holding ``vertex``'s successors."""
        head = self.ends[vertex]
        return self.start_offsets[head], self.start_offsets[head + 1]

    def reaches(self, first: int, second: int) -> bool:
        """2-hop test: does line vertex ``first`` reach line vertex ``second``?"""
        if first == second:
            return True
        first_comp = self.comp_of[first]
        second_comp = self.comp_of[second]
        if first_comp == second_comp:
            return True
        return not self.comp_lout[first_comp].isdisjoint(self.comp_lin[second_comp])

    def number_of_line_edges(self) -> int:
        """Return the (implicit) line-graph edge count over live vertices."""
        start_offsets = self.start_offsets
        ends = self.ends
        comp_of = self.comp_of
        return sum(
            start_offsets[ends[vertex] + 1] - start_offsets[ends[vertex]]
            for vertex in range(self.count)
            if comp_of[vertex] >= 0
        )

    def labeling_size(self) -> int:
        """Return ``sum |Lin(v)| + |Lout(v)|`` over line vertices (Definition 5)."""
        comp_of = self.comp_of
        comp_lin = self.comp_lin
        comp_lout = self.comp_lout
        return sum(
            len(comp_lin[comp_of[vertex]]) + len(comp_lout[comp_of[vertex]])
            for vertex in range(self.count)
            if comp_of[vertex] >= 0
        )

    # ------------------------------------------------------------- decoding

    def vertex_id(self, vertex: int) -> str:
        """Decode the canonical string id (matches ``LineGraph.vertex_id_for``)."""
        label = self.snapshot.labels[self.label_ids[vertex]]
        start = self.snapshot.node_ids[self.starts[vertex]]
        end = self.snapshot.node_ids[self.ends[vertex]]
        if self.dirs[vertex] == FORWARD_BYTE:
            return f"{label}:{start}->{end}"
        return f"{label}~:{end}->{start}"

    def traversal(self, vertex: int) -> Traversal:
        """Decode one line vertex into a witness :class:`Traversal`."""
        snapshot = self.snapshot
        label_id = self.label_ids[vertex]
        if self.dirs[vertex] == FORWARD_BYTE:
            rel = snapshot.relationship(self.starts[vertex], self.ends[vertex], label_id)
            return Traversal(rel, forward=True)
        rel = snapshot.relationship(self.ends[vertex], self.starts[vertex], label_id)
        return Traversal(rel, forward=False)

    def representative_names(self) -> List[str]:
        """Per-component representative vertex ids (smallest by string order).

        This is the only place the index decodes strings during a build, and
        it runs lazily — the join index needs the names for its base tables
        and W-table; pure evaluation never does.
        """
        if self._rep_names is None:
            reps: List[Optional[str]] = [None] * self.comp_count
            for vertex in range(self.count):
                comp = self.comp_of[vertex]
                if comp < 0:
                    continue
                vertex_id = self.vertex_id(vertex)
                current = reps[comp]
                if current is None or vertex_id < current:
                    reps[comp] = vertex_id
            self._rep_names = [name for name in reps if name is not None]
        return self._rep_names

    def statistics(self) -> Dict[str, float]:
        """Return build-time and size metrics for the index benchmarks."""
        return {
            "build_seconds": self.build_seconds,
            "refresh_seconds": self.refresh_seconds,
            "refreshes": float(self.refreshes),
            "index_entries": float(self.labeling_size()),
            "centers": float(len(self.centers)),
            "components": float(self.comp_count),
            "line_vertices": float(self.count - len(self._dead_vertices)),
            "line_edges": float(self.number_of_line_edges()),
        }

    def __repr__(self) -> str:
        mode = "oriented" if self.include_reverse else "forward-only"
        return (
            f"<InternedLineIndex ({mode}): {self.count} line vertices, "
            f"{self.comp_count} components, epoch={self.snapshot.epoch}>"
        )


def interned_line_index(
    graph: SocialGraph,
    *,
    include_reverse: bool = True,
    refresh: bool = False,
) -> InternedLineIndex:
    """Return the (lazily rebuilt) interned cluster index of ``graph``.

    Cached on the compiled snapshot keyed by orientation, so the index
    follows the snapshot's epoch-based staleness contract: one build per
    burst of mutations, shared by every consumer of the same snapshot.
    ``refresh`` forces a fresh construction even on a warm cache (and seeds
    the cache with the result) — explicit ``build()`` calls use it so that
    construction-time measurements never time a cache hit.
    """
    snapshot = compile_graph(graph)
    key = ("line-index", include_reverse)
    index = None if refresh else snapshot.derived.get(key)
    if index is None:
        index = InternedLineIndex(snapshot, include_reverse=include_reverse)
        snapshot.derived[key] = index
    return index
