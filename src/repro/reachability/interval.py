"""Interval labeling of DAGs (Agrawal et al.) and the reachability table of Figure 5.

Section 3.2 of the paper labels the condensation DAG of the line graph with
the classic Agrawal–Borgida–Jagadish scheme:

1. build an **optimum tree cover**: traverse the DAG in topological order
   and, for each node, keep only the incoming edge whose parent "has the
   least number of predecessors";
2. assign every tree node its **postorder number**;
3. give every node an **interval** ``[lowest postorder among its descendants,
   own postorder]``, then propagate the intervals of non-tree successors in
   reverse topological order (merging and discarding subsumed intervals) so
   that the final label captures full DAG reachability:
   ``u`` reaches ``v``  iff  ``postorder(v)`` falls inside one of ``u``'s
   intervals.

The same processing is applied to the reversed DAG (``G2``), "which can tell
which nodes can reach u, fast"; both labelings side by side form the
**reachability table** of Figure 5 (postorder↓ / intervals↓ from G1,
postorder↑ / intervals↑ from G2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.exceptions import ReachabilityError
from repro.reachability.scc import Condensation, condense

__all__ = ["topological_order", "IntervalLabeling", "ReachabilityTable"]

Adjacency = Mapping[Hashable, Iterable[Hashable]]
Interval = Tuple[int, int]


def topological_order(adjacency: Adjacency) -> List[Hashable]:
    """Return a topological order of a DAG (raises on cycles).

    Kahn's algorithm; ties are broken by string order so the result — and
    therefore every postorder number downstream — is deterministic.
    """
    nodes: Set[Hashable] = set(adjacency)
    for successors in adjacency.values():
        nodes.update(successors)
    in_degree: Dict[Hashable, int] = {node: 0 for node in nodes}
    for successors in adjacency.values():
        for successor in successors:
            in_degree[successor] += 1
    ready = sorted((node for node, degree in in_degree.items() if degree == 0), key=str)
    order: List[Hashable] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for successor in sorted(adjacency.get(node, ()), key=str):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
        ready.sort(key=str)
    if len(order) != len(nodes):
        raise ReachabilityError("graph has a cycle; interval labeling needs a DAG")
    return order


def _merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Merge overlapping / adjacent intervals and drop subsumed ones."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for low, high in intervals[1:]:
        last_low, last_high = merged[-1]
        if low <= last_high + 1:
            merged[-1] = (last_low, max(last_high, high))
        else:
            merged.append((low, high))
    return merged


class IntervalLabeling:
    """Agrawal interval labeling of one DAG (postorder numbers + interval sets)."""

    def __init__(self, adjacency: Adjacency) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {
            node: set(successors) for node, successors in adjacency.items()
        }
        for successors in list(self._adjacency.values()):
            for successor in successors:
                self._adjacency.setdefault(successor, set())
        self._order = topological_order(self._adjacency)
        self.postorder: Dict[Hashable, int] = {}
        self.intervals: Dict[Hashable, List[Interval]] = {}
        self.tree_parent: Dict[Hashable, Optional[Hashable]] = {}
        self._build()

    # ---------------------------------------------------------------- build

    def _build(self) -> None:
        """Intern nodes onto topological positions; label on positional arrays.

        The node universe is interned in topological order (positions =
        ``self._order`` indexes), the predecessor lists become one CSR pair,
        and every per-node table below is a plain list — node objects are
        only touched for the deterministic string tie-breaks and for the
        final decode into the public dicts.
        """
        order = self._order
        count = len(order)
        position = {node: index for index, node in enumerate(order)}
        predecessors: List[List[int]] = [[] for _ in range(count)]
        successors: List[List[int]] = [[] for _ in range(count)]
        for node, adjacent in self._adjacency.items():
            source = position[node]
            for successor in adjacent:
                target = position[successor]
                successors[source].append(target)
                predecessors[target].append(source)

        # Ancestor counts, used to pick "the incoming edge that has the least
        # number of predecessors" for the tree cover.
        ancestor_counts = [0] * count
        bitsets = [0] * count
        for index in range(count):
            bits = 0
            for parent in predecessors[index]:
                bits |= bitsets[parent] | (1 << parent)
            bitsets[index] = bits
            ancestor_counts[index] = bin(bits).count("1")

        tree_parent: List[Optional[int]] = [None] * count
        tree_children: List[List[int]] = [[] for _ in range(count)]
        for index in range(count):
            parents = predecessors[index]
            if not parents:
                continue
            chosen = min(parents, key=lambda parent: (ancestor_counts[parent], str(order[parent])))
            tree_parent[index] = chosen
            tree_children[chosen].append(index)

        # Postorder numbering over the tree cover (a forest).
        counter = 0
        postorder = [0] * count
        subtree_low = [0] * count
        for root in range(count):
            if tree_parent[root] is None:
                counter = self._assign_postorder(
                    root, tree_children, counter, postorder, subtree_low
                )

        # Tree intervals, then non-tree propagation in reverse topological order.
        intervals: List[List[Interval]] = [
            [(subtree_low[index], postorder[index])] for index in range(count)
        ]
        for index in range(count - 1, -1, -1):
            collected = list(intervals[index])
            for successor in successors[index]:
                collected.extend(intervals[successor])
            intervals[index] = _merge_intervals(collected)

        for index, node in enumerate(order):
            parent = tree_parent[index]
            self.tree_parent[node] = None if parent is None else order[parent]
            self.postorder[node] = postorder[index]
            self.intervals[node] = intervals[index]

    def _assign_postorder(
        self,
        root: int,
        tree_children: List[List[int]],
        counter: int,
        postorder: List[int],
        subtree_low: List[int],
    ) -> int:
        # Iterative postorder: (node, visited-flag) stack.
        order = self._order
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            index, processed = stack.pop()
            if processed:
                counter += 1
                postorder[index] = counter
                children = tree_children[index]
                lows = [subtree_low[child] for child in children]
                subtree_low[index] = min(lows + [counter])
                continue
            stack.append((index, True))
            for child in sorted(tree_children[index], key=lambda c: str(order[c]), reverse=True):
                stack.append((child, False))
        return counter

    # -------------------------------------------------------------- queries

    def reaches(self, source: Hashable, target: Hashable) -> bool:
        """Return whether ``target`` is reachable from ``source`` in the DAG."""
        if source == target:
            return True
        target_number = self.postorder[target]
        return any(low <= target_number <= high for low, high in self.intervals[source])

    def label_size(self) -> int:
        """Total number of stored intervals (the index-size metric)."""
        return sum(len(intervals) for intervals in self.intervals.values())

    def nodes(self) -> List[Hashable]:
        """Return the labelled nodes in topological order."""
        return list(self._order)


@dataclass
class ReachabilityTableRow:
    """One row of the Figure 5 reachability table."""

    node: Hashable
    postorder_down: int
    intervals_down: List[Interval]
    postorder_up: int
    intervals_up: List[Interval]

    def format(self) -> str:
        """Render the row roughly as printed in the paper."""
        def render(intervals: List[Interval]) -> str:
            return ";".join(f"[{low},{high}]" for low, high in intervals)

        return (
            f"{self.node}\t{self.postorder_down}\t{render(self.intervals_down)}\t"
            f"{self.postorder_up}\t{render(self.intervals_up)}"
        )


class ReachabilityTable:
    """The Figure-5 artifact: forward and backward interval labelings side by side.

    Built over the condensation of an arbitrary directed graph (the paper
    applies it to the line graph): ``G1`` is the condensation DAG and ``G2``
    its reverse, so for a node ``u`` the table "can tell which nodes u can
    reach, and which nodes can reach u, fast".
    """

    def __init__(self, adjacency: Adjacency) -> None:
        self.condensation: Condensation = condense(adjacency)
        dag = self.condensation.dag
        reversed_dag: Dict[int, Set[int]] = {node: set() for node in dag}
        for node, successors in dag.items():
            for successor in successors:
                reversed_dag[successor].add(node)
        self.forward = IntervalLabeling(dag)
        self.backward = IntervalLabeling(reversed_dag)

    # -------------------------------------------------------------- queries

    def reaches(self, source: Hashable, target: Hashable) -> bool:
        """Return whether ``target`` is reachable from ``source`` in the original graph."""
        source_component = self.condensation.component_of(source)
        target_component = self.condensation.component_of(target)
        if source_component == target_component:
            return True
        return self.forward.reaches(source_component, target_component)

    def reached_by(self, target: Hashable, source: Hashable) -> bool:
        """Return whether ``source`` can reach ``target`` (using the reverse labeling)."""
        source_component = self.condensation.component_of(source)
        target_component = self.condensation.component_of(target)
        if source_component == target_component:
            return True
        return self.backward.reaches(target_component, source_component)

    def rows(self) -> List[ReachabilityTableRow]:
        """Return the table rows (one per original node), in node order."""
        rows = []
        for node in sorted(self.condensation.membership, key=str):
            component = self.condensation.component_of(node)
            rows.append(
                ReachabilityTableRow(
                    node=node,
                    postorder_down=self.forward.postorder[component],
                    intervals_down=list(self.forward.intervals[component]),
                    postorder_up=self.backward.postorder[component],
                    intervals_up=list(self.backward.intervals[component]),
                )
            )
        return rows

    def label_size(self) -> int:
        """Total number of intervals stored across both labelings."""
        return self.forward.label_size() + self.backward.label_size()

    def format(self) -> str:
        """Render the whole table as tab-separated text (header + one line per node)."""
        lines = ["node\tpo↓\tintervals↓\tpo↑\tintervals↑"]
        lines.extend(row.format() for row in self.rows())
        return "\n".join(lines)
