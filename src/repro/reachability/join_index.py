"""Per-label base tables, the W-table and the cluster-based join index
(Section 3.3, Figures 6 and 7).

From the 2-hop cover ``H = {S_w1, ..., S_wn}`` of the line graph, where each
``S_wi = (U_wi, w_i, V_wi)``:

* every line vertex ``x`` gets its 2-hop label ``(Lin(x), Lout(x))``;
* the graph is stored "into a relational database, where each label is
  represented with a three-column table" — the **base tables**
  ``T_label(node, Lin, Lout)``, one per (label, direction) pair;
* a reachability condition ``label1 ⤳ label2`` is processed as a
  **reachability join** between the two base tables: a pair ``(x, y)``
  qualifies iff ``Lout(x) ∩ Lin(y) ≠ ∅``;
* the **cluster-based join index** accelerates that join: a B+-tree whose
  non-leaf entries are centers, each holding its two clusters
  ``U_w = {x : w ∈ Lout(x)}`` and ``V_w = {y : w ∈ Lin(y)}``, grouped by
  (label, direction);
* the **W-table** maps each ordered (label, direction) pair to the centers
  whose clusters can contribute answers, so a join only touches relevant
  centers (Figure 6).

Both join strategies are exposed (`reachability_join` through the W-table and
clusters, `reachability_join_baseline` straight over the base tables); they
return identical pair sets, which the test-suite verifies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.graph.social_graph import SocialGraph
from repro.reachability.interned import InternedLineIndex, interned_line_index
from repro.reachability.linegraph import LineGraph, LineVertex
from repro.reachability.twohop import TwoHopIndex
from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog
from repro.storage.joins import reachability_join_rows
from repro.storage.table import Column, Schema, Table

__all__ = ["ClusterEntry", "JoinIndex"]

LabelKey = Tuple[str, str]          # (label, direction symbol)
VertexPair = Tuple[str, str]        # (line vertex id, line vertex id)


@dataclass
class ClusterEntry:
    """The two clusters attached to one center of the join index (Figure 7)."""

    center: str
    u_cluster: Dict[LabelKey, Set[str]] = field(default_factory=dict)
    v_cluster: Dict[LabelKey, Set[str]] = field(default_factory=dict)

    def u_vertices(self, key: Optional[LabelKey] = None) -> Set[str]:
        """Vertices that reach the center (optionally restricted to one label key)."""
        if key is not None:
            return set(self.u_cluster.get(key, set()))
        result: Set[str] = set()
        for vertices in self.u_cluster.values():
            result |= vertices
        return result

    def v_vertices(self, key: Optional[LabelKey] = None) -> Set[str]:
        """Vertices the center reaches (optionally restricted to one label key)."""
        if key is not None:
            return set(self.v_cluster.get(key, set()))
        result: Set[str] = set()
        for vertices in self.v_cluster.values():
            result |= vertices
        return result

    def size(self) -> int:
        """Total number of cluster entries stored for this center."""
        return sum(len(v) for v in self.u_cluster.values()) + sum(
            len(v) for v in self.v_cluster.values()
        )


class JoinIndex:
    """The full Section-3.3 structure: 2-hop labels, base tables, clusters, W-table."""

    def __init__(self, line_graph: LineGraph, *, btree_order: int = 16) -> None:
        self.line_graph = line_graph
        self._btree_order = btree_order
        self.two_hop: Optional[TwoHopIndex] = None
        self.interned: Optional[InternedLineIndex] = None
        self.catalog = Catalog("base-tables")
        self.cluster_index: BPlusTree = BPlusTree(order=btree_order)
        self.w_table: Dict[Tuple[LabelKey, LabelKey], FrozenSet[str]] = {}
        self.build_seconds = 0.0
        self._labels: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self._join_cache: Dict[Tuple[LabelKey, LabelKey], Set[VertexPair]] = {}
        self._built = False

    # ---------------------------------------------------------------- build

    def build(self) -> "JoinIndex":
        """Compute the 2-hop labeling, fill the base tables, clusters and W-table.

        Over a :class:`SocialGraph` the labeling comes from the snapshot's
        :class:`InternedLineIndex` — SCC condensation and 2-hop cover run on
        dense int arrays and only the per-component representative names are
        decoded into the string-facing base tables, clusters and W-table.
        That shortcut requires the line graph to still describe the live
        graph (same epoch); a stale line graph — or a duck-typed graph —
        falls back to the generic string pipeline, which only reads the
        line graph itself.
        """
        started = time.perf_counter()
        graph = self.line_graph.graph
        if isinstance(graph, SocialGraph) and self.line_graph.epoch == graph.epoch:
            self.interned = interned_line_index(
                graph, include_reverse=self.line_graph.include_reverse
            )
            self._build_labels_interned()
        else:
            self.two_hop = TwoHopIndex(self.line_graph.adjacency())
            self._build_labels()
        self._build_base_tables()
        self._build_clusters()
        self._build_w_table()
        self.build_seconds = time.perf_counter() - started
        self._built = True
        return self

    def _build_labels(self) -> None:
        assert self.two_hop is not None
        for vertex in self.line_graph.vertices():
            label = self.two_hop.label(vertex.vertex_id)
            self._labels[vertex.vertex_id] = (
                frozenset(str(center) for center in label.lin),
                frozenset(str(center) for center in label.lout),
            )

    def _build_labels_interned(self) -> None:
        assert self.interned is not None
        interned = self.interned
        representatives = interned.representative_names()
        # One shared frozenset of decoded center names per component — every
        # member vertex points at the same two objects.
        lin_names = [
            frozenset(representatives[center] for center in interned.comp_lin[comp])
            for comp in range(interned.comp_count)
        ]
        lout_names = [
            frozenset(representatives[center] for center in interned.comp_lout[comp])
            for comp in range(interned.comp_count)
        ]
        for vertex in range(interned.count):
            comp = interned.comp_of[vertex]
            self._labels[interned.vertex_id(vertex)] = (lin_names[comp], lout_names[comp])

    def _table_name(self, key: LabelKey) -> str:
        label, direction = key
        return f"T_{label}" if direction == "+" else f"T_{label}_rev"

    def _build_base_tables(self) -> None:
        schema = Schema(
            [
                Column("node", str),
                Column("lin", frozenset),
                Column("lout", frozenset),
            ]
        )
        for key in self.line_graph.keys():
            table = self.catalog.create_table(self._table_name(key), schema, key="node")
            for vertex in self.line_graph.with_key(*key):
                lin, lout = self._labels[vertex.vertex_id]
                table.insert(node=vertex.vertex_id, lin=lin, lout=lout)

    def _build_clusters(self) -> None:
        entries: Dict[str, ClusterEntry] = {}
        for vertex in self.line_graph.vertices():
            lin, lout = self._labels[vertex.vertex_id]
            key = vertex.key()
            for center in lout:
                entry = entries.setdefault(center, ClusterEntry(center))
                entry.u_cluster.setdefault(key, set()).add(vertex.vertex_id)
            for center in lin:
                entry = entries.setdefault(center, ClusterEntry(center))
                entry.v_cluster.setdefault(key, set()).add(vertex.vertex_id)
        self.cluster_index = BPlusTree(order=self._btree_order)
        for center, entry in entries.items():
            self.cluster_index.insert(center, entry)

    def _build_w_table(self) -> None:
        keys = self.line_graph.keys()
        table: Dict[Tuple[LabelKey, LabelKey], Set[str]] = {}
        for center, entry in self.cluster_index.items():
            u_keys = [key for key, vertices in entry.u_cluster.items() if vertices]
            v_keys = [key for key, vertices in entry.v_cluster.items() if vertices]
            for first in u_keys:
                for second in v_keys:
                    table.setdefault((first, second), set()).add(center)
        self.w_table = {
            pair: frozenset(centers) for pair, centers in table.items()
        }
        # Pairs never joinable still get an (empty) entry so lookups are total.
        for first in keys:
            for second in keys:
                self.w_table.setdefault((first, second), frozenset())

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("JoinIndex.build() must be called before querying")

    # -------------------------------------------------------------- queries

    def base_table(self, key: LabelKey) -> Optional[Table]:
        """Return the base table for a (label, direction) pair, or ``None`` if absent."""
        name = self._table_name(key)
        return self.catalog.table(name) if self.catalog.has_table(name) else None

    def labels_of(self, vertex_id: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Return ``(Lin, Lout)`` of a line vertex."""
        self._require_built()
        return self._labels[vertex_id]

    def relevant_centers(self, first: LabelKey, second: LabelKey) -> FrozenSet[str]:
        """W-table lookup: centers that can contribute to the join ``first ⤳ second``."""
        self._require_built()
        return self.w_table.get((first, second), frozenset())

    def cluster(self, center: str) -> Optional[ClusterEntry]:
        """Return the cluster entry stored for a center."""
        self._require_built()
        return self.cluster_index.get(center)

    def vertex_reaches(self, first_id: str, second_id: str) -> bool:
        """Return whether one line vertex reaches another (2-hop label intersection)."""
        self._require_built()
        if first_id == second_id:
            return True
        _lin_first, lout_first = self._labels[first_id]
        lin_second, _lout_second = self._labels[second_id]
        return not lout_first.isdisjoint(lin_second)

    def reachability_join(self, first: LabelKey, second: LabelKey) -> Set[VertexPair]:
        """Join through the W-table and clusters (the indexed path of the paper).

        The result depends only on the index contents (never on a particular
        query), so it is memoized: a query workload touching the same label
        pairs repeatedly pays for each join once.
        """
        self._require_built()
        cached = self._join_cache.get((first, second))
        if cached is not None:
            return cached
        pairs: Set[VertexPair] = set()
        for center in self.relevant_centers(first, second):
            entry = self.cluster_index.get(center)
            if entry is None:
                continue
            for x in entry.u_cluster.get(first, ()):  # x reaches the center
                for y in entry.v_cluster.get(second, ()):  # the center reaches y
                    if x != y:
                        pairs.add((x, y))
        self._join_cache[(first, second)] = pairs
        return pairs

    def reachability_join_baseline(self, first: LabelKey, second: LabelKey) -> Set[VertexPair]:
        """Join straight over the base tables (label-set intersection per pair)."""
        self._require_built()
        left = self.base_table(first)
        right = self.base_table(second)
        if left is None or right is None:
            return set()
        pairs = reachability_join_rows(left.rows(), right.rows())
        return {(x, y) for x, y in pairs if x != y}

    # ------------------------------------------------------------ statistics

    def statistics(self) -> Dict[str, float]:
        """Return size / construction metrics for the index benchmarks."""
        self._require_built()
        if self.interned is not None:
            labeling_size = self.interned.labeling_size()
        else:
            assert self.two_hop is not None
            labeling_size = self.two_hop.labeling_size()
        internal, leaves = self.cluster_index.node_count()
        return {
            "build_seconds": self.build_seconds,
            "line_vertices": float(self.line_graph.number_of_vertices()),
            "line_edges": float(self.line_graph.number_of_edges()),
            "index_entries": float(labeling_size),
            "centers": float(len(self.cluster_index)),
            "w_table_entries": float(sum(1 for centers in self.w_table.values() if centers)),
            "base_table_rows": float(self.catalog.total_rows()),
            "btree_internal_nodes": float(internal),
            "btree_leaf_nodes": float(leaves),
        }

    def w_table_rows(self) -> List[Tuple[str, str, Tuple[str, ...]]]:
        """Return the W-table as printable rows (Figure 6): label pair -> centers."""
        self._require_built()
        rows = []
        for (first, second), centers in sorted(self.w_table.items()):
            if not centers:
                continue
            rows.append(
                (
                    f"{first[0]}{first[1]}",
                    f"{second[0]}{second[1]}",
                    tuple(sorted(centers)),
                )
            )
        return rows
