"""Directed line graph construction (Section 3.1, Figure 3).

"Given a directed graph G, its line graph L(G) is a directed graph such that
each vertex of L(G) represents an edge of G, and two vertices in L(G) are
connected by a directed edge if the target of the corresponding edge of the
first vertex is the same as the source of the corresponding edge of the
second vertex" (Definition 4).

Each line vertex holds the ``<label - endpoints>`` couple of the paper's
Figure 3 (e.g. ``Friend A-C``).  Two practical extensions over the paper's
presentation:

* **Oriented vertices.**  Access conditions may traverse a relationship
  against its direction (``dir = -`` or ``*`` in a step).  To support those
  steps in the index pipeline, the line graph can be built over *oriented
  edges*: every social-graph relationship contributes a forward vertex and a
  reverse vertex, and adjacency follows the traversal direction.  With
  ``include_reverse=False`` (the paper's setting) only forward vertices are
  produced and Figure 3 is reproduced exactly.
* **Indexes.**  Vertices are indexed by start user, end user and
  (label, direction) so that the query evaluator can seed its joins without
  scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.graph.compiled import compile_graph
from repro.graph.social_graph import Relationship, SocialGraph

__all__ = ["LineVertex", "LineGraph"]

FORWARD = "+"
REVERSE = "-"


@dataclass(frozen=True)
class LineVertex:
    """A vertex of the line graph: one relationship traversed in one direction."""

    vertex_id: str
    label: str
    direction: str          # '+' (with the edge) or '-' (against the edge)
    start: Hashable         # user the traversal leaves from
    end: Hashable           # user the traversal arrives at
    relationship: Relationship

    def key(self) -> Tuple[str, str]:
        """The (label, direction) pair, matching :meth:`LineHop.key`."""
        return (self.label, self.direction)

    def describe(self) -> str:
        """Return the paper's ``Label Start-End`` notation (e.g. ``friend A-C``)."""
        suffix = "" if self.direction == FORWARD else " (reverse)"
        return f"{self.label} {self.start}-{self.end}{suffix}"

    def __str__(self) -> str:
        return self.vertex_id


class LineGraph:
    """The directed line graph of a social graph, with traversal orientation."""

    def __init__(self, graph: SocialGraph, *, include_reverse: bool = True) -> None:
        self.graph = graph
        self.include_reverse = include_reverse
        #: the graph epoch this line graph was derived at; consumers deriving
        #: further structure (the join index) compare it against the live
        #: epoch to decide whether snapshot-based shortcuts are still valid
        self.epoch = getattr(graph, "epoch", None)
        self._vertices: Dict[str, LineVertex] = {}
        self._adjacency: Dict[str, Set[str]] = {}
        self._by_start: Dict[Hashable, List[str]] = {}
        self._by_end: Dict[Hashable, List[str]] = {}
        self._by_key: Dict[Tuple[str, str], List[str]] = {}
        self._build()

    # ---------------------------------------------------------------- build

    @staticmethod
    def vertex_id_for(relationship: Relationship, direction: str = FORWARD) -> str:
        """The canonical vertex id for a relationship traversed in a direction."""
        marker = "" if direction == FORWARD else "~"
        return f"{relationship.label}{marker}:{relationship.source}->{relationship.target}"

    def _build(self) -> None:
        for rel in self.graph.relationships():
            self._add_vertex(rel, FORWARD, rel.source, rel.target)
            if self.include_reverse:
                self._add_vertex(rel, REVERSE, rel.target, rel.source)
        # Adjacency: the end of one traversal is the start of the next.  A
        # vertex may succeed *itself* when it is a self-loop traversal
        # (``a -[r]-> a``): walking the loop twice in a row is a real path,
        # and excluding it made the cluster index disagree with the BFS
        # oracle on queries that need the same self-loop edge twice.  On a
        # SocialGraph the assembly runs on the compiled snapshot's dense node
        # indices, which makes the key observation cheap: every line vertex
        # ending at the same user has the *same* successor set, so one
        # canonical set per end-user is built and shared instead of one per
        # vertex — turning the O(in-degree x out-degree) set inserts of the
        # naive loop into O(distinct end-users x out-degree).  The sets are
        # never mutated after construction (the public accessors copy), so
        # sharing is safe.
        if isinstance(self.graph, SocialGraph) and self._vertices:
            index_of = compile_graph(self.graph).node_index
            vertices = list(self._vertices.values())
            ids = [vertex.vertex_id for vertex in vertices]
            start_at = [index_of[vertex.start] for vertex in vertices]
            end_at = [index_of[vertex.end] for vertex in vertices]
            starting: List[List[int]] = [[] for _ in range(len(index_of))]
            for position, node in enumerate(start_at):
                starting[node].append(position)
            shared: Dict[int, Set[str]] = {}
            for position, node in enumerate(end_at):
                successors = shared.get(node)
                if successors is None:
                    successors = shared[node] = {ids[succ] for succ in starting[node]}
                self._adjacency[ids[position]] = successors
            return
        for vertex in self._vertices.values():
            targets = self._adjacency[vertex.vertex_id]
            for next_id in self._by_start.get(vertex.end, ()):  # noqa: B023 - plain loop
                targets.add(next_id)

    def _add_vertex(self, rel: Relationship, direction: str, start: Hashable, end: Hashable) -> None:
        vertex_id = self.vertex_id_for(rel, direction)
        vertex = LineVertex(vertex_id, rel.label, direction, start, end, rel)
        self._vertices[vertex_id] = vertex
        self._adjacency[vertex_id] = set()
        self._by_start.setdefault(start, []).append(vertex_id)
        self._by_end.setdefault(end, []).append(vertex_id)
        self._by_key.setdefault((rel.label, direction), []).append(vertex_id)

    # -------------------------------------------------------------- queries

    def vertex(self, vertex_id: str) -> LineVertex:
        """Return the line vertex with the given id."""
        return self._vertices[vertex_id]

    def has_vertex(self, vertex_id: str) -> bool:
        """Return whether a line vertex with this id exists."""
        return vertex_id in self._vertices

    def vertices(self) -> Iterator[LineVertex]:
        """Iterate over all line vertices."""
        return iter(self._vertices.values())

    def vertex_ids(self) -> List[str]:
        """Return all vertex ids (sorted for determinism)."""
        return sorted(self._vertices)

    def successors(self, vertex_id: str) -> Set[str]:
        """Return ids of line vertices adjacent after ``vertex_id``."""
        return set(self._adjacency[vertex_id])

    def adjacency(self) -> Dict[str, Set[str]]:
        """Return the full adjacency mapping (vertex id -> successor ids)."""
        return {vertex: set(targets) for vertex, targets in self._adjacency.items()}

    def are_adjacent(self, first_id: str, second_id: str) -> bool:
        """Return whether ``second`` may directly follow ``first`` on a path."""
        return second_id in self._adjacency.get(first_id, ())

    def starting_at(self, user: Hashable, key: Optional[Tuple[str, str]] = None) -> List[LineVertex]:
        """Return line vertices whose traversal starts at ``user`` (optionally of one (label, dir))."""
        vertices = [self._vertices[v] for v in self._by_start.get(user, ())]
        if key is not None:
            vertices = [vertex for vertex in vertices if vertex.key() == key]
        return vertices

    def ending_at(self, user: Hashable, key: Optional[Tuple[str, str]] = None) -> List[LineVertex]:
        """Return line vertices whose traversal ends at ``user`` (optionally of one (label, dir))."""
        vertices = [self._vertices[v] for v in self._by_end.get(user, ())]
        if key is not None:
            vertices = [vertex for vertex in vertices if vertex.key() == key]
        return vertices

    def with_key(self, label: str, direction: str = FORWARD) -> List[LineVertex]:
        """Return every line vertex carrying the given (label, direction)."""
        return [self._vertices[v] for v in self._by_key.get((label, direction), ())]

    def keys(self) -> List[Tuple[str, str]]:
        """Return the distinct (label, direction) pairs present in the line graph."""
        return sorted(self._by_key)

    # ---------------------------------------------------------------- sizes

    def number_of_vertices(self) -> int:
        """Return the number of line vertices."""
        return len(self._vertices)

    def number_of_edges(self) -> int:
        """Return the number of line-graph (adjacency) edges."""
        return sum(len(targets) for targets in self._adjacency.values())

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        mode = "oriented" if self.include_reverse else "forward-only"
        return (
            f"<LineGraph ({mode}): {self.number_of_vertices()} vertices, "
            f"{self.number_of_edges()} edges over {self.graph!r}>"
        )
