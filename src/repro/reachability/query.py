"""Ordered label-constraint reachability queries and their line-query expansion.

A :class:`ReachabilityQuery` is the object the access-control engine hands to
an evaluation backend: a source (the resource owner), a target (the
requester) and a :class:`~repro.policy.path_expression.PathExpression`
describing the constraints on the connecting path.

Section 3.1 of the paper transforms each such query into one or more **line
queries** before evaluating it over the line-graph index: "Transforming an
ordered label-constraint reachability query may result in one or multiple
line queries depending on distance constraints".  A line query is a flat
sequence of single-edge hops — one hop per authorized depth unit — so the
query of Figure 2 (``friend+[1,2]/colleague+[1]``) expands into two line
queries, ``friend/colleague`` and ``friend/friend/colleague`` (Figure 4).
:func:`expand_line_queries` performs exactly that expansion, remembering for
every hop which original step it came from and whether it closes that step
(the hop where the step's attribute conditions must hold).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction, Step

__all__ = [
    "ReachabilityQuery",
    "LineHop",
    "LineQuery",
    "check_expansion_limit",
    "expand_line_queries",
]

DEFAULT_EXPANSION_LIMIT = 4096


def check_expansion_limit(expression: PathExpression, limit: Optional[int]) -> None:
    """Reject empty expressions and ones whose depth expansion exceeds ``limit``.

    The single home of the expansion-limit policy: :func:`expand_line_queries`
    enforces it before materializing line queries, and the cluster backend's
    batched audience sweep (which needs no expansion) applies the same guard
    so batched and per-owner calls raise on exactly the same expressions.
    """
    if len(expression) == 0:
        raise QueryError("cannot expand an empty path expression")
    if limit is not None and expression.expansion_count() > limit:
        raise QueryError(
            f"expression {expression.to_text()!r} expands into "
            f"{expression.expansion_count()} line queries, above the limit of {limit}"
        )


@dataclass(frozen=True)
class ReachabilityQuery:
    """One ordered label-constraint reachability query (owner ⇝ requester?)."""

    source: Hashable
    target: Hashable
    expression: PathExpression

    @classmethod
    def parse(cls, source: Hashable, target: Hashable, expression: str) -> "ReachabilityQuery":
        """Build a query from a textual path expression."""
        return cls(source, target, PathExpression.parse(expression))

    def describe(self) -> str:
        """Return the query in the paper's ``owner/path`` notation plus the target."""
        return f"{self.source}/{self.expression.to_text()} ⇝ {self.target}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class LineHop:
    """One single-edge hop of a line query.

    ``step_index`` points back to the originating step of the path
    expression; ``closes_step`` marks the last hop of that step — the hop
    after which the step's attribute conditions apply to the reached user.
    """

    label: str
    direction: Direction
    step_index: int
    closes_step: bool

    def key(self) -> Tuple[str, str]:
        """The (label, direction symbol) pair used to pick the base table."""
        return (self.label, self.direction.value)

    def __str__(self) -> str:
        marker = "!" if self.closes_step else ""
        return f"{self.label}{self.direction.value}{marker}"


@dataclass(frozen=True)
class LineQuery:
    """A fully expanded query: a flat sequence of single-edge hops."""

    hops: Tuple[LineHop, ...]
    depths: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self) -> Iterator[LineHop]:
        return iter(self.hops)

    def label_sequence(self) -> Tuple[str, ...]:
        """The sequence of edge labels the line query matches."""
        return tuple(hop.label for hop in self.hops)

    def describe(self) -> str:
        """Return a compact textual form, e.g. ``friend+/friend+/colleague+``."""
        return "/".join(f"{hop.label}{hop.direction.value}" for hop in self.hops)

    def __str__(self) -> str:
        return self.describe()


def _hops_for_step(step: Step, step_index: int, depth: int) -> List[LineHop]:
    hops = []
    for position in range(depth):
        hops.append(
            LineHop(
                label=step.label,
                direction=step.direction,
                step_index=step_index,
                closes_step=(position == depth - 1),
            )
        )
    return hops


def expand_line_queries(
    expression: PathExpression,
    *,
    limit: Optional[int] = DEFAULT_EXPANSION_LIMIT,
) -> List[LineQuery]:
    """Expand a path expression into its line queries (Section 3.1, Figure 4).

    One line query is produced per combination of authorized depths, i.e.
    ``prod(step.depths.width() for step in expression)`` queries in total.
    ``limit`` guards against combinatorial blow-up of extremely wide
    expressions; ``None`` disables the guard.
    """
    check_expansion_limit(expression, limit)
    depth_choices: List[Sequence[int]] = [list(step.depths) for step in expression]
    queries: List[LineQuery] = []
    for combination in itertools.product(*depth_choices):
        hops: List[LineHop] = []
        for step_index, (step, depth) in enumerate(zip(expression, combination)):
            hops.extend(_hops_for_step(step, step_index, depth))
        queries.append(LineQuery(hops=tuple(hops), depths=tuple(combination)))
    # Shorter line queries first: they are cheaper to evaluate and more likely
    # to find a witness early, letting the evaluator stop.
    queries.sort(key=len)
    return queries
