"""Evaluation results returned by reachability backends.

Every backend returns an :class:`EvaluationResult`, which carries the boolean
answer ("is the requester reachable from the owner under the constraints?"),
an optional concrete witness :class:`~repro.graph.paths.Path`, and a bag of
counters describing the work done (states expanded, join tuples examined,
line queries evaluated...).  The counters feed the benchmark harness and the
ablation experiments without requiring backend-specific plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.graph.paths import Path

__all__ = ["EvaluationResult"]


@dataclass
class EvaluationResult:
    """The outcome of evaluating one ordered label-constraint reachability query."""

    reachable: bool
    witness: Optional[Path] = None
    backend: str = ""
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.reachable

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named work counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge_counters(self, other: "EvaluationResult") -> None:
        """Add another result's counters into this one (used by composite backends)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def describe(self) -> str:
        """Return a one-line human-readable summary."""
        verdict = "reachable" if self.reachable else "not reachable"
        parts = [verdict]
        if self.backend:
            parts.append(f"backend={self.backend}")
        if self.witness is not None:
            parts.append("via " + " -> ".join(str(node) for node in self.witness.nodes()))
        if self.counters:
            counters = ", ".join(f"{name}={value}" for name, value in sorted(self.counters.items()))
            parts.append(f"[{counters}]")
        return "; ".join(parts)

    def __str__(self) -> str:
        return self.describe()
