"""Strongly connected components and DAG condensation (Tarjan, Section 3.2).

"A directed acyclic graph G1 is first built based on the obtained line
social graph L(G), by identifying its strongly connected components...  each
SCC in L(G) is represented through a randomly selected node from that SCC...
This transformation will not cause any loss of reachability information,
given that any two nodes in the same SCC are necessarily reachable.  The
algorithm for determining SCCs is Tarjan's algorithm."

The public API works on a plain adjacency mapping (``node -> iterable of
successors``) so that it can be applied to the line graph, to the social
graph, or to any directed graph in tests.  Internally the nodes are interned
to dense ints and the work is done by the iterative CSR Tarjan of
:mod:`repro.reachability.interned` — the line graphs of large social
networks easily exceed Python's recursion limit, and the dense core avoids
hashing arbitrary node objects on every edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Set

from repro.graph.compiled import build_csr
from repro.reachability.interned import tarjan_scc_dense

__all__ = ["strongly_connected_components", "Condensation", "condense"]

Adjacency = Mapping[Hashable, Iterable[Hashable]]


def _intern_nodes(adjacency: Adjacency) -> List[Hashable]:
    """Collect the node universe: mapping keys first, then successor-only nodes."""
    nodes: List[Hashable] = list(adjacency)
    known: Set[Hashable] = set(nodes)
    for successors in adjacency.values():
        for successor in successors:
            if successor not in known:
                known.add(successor)
                nodes.append(successor)
    return nodes


def strongly_connected_components(adjacency: Adjacency) -> List[List[Hashable]]:
    """Return the SCCs of a directed graph (Tarjan's algorithm, iteratively).

    The input maps each node to its successors; nodes appearing only as
    successors are included automatically.  Components are returned in
    Tarjan emission order (a component appears before any component that can
    reach it); use :func:`condense` when a condensation DAG is needed.
    """
    nodes = _intern_nodes(adjacency)
    index_of = {node: index for index, node in enumerate(nodes)}
    pairs = [
        (index_of[node], index_of[successor])
        for node, successors in adjacency.items()
        for successor in successors
    ]
    offsets, targets = build_csr(pairs, len(nodes))
    comp_of, comp_count = tarjan_scc_dense(len(nodes), offsets, targets)
    components: List[List[Hashable]] = [[] for _ in range(comp_count)]
    for index, node in enumerate(nodes):
        components[comp_of[index]].append(node)
    return components


@dataclass
class Condensation:
    """The condensation DAG of a directed graph.

    * ``components`` — list of SCCs (each a list of original nodes); the
      position in this list is the component id.
    * ``representative`` — the node chosen to stand for each component (the
      paper picks one "randomly"; we pick the smallest by string order so
      results are deterministic).
    * ``membership`` — original node -> component id.
    * ``dag`` — component id -> set of successor component ids (no self loops).
    """

    components: List[List[Hashable]]
    representative: List[Hashable]
    membership: Dict[Hashable, int]
    dag: Dict[int, Set[int]]

    def component_of(self, node: Hashable) -> int:
        """Return the component id containing ``node``."""
        return self.membership[node]

    def same_component(self, first: Hashable, second: Hashable) -> bool:
        """Return whether two original nodes are in the same SCC (mutually reachable)."""
        return self.membership[first] == self.membership[second]

    def number_of_components(self) -> int:
        """Return the number of SCCs."""
        return len(self.components)

    def component_sizes(self) -> List[int]:
        """Return the SCC sizes, largest first."""
        return sorted((len(component) for component in self.components), reverse=True)

    def is_trivial(self) -> bool:
        """Return whether every SCC is a single node (the graph was already a DAG)."""
        return all(len(component) == 1 for component in self.components)


def condense(adjacency: Adjacency) -> Condensation:
    """Collapse every SCC into one node and return the resulting DAG."""
    components = strongly_connected_components(adjacency)
    membership: Dict[Hashable, int] = {}
    for component_id, component in enumerate(components):
        for node in component:
            membership[node] = component_id
    representative = [min(component, key=str) for component in components]
    dag: Dict[int, Set[int]] = {component_id: set() for component_id in range(len(components))}
    for node, successors in adjacency.items():
        source_component = membership[node]
        for successor in successors:
            target_component = membership[successor]
            if source_component != target_component:
                dag[source_component].add(target_component)
    return Condensation(
        components=components,
        representative=representative,
        membership=membership,
        dag=dag,
    )
