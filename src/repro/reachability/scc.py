"""Strongly connected components and DAG condensation (Tarjan, Section 3.2).

"A directed acyclic graph G1 is first built based on the obtained line
social graph L(G), by identifying its strongly connected components...  each
SCC in L(G) is represented through a randomly selected node from that SCC...
This transformation will not cause any loss of reachability information,
given that any two nodes in the same SCC are necessarily reachable.  The
algorithm for determining SCCs is Tarjan's algorithm."

The implementation works on a plain adjacency mapping (``node -> iterable of
successors``) so that it can be applied to the line graph, to the social
graph, or to any directed graph in tests.  Tarjan's algorithm is implemented
iteratively — the line graphs of large social networks easily exceed
Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple

__all__ = ["strongly_connected_components", "Condensation", "condense"]

Adjacency = Mapping[Hashable, Iterable[Hashable]]


def strongly_connected_components(adjacency: Adjacency) -> List[List[Hashable]]:
    """Return the SCCs of a directed graph (Tarjan's algorithm, iteratively).

    The input maps each node to its successors; nodes appearing only as
    successors are included automatically.  Components are returned in
    reverse topological order (a component appears before any component it
    can reach is *not* guaranteed; use :func:`condense` when order matters).
    """
    nodes: List[Hashable] = list(adjacency)
    known: Set[Hashable] = set(nodes)
    for successors in adjacency.values():
        for successor in successors:
            if successor not in known:
                known.add(successor)
                nodes.append(successor)

    index_counter = 0
    indices: Dict[Hashable, int] = {}
    lowlinks: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []

    for root in nodes:
        if root in indices:
            continue
        # Each work-stack entry is (node, iterator over its successors).
        work: List[Tuple[Hashable, Iterable]] = [(root, iter(adjacency.get(root, ())))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass
class Condensation:
    """The condensation DAG of a directed graph.

    * ``components`` — list of SCCs (each a list of original nodes); the
      position in this list is the component id.
    * ``representative`` — the node chosen to stand for each component (the
      paper picks one "randomly"; we pick the smallest by string order so
      results are deterministic).
    * ``membership`` — original node -> component id.
    * ``dag`` — component id -> set of successor component ids (no self loops).
    """

    components: List[List[Hashable]]
    representative: List[Hashable]
    membership: Dict[Hashable, int]
    dag: Dict[int, Set[int]]

    def component_of(self, node: Hashable) -> int:
        """Return the component id containing ``node``."""
        return self.membership[node]

    def same_component(self, first: Hashable, second: Hashable) -> bool:
        """Return whether two original nodes are in the same SCC (mutually reachable)."""
        return self.membership[first] == self.membership[second]

    def number_of_components(self) -> int:
        """Return the number of SCCs."""
        return len(self.components)

    def component_sizes(self) -> List[int]:
        """Return the SCC sizes, largest first."""
        return sorted((len(component) for component in self.components), reverse=True)

    def is_trivial(self) -> bool:
        """Return whether every SCC is a single node (the graph was already a DAG)."""
        return all(len(component) == 1 for component in self.components)


def condense(adjacency: Adjacency) -> Condensation:
    """Collapse every SCC into one node and return the resulting DAG."""
    components = strongly_connected_components(adjacency)
    membership: Dict[Hashable, int] = {}
    for component_id, component in enumerate(components):
        for node in component:
            membership[node] = component_id
    representative = [min(component, key=str) for component in components]
    dag: Dict[int, Set[int]] = {component_id: set() for component_id in range(len(components))}
    for node, successors in adjacency.items():
        source_component = membership[node]
        for successor in successors:
            target_component = membership[successor]
            if source_component != target_component:
                dag[source_component].add(target_component)
    return Condensation(
        components=components,
        representative=representative,
        membership=membership,
        dag=dag,
    )
