"""Transitive-closure precomputation — the paper's second baseline.

"Another option is to precompute the transitive closure of the social graph
and record the reachability between any pair of vertices in the graph, in
advance.  While this approach can answer reachability queries in O(1) time,
the computation of the transitive closure has a complexity of O(|V| · |E|)
and the storage cost is O(|E|^2)" (Section 1).

:class:`TransitiveClosureIndex` materializes exactly that: for every user the
set of users reachable from it, globally and per relationship type, in both
directions.  Plain reachability questions are answered with one set lookup.
The build sweeps over ``compile_graph``'s snapshot (acquired once at
``build()`` time; under churn the acquisition itself may be a delta patch of
the shared snapshot rather than a rebuild), and the closure's contents are
copied out into plain sets — the index is a frozen build-time artifact
either way, while the inner constrained BFS always sees the live graph.
:class:`TransitiveClosureEvaluator` layers the ordered label-constraint
semantics on top: the closure is used to *prune* (if the requester is not
reachable at all, or not reachable in the filtered per-label closures, the
query is rejected without any traversal) and a constrained search is run only
for the survivors — the "TC-accelerated online search" configuration used in
the benchmarks.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError
from repro.graph.compiled import CSR, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.compiled_search import SweepPlanSideChannel
from repro.reachability.result import EvaluationResult

__all__ = ["TransitiveClosureIndex", "TransitiveClosureEvaluator"]


def _int_descendants(start: int, node_count: int, adjacencies: Sequence[CSR]) -> List[int]:
    """Collect every node reachable from ``start`` over the given CSR arrays.

    ``start`` itself is included only when a cycle leads back to it, matching
    the dict-based closure semantics.
    """
    seen = bytearray(node_count)
    stack = [start]
    reached: List[int] = []
    while stack:
        node = stack.pop()
        for offsets, targets in adjacencies:
            for position in range(offsets[node], offsets[node + 1]):
                neighbor = targets[position]
                if not seen[neighbor]:
                    seen[neighbor] = 1
                    reached.append(neighbor)
                    stack.append(neighbor)
    return reached


class TransitiveClosureIndex:
    """Materialized reachability sets, global and per relationship type."""

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        self._built = False
        self._global: Dict[Hashable, Set[Hashable]] = {}
        self._undirected: Dict[Hashable, Set[Hashable]] = {}
        self._per_label: Dict[str, Dict[Hashable, Set[Hashable]]] = {}
        self.build_seconds = 0.0

    # ---------------------------------------------------------------- build

    def build(self) -> "TransitiveClosureIndex":
        """Compute every closure by one sweep per (user, label-filter) pair.

        On a :class:`SocialGraph` the sweeps run over the compiled CSR
        snapshot — integer adjacency, a byte-array seen set — instead of the
        dict-of-dicts structure; the asymptotics are unchanged (this is the
        paper's deliberately expensive baseline) but the constants drop by
        an order of magnitude.
        """
        started = time.perf_counter()
        if isinstance(self.graph, SocialGraph):
            self._build_compiled()
        else:
            self._build_uncompiled()
        self.build_seconds = time.perf_counter() - started
        self._built = True
        return self

    def _build_compiled(self) -> None:
        snapshot = compile_graph(self.graph)
        node_count = snapshot.number_of_nodes()
        user_of = snapshot.node_ids
        # Tombstoned slots (remove_user deltas) hold no user and no edges —
        # skip them so the closure keys exactly the live user set.
        dead = snapshot.dead_slots
        live = [index for index in range(node_count) if index not in dead]
        forward = [snapshot.forward()]
        both = [snapshot.forward(), snapshot.backward()]
        self._global = {
            user_of[index]: {user_of[reached] for reached in
                             _int_descendants(index, node_count, forward)}
            for index in live
        }
        self._undirected = {
            user_of[index]: {user_of[reached] for reached in
                             _int_descendants(index, node_count, both)}
            for index in live
        }
        self._per_label = {
            label: {
                user_of[index]: {user_of[reached] for reached in
                                 _int_descendants(index, node_count,
                                                  [snapshot.forward(label_id)])}
                for index in live
            }
            for label_id, label in enumerate(snapshot.labels)
        }

    def _build_uncompiled(self) -> None:
        labels = self.graph.labels()
        self._global = {user: self._descendants(user, None, undirected=False)
                        for user in self.graph.users()}
        self._undirected = {user: self._descendants(user, None, undirected=True)
                            for user in self.graph.users()}
        self._per_label = {
            label: {user: self._descendants(user, label, undirected=False)
                    for user in self.graph.users()}
            for label in labels
        }

    def _descendants(self, source: Hashable, label: Optional[str], *, undirected: bool) -> Set[Hashable]:
        reached: Set[Hashable] = set()
        queue = deque([source])
        while queue:
            user = queue.popleft()
            for neighbor in self.graph.successors(user, label):
                if neighbor not in reached:
                    reached.add(neighbor)
                    queue.append(neighbor)
            if undirected:
                for neighbor in self.graph.predecessors(user, label):
                    if neighbor not in reached:
                        reached.add(neighbor)
                        queue.append(neighbor)
        return reached

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("call build() before querying the transitive closure")

    # -------------------------------------------------------------- queries

    def reachable(self, source: Hashable, target: Hashable) -> bool:
        """O(1): is ``target`` reachable from ``source`` following any labels forward?"""
        self._require_built()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        return source == target or target in self._global[source]

    def reachable_undirected(self, source: Hashable, target: Hashable) -> bool:
        """O(1): is ``target`` connected to ``source`` ignoring edge directions?"""
        self._require_built()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        return source == target or target in self._undirected[source]

    def reachable_with_label(self, source: Hashable, target: Hashable, label: str) -> bool:
        """O(1): is ``target`` reachable from ``source`` using only ``label`` edges forward?"""
        self._require_built()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if source == target:
            return True
        return target in self._per_label.get(label, {}).get(source, set())

    def descendants(self, source: Hashable, label: Optional[str] = None) -> Set[Hashable]:
        """Return the reachability set of ``source`` (optionally restricted to one label)."""
        self._require_built()
        if label is None:
            return set(self._global[source])
        return set(self._per_label.get(label, {}).get(source, set()))

    # ------------------------------------------------------------ statistics

    def size(self) -> int:
        """Total number of stored (source, target) reachability facts."""
        self._require_built()
        total = sum(len(reached) for reached in self._global.values())
        total += sum(len(reached) for reached in self._undirected.values())
        for per_user in self._per_label.values():
            total += sum(len(reached) for reached in per_user.values())
        return total

    def statistics(self) -> Dict[str, float]:
        """Return size and build-time metrics for the index benchmarks."""
        return {
            "index_entries": float(self.size()) if self._built else 0.0,
            "build_seconds": self.build_seconds,
            "labels": float(len(self._per_label)),
        }


class TransitiveClosureEvaluator(SweepPlanSideChannel):
    """Constrained-query evaluator that prunes with the transitive closure.

    The closure alone cannot answer ordered label-constraint queries (it
    "can only be used to answer reachability Yes/No questions, and cannot
    tell how the connection is made", Section 4), so impossible queries are
    rejected in O(1) and the rest are delegated to the constrained BFS.
    """

    name = "transitive-closure"

    def __init__(self, graph: SocialGraph) -> None:
        self.graph = graph
        self.index = TransitiveClosureIndex(graph)
        self._bfs = OnlineBFSEvaluator(graph)
        self._built = False

    def build(self) -> "TransitiveClosureEvaluator":
        """Materialize the closure index."""
        self.index.build()
        self._built = True
        return self

    def statistics(self) -> Dict[str, float]:
        """Return the underlying closure-index statistics."""
        return self.index.statistics()

    # ------------------------------------------------------------------ api

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression: PathExpression,
        *,
        collect_witness: bool = True,
    ) -> EvaluationResult:
        """Evaluate the query, short-circuiting through the closure when possible."""
        if not self._built:
            raise IndexNotBuiltError("call build() before evaluating queries")
        started = time.perf_counter()
        if not self.graph.has_user(source):
            raise NodeNotFoundError(source)
        if not self.graph.has_user(target):
            raise NodeNotFoundError(target)
        pruned = self._prune(source, target, expression)
        if pruned:
            result = EvaluationResult(reachable=False, backend=self.name)
            result.count("closure_pruned")
            result.elapsed_seconds = time.perf_counter() - started
            return result
        inner = self._bfs.evaluate(source, target, expression, collect_witness=collect_witness)
        result = EvaluationResult(
            reachable=inner.reachable,
            witness=inner.witness,
            backend=self.name,
            counters=dict(inner.counters),
        )
        result.count("closure_checked")
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def find_targets(self, source: Hashable, expression: PathExpression) -> Set[Hashable]:
        """Return every user reachable from ``source`` under ``expression``."""
        if not self._built:
            raise IndexNotBuiltError("call build() before evaluating queries")
        return self._bfs.find_targets(source, expression)

    def sweep_targets_many(
        self, sources, expression: PathExpression, *, direction: str = "auto"
    ):
        """Batched :meth:`find_targets`, delegated to the multi-source BFS sweep.

        The closure prunes single (source, target) decisions, not audience
        materialization, so the inner evaluator's owner-bitset sweep is used
        as-is.  Returns ``({owner: audience}, executed SweepPlan or None)``.
        """
        if not self._built:
            raise IndexNotBuiltError("call build() before evaluating queries")
        return self._bfs.sweep_targets_many(sources, expression, direction=direction)

    # find_targets_many (the audiences-only legacy wrapper) is inherited
    # from SweepPlanSideChannel, shared by all four backends.

    # ---------------------------------------------------------------- prune

    def _prune(self, source: Hashable, target: Hashable, expression: PathExpression) -> bool:
        """Return True when the closure proves the query unsatisfiable."""
        directions = {step.direction for step in expression}
        if directions <= {Direction.OUTGOING}:
            # Forward-only query: the requester must at least be forward-reachable.
            if not self.index.reachable(source, target):
                return True
            # Single-step forward query: the per-label closure is exact on labels
            # (still ignores distance/attributes, so it can only prune).
            if len(expression) == 1:
                label = expression[0].label
                if not self.index.reachable_with_label(source, target, label):
                    return True
            return False
        # Mixed or backward directions: only the undirected closure is a sound filter.
        return not self.index.reachable_undirected(source, target)
