"""2-hop cover and 2-hop reachability labeling (Section 3.2, Definitions 5–6).

A 2-hop reachability labeling assigns to every vertex ``v`` two sets of
*centers*, ``Lin(v)`` and ``Lout(v)``, such that

    ``u ⇝ v   iff   Lout(u) ∩ Lin(v) ≠ ∅``

(and trivially when ``u == v``).  Every element of ``Lout(u)`` is a center
reachable from ``u`` and every element of ``Lin(v)`` is a center that reaches
``v``, so the labeling never produces false positives; the construction must
make sure every reachable pair is covered by at least one shared center.

The paper relies on Cheng et al.'s ``MaxCardinalityG`` algorithm.  We use the
same greedy idea — repeatedly pick the center covering the most uncovered
reachable pairs — implemented as a deterministic single pass over candidate
centers ordered by (ancestors × descendants) coverage, operating on the
condensation DAG with integer bitsets for the reachability sets.  The output
contract (Definition 5) is identical and is what the join index, the base
tables and all the property-based tests depend on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set

from repro.graph.compiled import build_csr
from repro.reachability.interned import dag_reachability_bitsets, two_hop_cover_dense
from repro.reachability.interval import topological_order
from repro.reachability.scc import Condensation, condense

__all__ = ["TwoHopCover", "TwoHopLabeling", "TwoHopIndex"]

Adjacency = Mapping[Hashable, Iterable[Hashable]]


@dataclass
class TwoHopLabeling:
    """The 2-hop label of one vertex: its ``Lin`` and ``Lout`` center sets."""

    lin: FrozenSet[Hashable] = frozenset()
    lout: FrozenSet[Hashable] = frozenset()

    def size(self) -> int:
        """Return ``|Lin| + |Lout|`` (the labeling-size metric of Definition 5)."""
        return len(self.lin) + len(self.lout)


class TwoHopCover:
    """Greedy 2-hop cover of a DAG given as an adjacency mapping."""

    def __init__(self, adjacency: Adjacency) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {
            node: set(successors) for node, successors in adjacency.items()
        }
        for successors in list(self._adjacency.values()):
            for successor in successors:
                self._adjacency.setdefault(successor, set())
        self._order = topological_order(self._adjacency)
        self._position = {node: index for index, node in enumerate(self._order)}
        self.lin: Dict[Hashable, Set[Hashable]] = {node: set() for node in self._adjacency}
        self.lout: Dict[Hashable, Set[Hashable]] = {node: set() for node in self._adjacency}
        self.centers: List[Hashable] = []
        self.build_seconds = 0.0
        self._build()

    # ---------------------------------------------------------------- build

    def _build(self) -> None:
        """Intern nodes onto topological positions and run the dense cover core.

        Candidate centers keep the historical deterministic order — greedy
        coverage descending, ties broken by the node's string form — so the
        produced cover is byte-identical to the pre-interning implementation.
        """
        started = time.perf_counter()
        order = self._order
        position = self._position
        count = len(order)
        pairs = [
            (position[node], position[successor])
            for node, successors in self._adjacency.items()
            for successor in successors
        ]
        offsets, targets = build_csr(pairs, count)
        topo = range(count)
        bitsets = dag_reachability_bitsets(count, offsets, targets, topo)
        _positions, descendants, ancestors = bitsets

        def coverage(index: int) -> int:
            a = bin(ancestors[index]).count("1") + 1
            d = bin(descendants[index]).count("1") + 1
            return a * d

        candidates = sorted(
            range(count), key=lambda index: (-coverage(index), str(order[index]))
        )
        lin, lout, centers = two_hop_cover_dense(
            count, offsets, targets, topo, candidates, bitsets
        )
        self.centers = [order[index] for index in centers]
        for index, node in enumerate(order):
            self.lin[node] = {order[center] for center in lin[index]}
            self.lout[node] = {order[center] for center in lout[index]}
        self.build_seconds = time.perf_counter() - started

    # -------------------------------------------------------------- queries

    def reachable(self, source: Hashable, target: Hashable) -> bool:
        """Return whether ``target`` is reachable from ``source`` in the DAG."""
        if source == target:
            return True
        return not self.lout[source].isdisjoint(self.lin[target])

    def label(self, node: Hashable) -> TwoHopLabeling:
        """Return the 2-hop label of a node."""
        return TwoHopLabeling(lin=frozenset(self.lin[node]), lout=frozenset(self.lout[node]))

    def labeling_size(self) -> int:
        """Return the total labeling size ``sum |Lin(v)| + |Lout(v)|``."""
        return sum(len(self.lin[node]) + len(self.lout[node]) for node in self._adjacency)

    def number_of_centers(self) -> int:
        """Return how many centers the cover uses."""
        return len(self.centers)


class TwoHopIndex:
    """2-hop reachability labeling of an arbitrary directed graph.

    The graph is first condensed (Tarjan SCCs, as in the paper) and the cover
    is computed on the DAG; original vertices inherit the label of their
    component.  Center identifiers exposed to callers are the *representative
    vertices* of the center components, which is what the base tables and the
    W-table store.
    """

    def __init__(self, adjacency: Adjacency) -> None:
        started = time.perf_counter()
        self.condensation: Condensation = condense(adjacency)
        self.cover = TwoHopCover(self.condensation.dag)
        self.build_seconds = time.perf_counter() - started

    # -------------------------------------------------------------- queries

    def _component(self, node: Hashable) -> int:
        return self.condensation.component_of(node)

    def reachable(self, source: Hashable, target: Hashable) -> bool:
        """Return whether ``target`` is reachable from ``source`` in the original graph."""
        source_component = self._component(source)
        target_component = self._component(target)
        if source_component == target_component:
            return True
        return self.cover.reachable(source_component, target_component)

    def _center_name(self, component_id: Hashable) -> Hashable:
        return self.condensation.representative[component_id]

    def label(self, node: Hashable) -> TwoHopLabeling:
        """Return the 2-hop label of an original vertex (centers named by representatives).

        Vertices belonging to a non-trivial SCC additionally carry their
        component representative in both ``Lin`` and ``Lout``: members of the
        same SCC are mutually reachable, and sharing the representative as a
        center keeps the Definition-5 contract (``u ⇝ v iff Lout(u) ∩ Lin(v)
        ≠ ∅``) valid at the level of original vertices, which the base tables
        and reachability joins rely on.
        """
        component = self._component(node)
        lin = {self._center_name(c) for c in self.cover.lin[component]}
        lout = {self._center_name(c) for c in self.cover.lout[component]}
        if len(self.condensation.components[component]) > 1:
            representative = self.condensation.representative[component]
            lin.add(representative)
            lout.add(representative)
        return TwoHopLabeling(lin=frozenset(lin), lout=frozenset(lout))

    def centers(self) -> List[Hashable]:
        """Return the center identifiers (component representatives)."""
        return [self._center_name(component) for component in self.cover.centers]

    def labeling_size(self) -> int:
        """Return ``sum |Lin(v)| + |Lout(v)|`` over original vertices."""
        return sum(self.label(node).size() for node in self.condensation.membership)

    def statistics(self) -> Dict[str, float]:
        """Return build-time and size metrics for the index benchmarks."""
        return {
            "build_seconds": self.build_seconds,
            "index_entries": float(self.labeling_size()),
            "centers": float(self.cover.number_of_centers()),
            "components": float(self.condensation.number_of_components()),
        }
