"""Reliability layer: fault injection, crash-safe recovery, degradation.

Three cooperating pieces, none of which the hot paths pay for unless
engaged:

* :mod:`~repro.reliability.faults` + :mod:`~repro.reliability.crashsim` —
  deterministic fault injection over the snapshot I/O seam and the
  crash-consistency simulator that proves ``checkpoint()`` atomic at every
  injection point;
* :mod:`~repro.reliability.guard` — cooperative per-query step budgets and
  deadlines for the traversal sweeps (typed
  :class:`~repro.exceptions.QueryBudgetExceeded`, partial results on bulk
  shapes);
* :mod:`~repro.reliability.breaker` — a circuit breaker that prices failing
  index backends out of the planner until half-open probes restore them.

The dependency direction is strictly ``reliability -> graph``: the
persistence layer knows only the neutral
:class:`~repro.graph.snapshot.SnapshotIOHooks` seam, never the injector.
"""

from repro.graph.snapshot import RecoveryReport, SnapshotIOHooks
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.crashsim import (
    CrashConsistencySimulator,
    CrashOutcome,
    CrashReport,
    snapshot_fingerprint,
)
from repro.reliability.faults import FAULT_KINDS, FaultInjector, SimulatedCrash
from repro.reliability.guard import (
    QueryGuard,
    active_guard,
    deadline_scope,
    request_deadline,
)

__all__ = [
    "CircuitBreaker",
    "CrashConsistencySimulator",
    "CrashOutcome",
    "CrashReport",
    "FAULT_KINDS",
    "FaultInjector",
    "QueryGuard",
    "RecoveryReport",
    "SimulatedCrash",
    "SnapshotIOHooks",
    "active_guard",
    "deadline_scope",
    "request_deadline",
    "snapshot_fingerprint",
]
