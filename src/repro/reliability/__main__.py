"""``python -m repro.reliability`` runs the crash-consistency simulator."""

import sys

from repro.reliability.crashsim import main

if __name__ == "__main__":
    sys.exit(main())
