"""A circuit breaker for expensive index maintenance (build / refresh).

The cluster index and the transitive closure are *optional* accelerators:
every query they serve can also be answered by the compiled walk, just
slower.  When index maintenance starts failing — an allocation blowing up on
a pathological graph, a bug tripping on some input, maintenance repeatedly
exceeding its time budget — the correct degraded behaviour is to stop
paying for it and serve via the walk, not to fail queries.

Classic three-state breaker semantics:

* **closed** — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker;
* **open** — the backend is priced out: the planner marks it unavailable
  (``available=False``, note ``"circuit breaker open"``) so auto plans route
  to a walking backend.  After ``cooldown_seconds`` the breaker becomes
  half-open;
* **half-open** — exactly one probe is allowed through; success closes the
  breaker, failure reopens it (and restarts the cooldown).

A build that *succeeds* but takes longer than ``slow_threshold_seconds``
counts as a failure — a timeout by outcome rather than by interruption,
since Python offers no safe preemption of a compute-bound build.  The clock
is injectable so tests (and the deterministic simulator) drive state
transitions without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Trip after consecutive failures; recover through half-open probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        slow_threshold_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.slow_threshold_seconds = slow_threshold_seconds
        self._clock = clock
        self._opened_at: Optional[float] = None
        self._probing = False
        self.consecutive_failures = 0
        self.trip_count = 0
        self.last_failure: Optional[str] = None

    # ------------------------------------------------------------------ state

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (cooldown elapsed)."""
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown_seconds:
            return self.HALF_OPEN
        return self.OPEN

    @property
    def blocking(self) -> bool:
        """Should the planner price this backend out right now?

        ``True`` while open, and *also* while half-open once the single
        probe slot is taken — exactly one caller gets to test the backend;
        everyone else keeps degrading until the probe settles.
        """
        state = self.state
        if state == self.CLOSED:
            return False
        if state == self.OPEN:
            return True
        return self._probing

    def allow_probe(self) -> bool:
        """Claim the half-open probe slot (closed state always allows)."""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    # ---------------------------------------------------------------- outcome

    def record_success(self, *, duration: Optional[float] = None) -> None:
        """A maintenance run completed — slow success still counts against us."""
        if (
            duration is not None
            and self.slow_threshold_seconds is not None
            and duration > self.slow_threshold_seconds
        ):
            self.record_failure(
                reason=f"slow build: {duration:.3f}s > {self.slow_threshold_seconds}s"
            )
            return
        self._opened_at = None
        self._probing = False
        self.consecutive_failures = 0

    def record_failure(self, *, reason: str = "build failed") -> None:
        self.consecutive_failures += 1
        self.last_failure = reason
        self._probing = False
        if self._opened_at is not None:
            # Half-open probe failed: reopen and restart the cooldown.
            self._opened_at = self._clock()
            self.trip_count += 1
        elif self.consecutive_failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self.trip_count += 1

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} failures={self.consecutive_failures}"
            f"/{self.failure_threshold} trips={self.trip_count}>"
        )
