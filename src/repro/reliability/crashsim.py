"""Crash-consistency simulator for :meth:`SnapshotStore.checkpoint`.

The atomicity claim of the persistence layer is: *whatever instant the
process dies during a checkpoint, a restart recovers to exactly the
pre-checkpoint or post-checkpoint snapshot — never a corrupt file served,
never a silently stale one.*  This module turns that claim into an
exhaustive, deterministic experiment:

1. **Discover** the injection points of a checkpoint shape by dry-running it
   with an un-armed :class:`FaultInjector` and reading its trace.  Three
   shapes are exercised — ``base`` (first checkpoint writes the base),
   ``delta`` (a journal burst appends a segment) and ``rebase`` (segment
   budget exhausted: base rewrite + segment unlink).
2. **Enumerate** every (point, occurrence) × applicable-fault-kind pair.
3. For each case, rebuild the same graph from the seed, arm exactly that
   fault, run ``checkpoint()`` and catch the simulated death.
4. **Recover** as a fresh process would: open a new store (reap + fsck),
   and assert that (a) a standalone ``load()`` yields exactly the pre- or
   post-checkpoint state (or nothing at all — "absent" is safe, wrong is
   not), and (b) ``load_or_compile()`` with the rebuilt live graph lands on
   the post-checkpoint state, rewriting the store when needed.

Run it from the command line (CI does, with a fixed seed set)::

    python -m repro.reliability.crashsim --seeds 0,1,2 --out report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.reliability.faults import KINDS_BY_STAGE, FaultInjector, SimulatedCrash

__all__ = [
    "CrashConsistencySimulator",
    "CrashOutcome",
    "CrashReport",
    "SCENARIOS",
    "snapshot_fingerprint",
]

#: Checkpoint shapes the simulator exercises.
SCENARIOS = ("base", "delta", "rebase")

_NO_SLEEP = lambda seconds: None  # noqa: E731 - retry backoff is pointless here


def snapshot_fingerprint(snapshot: CompiledGraph) -> Dict[str, Any]:
    """A structural digest of a compiled graph, comparable with ``==``.

    Captures live users, every labelled edge and the attribute table —
    enough that two snapshots with equal fingerprints answer every
    reachability query identically.
    """
    dead = snapshot.dead_slots
    users = sorted(
        repr(user) for index, user in enumerate(snapshot.node_ids) if index not in dead
    )
    edges: List[Tuple[str, str, str]] = []
    for label_id, label in enumerate(snapshot.labels):
        offsets, targets = snapshot.forward(label_id)
        for node in range(len(snapshot.node_ids)):
            if node in dead:
                continue
            for position in range(offsets[node], offsets[node + 1]):
                edges.append(
                    (repr(snapshot.node_ids[node]), label, repr(snapshot.node_ids[targets[position]]))
                )
    attrs = {
        repr(user): dict(snapshot.attrs[index])
        for index, user in enumerate(snapshot.node_ids)
        if index not in dead
    }
    return {"users": users, "edges": sorted(edges), "attrs": attrs}


def default_graph(seed: int = 0) -> SocialGraph:
    """A small deterministic social graph (friend/follows/blocked edges)."""
    graph = SocialGraph(f"crashsim-{seed}")
    users = [f"u{i}" for i in range(24)]
    for index, user in enumerate(users):
        graph.add_user(user, age=20 + (index * 7 + seed) % 40, tier=index % 3)
    for index in range(len(users)):
        graph.add_relationship(users[index], users[(index + 1) % len(users)], "friend")
        if index % 2 == 0:
            graph.add_relationship(users[index], users[(index + 5) % len(users)], "follows")
        if index % 5 == 0:
            graph.add_relationship(users[index], users[(index + 3) % len(users)], "blocked")
    return graph


def default_mutation(graph: SocialGraph, seed: int = 0) -> None:
    """A deterministic journal burst: adds, updates, edge churn, a removal."""
    users = sorted(graph.users())
    graph.add_user(f"new-{seed}", age=99, tier=9)
    graph.add_relationship(f"new-{seed}", users[0], "friend")
    graph.add_relationship(users[1], f"new-{seed}", "follows")
    graph.update_user(users[2], age=77)
    graph.remove_relationship(users[0], users[1], "friend")
    graph.add_relationship(users[0], users[2], "friend")
    graph.remove_user(users[3])


@dataclass
class CrashOutcome:
    """What one (scenario, point, occurrence, kind) case did and recovered to."""

    scenario: str
    point: str
    occurrence: int
    kind: str
    died: Optional[str]
    checkpoint_result: Optional[str]
    standalone_state: str
    recovery_source: str
    quarantined: Tuple[str, ...]
    reaped_tmp: Tuple[str, ...]
    ok: bool
    notes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "point": self.point,
            "occurrence": self.occurrence,
            "kind": self.kind,
            "died": self.died,
            "checkpoint_result": self.checkpoint_result,
            "standalone_state": self.standalone_state,
            "recovery_source": self.recovery_source,
            "quarantined": list(self.quarantined),
            "reaped_tmp": list(self.reaped_tmp),
            "ok": self.ok,
            "notes": list(self.notes),
        }


@dataclass
class CrashReport:
    """All outcomes of one simulator run (JSON-friendly, uploaded by CI)."""

    seed: int
    outcomes: List[CrashOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> List[CrashOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def points_covered(self) -> Dict[str, int]:
        covered: Dict[str, int] = {}
        for outcome in self.outcomes:
            covered[outcome.point] = covered.get(outcome.point, 0) + 1
        return covered

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "cases": len(self.outcomes),
            "passed": self.passed,
            "failures": [outcome.to_dict() for outcome in self.failures()],
            "points_covered": self.points_covered(),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


class CrashConsistencySimulator:
    """Kill ``checkpoint()`` at every injection point; assert safe recovery."""

    def __init__(
        self,
        directory,
        *,
        seed: int = 0,
        scenarios: Sequence[str] = SCENARIOS,
        kinds: Optional[Sequence[str]] = None,
        graph_factory: Callable[[int], SocialGraph] = default_graph,
        mutator: Callable[[SocialGraph, int], None] = default_mutation,
    ) -> None:
        self.directory = Path(directory)
        self.seed = seed
        self.scenarios = tuple(scenarios)
        self.kinds = tuple(kinds) if kinds is not None else None
        self.graph_factory = graph_factory
        self.mutator = mutator
        unknown = set(self.scenarios) - set(SCENARIOS)
        if unknown:
            raise ValueError(f"unknown scenarios {sorted(unknown)!r}")

    # ---------------------------------------------------------------- scaffold

    def _open_store(self, root: Path, injector: Optional[FaultInjector]) -> SnapshotStore:
        # ``rebase`` keeps one segment so the rebase epilogue has a segment
        # to unlink — that is where the ``delta.unlink`` point lives.
        max_segments = 1 if self._scenario == "rebase" else None
        return SnapshotStore(
            root / "graph.snap",
            io_hooks=injector,
            max_delta_segments=max_segments,
            sleep=_NO_SLEEP,
        )

    def _prepare(
        self, root: Path, injector: Optional[FaultInjector]
    ) -> Tuple[SocialGraph, SnapshotStore, Optional[Dict[str, Any]], Optional[int]]:
        """Build the scenario's starting disk state; return pre-state info.

        After this, calling ``store.checkpoint(graph)`` performs exactly the
        checkpoint shape under test (base write, delta append, or rebase).
        """
        graph = self.graph_factory(self.seed)
        store = self._open_store(root, injector)
        pre_state: Optional[Dict[str, Any]] = None
        pre_epoch: Optional[int] = None
        if self._scenario != "base":
            store.checkpoint(graph)  # clean base
            if self._scenario == "rebase":
                # One delta segment on disk; the next burst exhausts the
                # budget (max_delta_segments=1) and forces a rebase.
                self.mutator(graph, self.seed)
                store.checkpoint(graph)
            pre_state = snapshot_fingerprint(compile_graph(graph))
            pre_epoch = graph.epoch
            self.mutator(graph, self.seed + 1)
        return graph, store, pre_state, pre_epoch

    def _rebuild_graph(self) -> SocialGraph:
        """The same live graph the dead process had, rebuilt from the seed."""
        graph = self.graph_factory(self.seed)
        if self._scenario != "base":
            if self._scenario == "rebase":
                self.mutator(graph, self.seed)
            self.mutator(graph, self.seed + 1)
        return graph

    def _discover(self, root: Path) -> List[Tuple[str, int]]:
        """Dry-run the scenario; return its (point, occurrence) pairs."""
        injector = FaultInjector(seed=self.seed)
        graph, store, _, _ = self._prepare(root, injector)
        injector.trace.clear()  # only the checkpoint under test counts
        store.checkpoint(graph)
        pairs: List[Tuple[str, int]] = []
        seen: Dict[str, int] = {}
        for point in injector.trace:
            occurrence = seen.get(point, 0)
            seen[point] = occurrence + 1
            pairs.append((point, occurrence))
        return pairs

    # -------------------------------------------------------------------- run

    def run(self) -> CrashReport:
        report = CrashReport(seed=self.seed)
        case = 0
        for scenario in self.scenarios:
            self._scenario = scenario
            discovery_root = self.directory / f"{scenario}-discovery"
            discovery_root.mkdir(parents=True, exist_ok=True)
            for point, occurrence in self._discover(discovery_root):
                stage = point.rsplit(".", 1)[-1]
                for kind in KINDS_BY_STAGE[stage]:
                    if self.kinds is not None and kind not in self.kinds:
                        continue
                    case += 1
                    root = self.directory / f"case-{case:04d}"
                    root.mkdir(parents=True, exist_ok=True)
                    report.outcomes.append(
                        self._run_case(root, scenario, point, occurrence, kind)
                    )
        return report

    def _run_case(
        self, root: Path, scenario: str, point: str, occurrence: int, kind: str
    ) -> CrashOutcome:
        self._scenario = scenario
        notes: List[str] = []
        injector = FaultInjector(seed=self.seed)
        graph, store, pre_state, pre_epoch = self._prepare(root, injector)
        post_state = snapshot_fingerprint(compile_graph(graph))
        post_epoch = graph.epoch
        injector.arm(point, kind, skip=occurrence)

        died: Optional[str] = None
        checkpoint_result: Optional[str] = None
        try:
            checkpoint_result = store.checkpoint(graph)
        except SimulatedCrash as crash:
            died = f"crash:{crash}"
        except OSError as error:
            died = f"oserror:{getattr(error, 'errno', None)}:{error}"
        if injector.pending():
            notes.append(f"armed fault at {point} never fired")

        # ---- restart: a fresh process opens the store (no faulty hooks).
        recovered = SnapshotStore(root / "graph.snap", sleep=_NO_SLEEP)
        fsck_report = recovered.fsck()

        ok = True
        standalone = "absent"
        try:
            loaded = recovered.load(verify=True)
        except FileNotFoundError:
            loaded = None
        except Exception as error:  # noqa: BLE001 - any error after fsck is a bug
            loaded = None
            standalone = f"unloadable:{type(error).__name__}"
            ok = False
            notes.append(f"load after fsck raised {error!r}")
        if loaded is not None:
            state = snapshot_fingerprint(loaded)
            if state == post_state and loaded.epoch == post_epoch:
                standalone = "post"
            elif (
                pre_state is not None
                and state == pre_state
                and loaded.epoch == pre_epoch
            ):
                standalone = "pre"
            else:
                standalone = "divergent"
                ok = False
                notes.append(
                    "standalone load is neither the pre- nor the "
                    f"post-checkpoint state (epoch {loaded.epoch})"
                )

        # ---- live warm start must land exactly on the post state.
        live_graph = self._rebuild_graph()
        snapshot, source = recovered.load_or_compile(live_graph)
        if snapshot_fingerprint(snapshot) != post_state or snapshot.epoch != post_epoch:
            ok = False
            notes.append(f"load_or_compile (source={source!r}) diverged from post state")

        # ---- and leave the store itself consistent for the next cycle.
        # A fallback recompile rewrites the store at the post epoch; a
        # "mapped"/"healed" adoption may legitimately leave the *disk* tip at
        # the pre epoch (the journal replay that bridged the gap lives in
        # memory until the next checkpoint).  Anything else is corruption.
        try:
            tip = recovered.tip_epoch()
            if tip != post_epoch and not (pre_epoch is not None and tip == pre_epoch):
                ok = False
                notes.append(
                    f"store tip {tip!r} is neither the pre- nor the "
                    "post-checkpoint epoch after recovery"
                )
        except Exception as error:  # noqa: BLE001
            ok = False
            notes.append(f"tip_epoch after recovery raised {error!r}")

        quarantined = tuple(fsck_report.quarantined)
        reaped = tuple(fsck_report.reaped_tmp)
        return CrashOutcome(
            scenario=scenario,
            point=point,
            occurrence=occurrence,
            kind=kind,
            died=died,
            checkpoint_result=checkpoint_result,
            standalone_state=standalone,
            recovery_source=source,
            quarantined=quarantined,
            reaped_tmp=reaped,
            ok=ok,
            notes=tuple(notes),
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the snapshot crash-consistency simulator."
    )
    parser.add_argument(
        "--seeds", default="0", help="comma-separated seed list (default: 0)"
    )
    parser.add_argument(
        "--scenarios",
        default=",".join(SCENARIOS),
        help=f"comma-separated subset of {SCENARIOS}",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    options = parser.parse_args(argv)
    seeds = [int(token) for token in options.seeds.split(",") if token.strip()]
    scenarios = [token for token in options.scenarios.split(",") if token.strip()]

    reports = []
    for seed in seeds:
        with tempfile.TemporaryDirectory(prefix="repro-crashsim-") as scratch:
            simulator = CrashConsistencySimulator(
                scratch, seed=seed, scenarios=scenarios
            )
            report = simulator.run()
        reports.append(report)
        covered = report.points_covered()
        print(
            f"seed {seed}: {len(report.outcomes)} cases over "
            f"{len(covered)} injection points -> "
            f"{'PASS' if report.passed else 'FAIL'}"
        )
        for failure in report.failures():
            print(
                f"  FAIL {failure.scenario}/{failure.point}"
                f"#{failure.occurrence} x {failure.kind}: {'; '.join(failure.notes)}"
            )

    if options.out:
        out_path = Path(options.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(
                {
                    "seeds": seeds,
                    "passed": all(report.passed for report in reports),
                    "reports": [report.to_dict() for report in reports],
                },
                indent=2,
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        print(f"report written to {out_path}")
    return 0 if all(report.passed for report in reports) else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
