"""Deterministic fault injection for the snapshot persistence layer.

:class:`FaultInjector` is a :class:`~repro.graph.snapshot.SnapshotIOHooks`
implementation that turns the store's I/O seam into a fault surface.  Arm a
fault at a named injection point and the injector fires it on the chosen
occurrence, deterministically — the only randomness is a seeded
:class:`random.Random` used when a torn-write offset or bit-flip position is
not given explicitly.

Injection points are ``<file>.<stage>`` where ``<file>`` is ``base`` (the
``.snap`` file) or ``delta`` (a segment), and ``<stage>`` is one of
``write`` / ``fsync`` / ``replace`` / ``replaced`` / ``read`` / ``unlink``
(see :class:`SnapshotIOHooks` for where each fires).  Fault kinds:

======================  =====================================================
``crash``               raise :class:`SimulatedCrash` — process death.  Valid
                        at every point.
``torn_write``          persist only the first *k* bytes of the tmp file,
                        then crash (the classic torn write).  ``write`` only.
``bit_flip``            flip one bit and complete *successfully* — silent
                        media corruption that only checksums can catch.
                        ``write`` and ``read``.
``enospc``              raise ``OSError(ENOSPC)`` — disk full.  ``write``.
``fsync_fail``          raise ``OSError(EIO)`` from fsync.  ``fsync``.
``partial_read``        return a truncated buffer from a whole-file read.
                        ``read``.
======================  =====================================================

:class:`SimulatedCrash` derives from :class:`BaseException`, **not**
:class:`Exception`: a real crash gives the writer no chance to run cleanup
handlers, so the injected one must skip ``except Exception`` cleanup (e.g.
the tmp-file unlink in ``_atomic_write``) and ``except OSError`` retry loops
exactly like ``kill -9`` would.  The tmp files it strands are what the
store's reap-on-open hygiene exists for.

The injector also keeps an append-only ``trace`` of every point it passed
through, so the crash-consistency simulator can *discover* the injection
points of a given checkpoint shape by dry-running it once, then enumerate
the full point × kind matrix.
"""

from __future__ import annotations

import errno
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.graph.snapshot import SnapshotIOHooks

__all__ = ["FAULT_KINDS", "FaultInjector", "SimulatedCrash"]

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "crash",
    "torn_write",
    "bit_flip",
    "enospc",
    "fsync_fail",
    "partial_read",
)

#: Which kinds are meaningful at which injection stage.
KINDS_BY_STAGE: Dict[str, Tuple[str, ...]] = {
    "write": ("crash", "torn_write", "bit_flip", "enospc"),
    "fsync": ("crash", "fsync_fail"),
    "replace": ("crash",),
    "replaced": ("crash",),
    "read": ("crash", "partial_read", "bit_flip"),
    "unlink": ("crash",),
}


class SimulatedCrash(BaseException):
    """The process 'died' at an injection point.

    A :class:`BaseException` on purpose: crash semantics mean no cleanup
    handlers run — ``except Exception`` blocks (tmp unlink) and ``except
    OSError`` retry loops must not see it.  Only the test/simulator harness
    that armed the fault catches it.
    """

    def __init__(self, point: str, detail: str = ""):
        super().__init__(f"simulated crash at {point}" + (f": {detail}" if detail else ""))
        self.point = point
        self.detail = detail


@dataclass
class _ArmedFault:
    point: str
    kind: str
    offset: Optional[int] = None
    skip: int = 0
    count: int = 1


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (kept in :attr:`FaultInjector.events`)."""

    point: str
    kind: str
    detail: str


class FaultInjector(SnapshotIOHooks):
    """Seeded, deterministic fault injection over the snapshot I/O seam."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        self._armed: List[_ArmedFault] = []
        self.events: List[FaultEvent] = []
        self.trace: List[str] = []

    # ------------------------------------------------------------------ armer

    def arm(
        self,
        point: str,
        kind: str,
        *,
        offset: Optional[int] = None,
        skip: int = 0,
        count: int = 1,
    ) -> "FaultInjector":
        """Arm ``kind`` at ``point``; fires on occurrence ``skip`` (0-based).

        ``count`` repeats the fault on consecutive occurrences after the
        skip — e.g. ``count=2`` makes the first retry fail too.  ``offset``
        pins the torn-write / bit-flip / partial-read byte position;
        without it the seeded RNG picks one.  Returns ``self`` for chaining.
        """
        stage = point.rsplit(".", 1)[-1]
        valid = KINDS_BY_STAGE.get(stage)
        if valid is None:
            raise ValueError(f"unknown injection point {point!r}")
        if kind not in valid:
            raise ValueError(f"fault kind {kind!r} is not valid at {point!r}")
        self._armed.append(
            _ArmedFault(point=point, kind=kind, offset=offset, skip=skip, count=count)
        )
        return self

    def pending(self) -> int:
        """Armed faults that have not fully fired yet."""
        return sum(1 for fault in self._armed if fault.count > 0)

    # --------------------------------------------------------------- plumbing

    @staticmethod
    def _file_kind(path: Path) -> str:
        return "base" if path.name.endswith(".snap") else "delta"

    def _visit(self, point: str) -> Optional[_ArmedFault]:
        """Record the point in the trace; return a fault due to fire there."""
        self.trace.append(point)
        for fault in self._armed:
            if fault.point != point or fault.count <= 0:
                continue
            if fault.skip > 0:
                fault.skip -= 1
                continue
            fault.count -= 1
            return fault
        return None

    def _fire(self, fault: _ArmedFault, detail: str = "") -> None:
        self.events.append(FaultEvent(fault.point, fault.kind, detail))

    def _flip_bit(self, payload: bytes, offset: Optional[int]) -> Tuple[bytes, int]:
        if not payload:
            return payload, 0
        position = (
            offset if offset is not None else self._random.randrange(len(payload))
        )
        position = min(position, len(payload) - 1)
        mutated = bytearray(payload)
        mutated[position] ^= 1 << self._random.randrange(8)
        return bytes(mutated), position

    # ------------------------------------------------------------- seam hooks

    def write_tmp(self, tmp: Path, final: Path, payload: bytes) -> None:
        kind = self._file_kind(final)
        fault = self._visit(f"{kind}.write")
        torn_at: Optional[int] = None
        if fault is not None:
            if fault.kind == "crash":
                self._fire(fault)
                raise SimulatedCrash(fault.point, "before the tmp write")
            if fault.kind == "enospc":
                self._fire(fault)
                raise OSError(errno.ENOSPC, "no space left on device (injected)")
            if fault.kind == "torn_write":
                torn_at = (
                    fault.offset
                    if fault.offset is not None
                    else self._random.randrange(max(1, len(payload)))
                )
                torn_at = min(torn_at, max(0, len(payload) - 1))
                self._fire(fault, f"torn at byte {torn_at} of {len(payload)}")
                payload = payload[:torn_at]
            elif fault.kind == "bit_flip":
                payload, position = self._flip_bit(payload, fault.offset)
                self._fire(fault, f"bit flipped at byte {position}")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            self.fsync(handle, final)
        if torn_at is not None:
            # The truncated tmp is durably on disk; the writer is dead.
            raise SimulatedCrash(f"{kind}.write", f"torn write at byte {torn_at}")

    def fsync(self, handle, final: Path) -> None:
        kind = self._file_kind(final)
        fault = self._visit(f"{kind}.fsync")
        if fault is not None:
            if fault.kind == "crash":
                self._fire(fault)
                raise SimulatedCrash(fault.point, "before fsync")
            if fault.kind == "fsync_fail":
                self._fire(fault)
                raise OSError(errno.EIO, "fsync failed (injected)")
        os.fsync(handle.fileno())

    def before_replace(self, tmp: Path, final: Path) -> None:
        fault = self._visit(f"{self._file_kind(final)}.replace")
        if fault is not None:
            self._fire(fault)
            raise SimulatedCrash(fault.point, "tmp durable, replace not yet issued")

    def after_replace(self, final: Path) -> None:
        fault = self._visit(f"{self._file_kind(final)}.replaced")
        if fault is not None:
            self._fire(fault)
            raise SimulatedCrash(fault.point, "new contents visible, epilogue undone")

    def after_read(self, path: Path, data: bytes) -> bytes:
        fault = self._visit(f"{self._file_kind(path)}.read")
        if fault is not None:
            if fault.kind == "crash":
                self._fire(fault)
                raise SimulatedCrash(fault.point, "during a read")
            if fault.kind == "partial_read":
                cut = (
                    fault.offset if fault.offset is not None else len(data) // 2
                )
                cut = max(0, min(cut, len(data)))
                self._fire(fault, f"returned {cut} of {len(data)} bytes")
                return data[:cut]
            if fault.kind == "bit_flip":
                data, position = self._flip_bit(data, fault.offset)
                self._fire(fault, f"bit flipped at byte {position}")
        return data

    def before_unlink(self, path: Path) -> None:
        fault = self._visit(f"{self._file_kind(path)}.unlink")
        if fault is not None:
            self._fire(fault)
            raise SimulatedCrash(fault.point, "segment still on disk")

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} armed={self.pending()} "
            f"fired={len(self.events)}>"
        )
