"""Cooperative query budgets: step limits and deadlines for traversal sweeps.

A :class:`QueryGuard` bounds how much work a single query may do.  The
traversal cores (:mod:`repro.reachability.compiled_search` and the cluster
matcher) call :meth:`QueryGuard.spend` from inside their sweep loops — once
per popped frontier entry, charged with the number of CSR positions scanned
since the previous tick — so a runaway product-graph search is interrupted
*cooperatively*, at a loop boundary, never mid-datastructure-update.

Two trip modes, chosen per query shape by :class:`~repro.service.facade.GraphService`:

* ``"raise"`` — point-shaped queries (``reach``, ``access``) raise a typed
  :class:`~repro.exceptions.QueryBudgetExceeded`: a truncated reachability
  answer would be *wrong* (an under-approximation reported as "unreachable"),
  so the only honest degraded answer is "over budget".
* ``"partial"`` — bulk shapes (``audience``, ``bulk``) stop expanding and
  surface whatever audiences were completed with ``partial=True`` on the
  result.  Partial results are never cached by the engine memos.

The active guard travels through a :mod:`contextvars` context variable
rather than a parameter thread — the sweep loops are called through several
layers of evaluator indirection that should not all grow a ``guard=``
argument.  ``active_guard()`` is the single lookup the hot loops perform
(once per sweep, hoisted out of the loop body).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Optional

from repro.exceptions import QueryBudgetExceeded

__all__ = ["QueryGuard", "active_guard", "deadline_scope", "request_deadline"]

_ACTIVE_GUARD: ContextVar[Optional["QueryGuard"]] = ContextVar(
    "repro_active_query_guard", default=None
)

#: Absolute per-request deadline (``time.monotonic`` timestamp) announced by
#: the serving front-end for the duration of one request.  Guard scopes
#: opened inside it tighten their own deadline to this one, so a request's
#: admission deadline bounds *every* query executed on its behalf without
#: the facade growing a ``deadline=`` parameter on each query path.
_REQUEST_DEADLINE: ContextVar[Optional[float]] = ContextVar(
    "repro_request_deadline", default=None
)


def active_guard() -> Optional["QueryGuard"]:
    """The guard governing the current query, or ``None`` (unguarded)."""
    return _ACTIVE_GUARD.get()


def request_deadline() -> Optional[float]:
    """The ambient per-request deadline, or ``None`` (no deadline announced)."""
    return _REQUEST_DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Optional[float]):
    """Announce an absolute monotonic deadline for queries in this context.

    The serving layer wraps each request's execution in one of these; every
    :meth:`QueryGuard.scope` entered inside takes the *minimum* of its own
    ``max_seconds`` deadline and the announced one.  ``None`` announces
    nothing (useful to keep call sites unconditional).  Deadlines are
    ``time.monotonic`` timestamps — a guard constructed with a custom clock
    for tests should not be mixed with request deadlines.
    """
    token = _REQUEST_DEADLINE.set(deadline)
    try:
        yield
    finally:
        _REQUEST_DEADLINE.reset(token)


class QueryGuard:
    """Step-budget and deadline enforcement for a single query at a time.

    ``max_steps`` bounds explored work (frontier pops + CSR positions
    scanned, the same unit the planner's cost model estimates in);
    ``max_seconds`` bounds wall-clock time per query.  Either may be
    ``None`` (unlimited).  The deadline is only consulted every
    ``check_interval`` spent steps — a monotonic-clock read per frontier pop
    would dominate the sweep loops it is protecting.

    The guard object is reused across queries: :meth:`scope` resets the
    per-query counters, installs the guard in the context variable and
    restores the previous guard on exit.  Lifetime counters (``trip_count``)
    survive across scopes and feed ``GraphService.statistics()``.
    """

    RAISE = "raise"
    PARTIAL = "partial"

    def __init__(
        self,
        *,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
        check_interval: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_steps is not None and max_steps <= 0:
            raise ValueError("max_steps must be positive or None")
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError("max_seconds must be positive or None")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.check_interval = max(1, int(check_interval))
        self._clock = clock
        self._mode = self.RAISE
        self._deadline: Optional[float] = None
        self._until_check = self.check_interval
        self.steps_spent = 0
        self.tripped = False
        self.trip_reason: Optional[str] = None
        self.trip_count = 0

    # ------------------------------------------------------------------ scope

    @contextmanager
    def scope(self, mode: str = RAISE):
        """Install the guard for one query; resets per-query counters.

        ``tripped`` / ``steps_spent`` / ``trip_reason`` remain readable
        after the scope exits (until the next scope begins), so callers can
        flag partial results without re-entering the context.
        """
        if mode not in (self.RAISE, self.PARTIAL):
            raise ValueError(f"unknown guard mode {mode!r}")
        self._mode = mode
        self.steps_spent = 0
        self.tripped = False
        self.trip_reason = None
        self._until_check = self.check_interval
        self._deadline = (
            self._clock() + self.max_seconds if self.max_seconds is not None else None
        )
        requested = _REQUEST_DEADLINE.get()
        if requested is not None:
            # The serving front-end's per-request deadline tightens (never
            # loosens) the guard's own per-query budget.
            self._deadline = (
                requested if self._deadline is None else min(self._deadline, requested)
            )
        token = _ACTIVE_GUARD.set(self)
        try:
            yield self
        finally:
            _ACTIVE_GUARD.reset(token)

    # ------------------------------------------------------------------ spend

    def spend(self, steps: int = 1) -> bool:
        """Charge ``steps`` units of work; ``False`` means *stop expanding*.

        In ``"raise"`` mode a blown budget raises
        :class:`QueryBudgetExceeded` instead of returning.  Once tripped,
        every further call fails fast without re-checking the clock, so a
        multi-sweep bulk query stops almost immediately after the first
        sweep exhausts the shared per-query budget.
        """
        if self.tripped:
            return self._trip(self.trip_reason or "steps")
        self.steps_spent += steps
        if self.max_steps is not None and self.steps_spent > self.max_steps:
            return self._trip("steps")
        if self._deadline is not None:
            self._until_check -= steps
            if self._until_check <= 0:
                self._until_check = self.check_interval
                if self._clock() > self._deadline:
                    return self._trip("deadline")
        return True

    def _trip(self, reason: str) -> bool:
        if not self.tripped:
            self.tripped = True
            self.trip_reason = reason
            self.trip_count += 1
        if self._mode == self.RAISE:
            budget = self.max_steps if reason == "steps" else self.max_seconds
            raise QueryBudgetExceeded(reason, budget, self.steps_spent)
        return False

    def __repr__(self) -> str:
        return (
            f"<QueryGuard steps={self.max_steps} seconds={self.max_seconds} "
            f"spent={self.steps_spent} tripped={self.tripped}>"
        )
