"""The query/plan/result service layer — the stable public surface of PR 5.

The paper's model is one question — *may the requester reach the resource
owner along a path matching this expression?* — and this package gives that
question one API shaped as the request/plan/execute split declarative
engines use to separate *what* from *how*:

* **Queries** (:mod:`repro.service.queries`) — immutable request objects:
  :class:`ReachQuery`, :class:`AudienceQuery`, :class:`AccessQuery`,
  :class:`BulkAccessQuery`.  ``backend=`` and ``direction=`` are *plan
  pins*, not dispatch mechanics.
* **Planning** (:mod:`repro.service.planner`) — :class:`QueryPlanner`
  extends the PR 3 sweep-direction planner with per-query **backend
  auto-selection**: a cost model over the snapshot's degree statistics, the
  query shape (steps, depth widths, expansion count), the owner-set width,
  and index-build amortization over the mutation-free streak the service
  has observed.  The verdict is an :class:`ExecutionPlan`.
* **Results** (:mod:`repro.service.results`) — every answer is a
  :class:`PlannedResult` that *carries* the plan that produced it (plus the
  executed sweep plan, counters and timing), replacing the racy
  ``last_sweep_plan`` / ``last_audience_plans`` side-channels.
* **Facade** (:mod:`repro.service.facade`) — :class:`GraphService` owns the
  graph, the snapshot refresh, the policy store, the backend registry and
  every cache, and is the one session object callers need.

>>> from repro import GraphService
>>> service = GraphService(graph, store)                    # doctest: +SKIP
>>> service.reach("alice", "carol", "friend+[1,2]").reachable  # doctest: +SKIP
True
"""

from repro.service.facade import GraphService
from repro.service.planner import BackendEstimate, ExecutionPlan, QueryPlanner
from repro.service.queries import (
    AccessQuery,
    AudienceQuery,
    BulkAccessQuery,
    Query,
    ReachQuery,
)
from repro.service.results import (
    AccessResult,
    AudienceResult,
    BulkAccessResult,
    BulkReachResult,
    PlannedResult,
    ReachResult,
)

__all__ = [
    "GraphService",
    "QueryPlanner",
    "ExecutionPlan",
    "BackendEstimate",
    "Query",
    "ReachQuery",
    "AudienceQuery",
    "AccessQuery",
    "BulkAccessQuery",
    "PlannedResult",
    "ReachResult",
    "AudienceResult",
    "AccessResult",
    "BulkAccessResult",
    "BulkReachResult",
]
