"""The :class:`GraphService` session facade — one object, one API.

The facade owns everything a serving process needs per graph:

* the **graph** and its compiled-snapshot refresh (delta maintenance under
  churn included — :meth:`GraphService.refresh` is explicit, every query
  path refreshes lazily);
* the **policy store**, audit log and default effect for access checks;
* the **backend registry**: one :class:`~repro.reachability.engine.
  ReachabilityEngine` per backend name, created lazily, with index backends
  (transitive closure, cluster index) rebuilt before use whenever the graph
  has mutated since their last build — a query routed through the service
  never reads a stale index;
* the **planner** and its plan cache, plus the mutation-stability counter
  the index-build amortization feeds on;
* every **cache** (parse, decision memo, target-set memo) via the per-
  backend engines.

Queries go through :meth:`GraphService.execute` (typed query objects) or
the convenience verbs (:meth:`reach`, :meth:`audience`, :meth:`check`,
:meth:`bulk_access`) that build the query objects for you.  Every answer is
a :class:`~repro.service.results.PlannedResult` carrying the executed
:class:`~repro.service.planner.ExecutionPlan`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import replace
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.exceptions import NodeNotFoundError, UnknownBackendError
from repro.graph.compiled import _SNAPSHOT_ATTR, CompiledGraph, compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.policy.audit import AuditLog
from repro.policy.decisions import Effect
from repro.policy.engine import AccessControlEngine
from repro.policy.path_expression import PathExpression
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine, available_backends
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.guard import QueryGuard
from repro.service.planner import INDEX_BACKENDS, QueryPlanner
from repro.sharding.router import ShardRouter
from repro.sharding.shard import ShardedGraph
from repro.service.queries import (
    AccessQuery,
    AudienceQuery,
    BulkAccessQuery,
    Expression,
    Query,
    ReachQuery,
)
from repro.service.results import (
    AccessResult,
    AudienceResult,
    BulkAccessResult,
    BulkReachResult,
    ReachResult,
)

__all__ = ["GraphService"]


class GraphService:
    """Session facade over one social graph: plan, execute, explain.

    Parameters
    ----------
    graph:
        The canonical :class:`SocialGraph` (the service observes its
        mutation epoch; mutate the graph freely between queries).
    store:
        The :class:`PolicyStore` access checks evaluate against (a fresh
        empty store by default).
    backends:
        The backend names the planner may choose among (default: every
        registered backend).  Pinning a query to a backend outside this set
        raises :class:`UnknownBackendError`.
    default_backend:
        A service-wide pin: every query without its own ``backend=`` runs
        there.  ``None`` / ``"auto"`` (the default) enables per-query
        auto-selection.
    cache_size:
        Per-backend engine memo capacity (``0`` disables memoization —
        benchmarks use it to measure raw planning + execution).
    backend_options:
        Optional per-backend constructor kwargs, e.g.
        ``{"cluster-index": {"expansion_limit": 64}}``.
    snapshot_path:
        Path stem of a persistent :class:`~repro.graph.snapshot.
        SnapshotStore` (``None`` disables persistence).  When given, the
        service **warm-starts**: it adopts the persisted mmap snapshot
        zero-copy instead of paying the O(|V|+|E|) compile — falling back
        to a clean recompile (that rewrites the store) on absent, stale or
        corrupt files — and :meth:`refresh` checkpoints the compiled state
        back to disk (delta segment or rebase).
    query_guard:
        Optional :class:`~repro.reliability.guard.QueryGuard` bounding per-
        query work.  Point shapes (``reach``, ``access``) raise
        :class:`~repro.exceptions.QueryBudgetExceeded` on a blown budget;
        bulk shapes (``audience``, ``bulk_access``) return early with
        ``partial=True`` on the result.  ``None`` (the default) runs
        unguarded — the hot loops pay a single context-variable read.
    breakers:
        Per-backend :class:`~repro.reliability.breaker.CircuitBreaker`
        overrides for index maintenance.  By default every index backend in
        ``backends`` gets one: repeated build/refresh failures price the
        backend out of auto-planning (queries reroute to a walking backend)
        until a half-open probe succeeds.  Pass ``{}`` to disable breakers.
    shards:
        ``> 1`` partitions the graph into that many community shards (built
        lazily on first use) and makes the **sharded route** available: the
        planner's shard-fanout cost term routes eligible queries through the
        :class:`~repro.sharding.router.ShardRouter`, and ``"sharded"``
        becomes a valid backend pin (per query or service-wide).  ``0`` (the
        default) or ``1`` disables sharding entirely.
    shard_seed:
        Determinism seed of the community partitioner.
    """

    def __init__(
        self,
        graph: SocialGraph,
        store: Optional[PolicyStore] = None,
        *,
        backends: Optional[Iterable[str]] = None,
        default_backend: Optional[str] = None,
        cache_size: int = 4096,
        default_effect: Effect = Effect.DENY,
        audit_log: Optional[AuditLog] = None,
        planner: Optional[QueryPlanner] = None,
        backend_options: Optional[Dict[str, Dict[str, object]]] = None,
        snapshot_path: Optional[object] = None,
        query_guard: Optional[QueryGuard] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
        shards: int = 0,
        shard_seed: int = 7,
    ) -> None:
        self.graph = graph
        self.snapshot_store: Optional[SnapshotStore] = None
        #: How the compiled snapshot came to be at construction: "mapped"
        #: (persisted state adopted zero-copy), "absent"/"stale"/"corrupt"
        #: (recompiled, store rewritten), or "cold" (no store configured).
        self.warm_start = "cold"
        #: Outcome of the last refresh() checkpoint ("base"/"current"/
        #: "delta"/"rebase"), or None before the first refresh.
        self.last_checkpoint: Optional[str] = None
        if snapshot_path is not None:
            self.snapshot_store = SnapshotStore(snapshot_path)
            _snapshot, self.warm_start = self.snapshot_store.load_or_compile(graph)
        self.store = store if store is not None else PolicyStore()
        self.default_effect = default_effect
        self.audit_log = audit_log
        self._backend_options = dict(backend_options or {})
        self._backends: Tuple[str, ...] = tuple(
            backends if backends is not None else available_backends()
        )
        if not self._backends:
            raise ValueError("GraphService needs at least one backend")
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        #: Shard count (0/1 = sharding off).  Must be set before the default
        #: pin normalizes: ``default_backend="sharded"`` is only valid with
        #: an active shard layout.
        self.shards = shards
        self.shard_seed = shard_seed
        self._shard_runtime_obj: Optional[
            Tuple[ShardRouter, ReachabilityEngine, AccessControlEngine]
        ] = None
        self._default_pin = self._normalize_pin(default_backend)
        self._cache_size = cache_size
        self.query_guard = query_guard
        #: One breaker per index backend (walking backends never need one:
        #: they have no maintenance step that can fail).
        self.breakers: Dict[str, CircuitBreaker] = (
            dict(breakers)
            if breakers is not None
            else {
                name: CircuitBreaker()
                for name in self._backends
                if name in INDEX_BACKENDS
            }
        )
        #: Degradation observability (all surfaced by :meth:`statistics`).
        self.queries_degraded = 0
        self.queries_rerouted = 0
        self.checkpoint_failures = 0
        self.planner = planner if planner is not None else QueryPlanner(
            backend_options=self._backend_options
        )
        self._engines: Dict[str, ReachabilityEngine] = {}
        self._access_engines: Dict[str, AccessControlEngine] = {}
        self._built_epoch: Dict[str, int] = {}
        # Stability = queries answered since the graph last mutated; the
        # planner amortizes index builds over it (see repro.service.planner).
        self._seen_epoch = getattr(graph, "epoch", 0)
        self._stability = 0
        self.queries_executed = 0
        # Observed-outcome feedback per expression text: [samples seen,
        # EWMA unreachable rate].  The planner's transitive-closure prune
        # estimate scales with the decayed rate — the service's cardinality
        # feedback — so a workload shift (a denial-heavy expression turning
        # grant-heavy, or vice versa) re-prices plans within ~1/alpha
        # queries instead of being pinned by the lifetime average.
        self._reach_outcomes: Dict[str, List[float]] = {}
        # Service-owned parse cache.  Parsing must not route through
        # engine() — that path enforces index freshness and would rebuild a
        # stale index backend just to parse text, behind the planner's back.
        self._parse_cache: Dict[str, PathExpression] = {}
        # External observability providers (the serving layer registers its
        # coalescer here); statistics() merges each provider's counters
        # under its name prefix.
        self._stats_providers: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # ------------------------------------------------------------- registry

    def _normalize_pin(self, backend: Optional[str]) -> Optional[str]:
        if backend is None or backend == "auto":
            return None
        if backend == "sharded":
            if self.shards > 1:
                return backend
            raise UnknownBackendError(
                "sharded (service constructed without shards)",
                sorted(self._backends),
            )
        if backend not in self._backends:
            raise UnknownBackendError(backend, sorted(self._backends))
        return backend

    def _shard_runtime(
        self,
    ) -> Tuple[ShardRouter, ReachabilityEngine, AccessControlEngine]:
        """The lazily built sharded execution stack (router + engines).

        The router is an ordinary evaluator, so it gets the full engine
        treatment: per-owner audience memos, decision memos through the
        access engine, guard-aware cache hygiene (partial sweeps never enter
        the memo).  The shard mirrors refresh themselves from the graph's
        journal on every routed query.
        """
        if self.shards <= 1:
            raise UnknownBackendError("sharded", sorted(self._backends))
        if self._shard_runtime_obj is None:
            sharded = ShardedGraph(
                self.graph, shards=self.shards, seed=self.shard_seed
            )
            router = ShardRouter(sharded)
            engine = ReachabilityEngine(
                self.graph, router, cache_size=self._cache_size
            )
            access = AccessControlEngine(
                self.graph,
                self.store,
                backend=engine,
                default_effect=self.default_effect,
                audit_log=self.audit_log,
            )
            self._shard_runtime_obj = (router, engine, access)
        return self._shard_runtime_obj

    def _shard_cross_rate(self) -> float:
        """Observed cross-shard escalation rate (the planner's feedback)."""
        if self._shard_runtime_obj is None:
            return 0.0
        return self._shard_runtime_obj[0].escalation_rate

    def _plan_shards(self, pin: Optional[str], eligible: bool = True) -> int:
        """Shard count to offer the planner (0 = keep the route single)."""
        if self.shards > 1 and pin is None and eligible:
            return self.shards
        return 0

    @staticmethod
    def _force_sharded(plan):
        """Rewrite a plan for a ``"sharded"`` pin (planner plans pin-free)."""
        return replace(
            plan,
            backend="sharded",
            backend_forced=True,
            route="sharded",
            reason="backend pinned to 'sharded' by the caller",
        )

    def engine(self, backend: str) -> ReachabilityEngine:
        """Return the (lazily created, freshly built) engine of one backend.

        Index backends are rebuilt here whenever the graph has mutated since
        their last build, so a query the service routes to them never reads
        a stale index — the staleness semantics of directly-constructed
        evaluators stop at this boundary.
        """
        if backend not in self._backends:
            raise UnknownBackendError(backend, sorted(self._backends))
        engine = self._engines.get(backend)
        epoch = getattr(self.graph, "epoch", 0)
        if engine is None:
            options = dict(self._backend_options.get(backend, {}))
            engine = self._maintain_index(
                backend,
                lambda: ReachabilityEngine(
                    self.graph, backend, cache_size=self._cache_size, **options
                ),
            )
            self._engines[backend] = engine
            self._built_epoch[backend] = epoch
        elif backend in INDEX_BACKENDS and self._built_epoch.get(backend) != epoch:
            refresh = getattr(engine.evaluator, "refresh", None)
            if refresh is not None:
                # The cluster evaluator absorbs the journal gap through its
                # bounded in-place re-condensation when it can, and falls
                # back to build() itself when it cannot.
                self._maintain_index(backend, refresh)
            else:
                self._maintain_index(backend, engine.evaluator.build)
            self._built_epoch[backend] = epoch
        return engine

    def _maintain_index(self, backend: str, action):
        """Run one build/refresh under the backend's circuit breaker.

        Records success (with duration, so a configured slow threshold can
        count a crawling build against the backend) or failure; the
        exception always propagates — callers on the *auto* path catch it
        and reroute, a *pinned* caller sees the evaluator's own error.
        """
        breaker = self.breakers.get(backend) if backend in INDEX_BACKENDS else None
        if breaker is None:
            return action()
        breaker.allow_probe()  # half-open: this build IS the probe
        started = time.perf_counter()
        try:
            result = action()
        except Exception as error:
            breaker.record_failure(reason=f"{type(error).__name__}: {error}")
            raise
        breaker.record_success(duration=time.perf_counter() - started)
        return result

    def access_engine(self, backend: str) -> AccessControlEngine:
        """Return the access-control engine sharing one backend's memos."""
        reachability = self.engine(backend)  # ensures existence + freshness
        access = self._access_engines.get(backend)
        if access is None:
            access = AccessControlEngine(
                self.graph,
                self.store,
                backend=reachability,
                default_effect=self.default_effect,
                audit_log=self.audit_log,
            )
            self._access_engines[backend] = access
        return access

    @property
    def backends(self) -> Tuple[str, ...]:
        """The backend names the planner may choose among."""
        return self._backends

    def _freshness(self) -> Dict[str, bool]:
        """Which backends can execute right now without paying a build."""
        epoch = getattr(self.graph, "epoch", 0)
        fresh: Dict[str, bool] = {}
        for name in self._backends:
            if name in INDEX_BACKENDS:
                fresh[name] = (
                    name in self._engines and self._built_epoch.get(name) == epoch
                )
            else:
                fresh[name] = True  # online walks compile the snapshot lazily
        return fresh

    def _vetoed(self) -> frozenset:
        """Index backends the planner must price out right now.

        An *open* breaker vetoes its backend outright.  A *half-open*
        breaker stops blocking, so the next plan that would choose the
        backend becomes the probe — :meth:`_maintain_index` claims the
        probe slot when the build actually runs, and the build's outcome
        settles the breaker (closed again, or reopened for another
        cooldown).  Plans arriving while that probe is in flight see
        ``blocking`` again and keep degrading.
        """
        return frozenset(
            name for name, breaker in self.breakers.items() if breaker.blocking
        )

    _WALK_FALLBACKS = ("bfs", "dfs")

    def _engine_for_plan(self, plan):
        """Acquire the planned engine, failing over auto plans to a walk.

        Index maintenance can fail at acquisition time (the breaker has
        already recorded it).  A *pinned* plan propagates the evaluator's
        own error — the caller asked for that backend specifically.  An
        *auto* plan reroutes to a walking backend, which answers every
        query shape identically (just without the index's speed), and the
        rewritten plan travels on the result so the reroute is visible.
        """
        return self._acquire_for_plan(plan, self.engine)

    def _access_engine_for_plan(self, plan):
        """Access-engine variant of :meth:`_engine_for_plan`."""
        return self._acquire_for_plan(plan, self.access_engine)

    def _acquire_for_plan(self, plan, acquire):
        try:
            return acquire(plan.backend), plan
        except Exception:
            if plan.backend_forced or plan.backend not in INDEX_BACKENDS:
                raise
            fallback = next(
                (name for name in self._WALK_FALLBACKS if name in self._backends),
                None,
            )
            if fallback is None:
                raise
            self.queries_rerouted += 1
            plan = replace(
                plan,
                backend=fallback,
                reason=(
                    f"rerouted to {fallback}: {plan.backend} maintenance "
                    f"failed ({plan.reason})"
                ),
            )
            return acquire(fallback), plan

    def _guard_scope(self, mode: str):
        """The query guard's scope for one query (no-op when unguarded)."""
        if self.query_guard is None:
            return nullcontext()
        return self.query_guard.scope(mode)

    # ------------------------------------------------------------ lifecycle

    def refresh(self) -> CompiledGraph:
        """Bring the compiled snapshot up to date (delta patch or rebuild).

        Query paths refresh lazily; this explicit form lets serving code pay
        the refresh at a chosen moment (e.g. right after a churn burst).
        With a :attr:`snapshot_store` configured, the refreshed state is
        also checkpointed to disk — a delta segment when the journal covers
        the gap since the persisted tip, a base rewrite otherwise.
        """
        snapshot = compile_graph(self.graph)
        if self.snapshot_store is not None:
            try:
                self.last_checkpoint = self.snapshot_store.checkpoint(self.graph)
            except OSError:
                # The store already retried with backoff; a persistent I/O
                # failure must not take serving down — the in-memory snapshot
                # is intact, queries keep answering, and the failure is
                # visible through last_checkpoint and statistics().
                self.last_checkpoint = "failed"
                self.checkpoint_failures += 1
        return snapshot

    def _tick(self) -> int:
        """Advance the stability counter; returns the current epoch."""
        epoch = getattr(self.graph, "epoch", 0)
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            self._stability = 0
        else:
            self._stability += 1
        self.queries_executed += 1
        return epoch

    def _parse(self, expression: Expression) -> PathExpression:
        if isinstance(expression, PathExpression):
            return expression
        parsed = self._parse_cache.get(expression)
        if parsed is None:
            parsed = self._parse_cache[expression] = PathExpression.parse(expression)
        return parsed

    #: Outcomes observed before this are too few to trust as a rate.
    _RATE_SAMPLE_FLOOR = 16
    #: EWMA smoothing factor for the unreachable-rate estimator: each new
    #: outcome carries this weight, giving the estimate a ~32-query memory.
    _RATE_ALPHA = 1.0 / 32.0

    def _unreachable_rate(self, text: str) -> float:
        """Decayed (EWMA) share of unreachable answers for one expression.

        Returns ``0.0`` until :attr:`_RATE_SAMPLE_FLOOR` outcomes accrue, so
        a handful of early denials cannot talk the planner into an index.
        """
        outcome = self._reach_outcomes.get(text)
        if outcome is None or outcome[0] < self._RATE_SAMPLE_FLOOR:
            return 0.0
        return outcome[1]

    def _observe_outcome(self, text: str, reachable: bool) -> None:
        self._observe_rate(text, 0.0 if reachable else 1.0)

    def _observe_rate(self, text: str, rate: float) -> None:
        """Feed one (possibly fractional) unreachable-rate sample.

        Point queries feed ``0.0``/``1.0`` outcomes; audience and bulk
        shapes feed the *fraction* of the live graph their sweep did not
        reach — one materialization is worth one sample, not thousands of
        synthetic point outcomes, so a single bulk query cannot swamp the
        estimator's ~32-query memory.
        """
        outcome = self._reach_outcomes.get(text)
        if outcome is None:
            outcome = self._reach_outcomes[text] = [0, 0.0]
        outcome[0] += 1
        sample = max(0.0, min(1.0, rate))
        outcome[1] += self._RATE_ALPHA * (sample - outcome[1])

    def _refresh_ops(self) -> Optional[int]:
        """Journal length between the cluster index's last (re)build and now.

        ``None`` when the index was never built or the compacting journal no
        longer covers the gap — both price as a full build in the planner.
        """
        built = self._built_epoch.get("cluster-index")
        mutations_since = getattr(self.graph, "mutations_since", None)
        if built is None or mutations_since is None:
            return None
        ops = mutations_since(built)
        return None if ops is None else len(ops)

    # ------------------------------------------------------------ execution

    def execute(
        self, query: Query
    ) -> Union[ReachResult, AudienceResult, AccessResult, BulkAccessResult]:
        """Plan and run one typed query; returns its plan-carrying result."""
        if isinstance(query, ReachQuery):
            return self._execute_reach(query)
        if isinstance(query, AudienceQuery):
            return self._execute_audience(query)
        if isinstance(query, AccessQuery):
            return self._execute_access(query)
        if isinstance(query, BulkAccessQuery):
            return self._execute_bulk(query)
        raise TypeError(f"not a service query: {query!r}")

    def _pin_of(self, query_backend: Optional[str]) -> Optional[str]:
        pin = self._normalize_pin(query_backend)
        return pin if pin is not None else self._default_pin

    def _execute_reach(self, query: ReachQuery) -> ReachResult:
        started = time.perf_counter()
        self._tick()
        expression = self._parse(query.expression)
        text = expression.to_text()
        pin = self._pin_of(query.backend)
        shard_pin = pin == "sharded"
        plan = self.planner.plan_reach(
            compile_graph(self.graph),
            expression,
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=None if shard_pin else pin,
            unreachable_rate=self._unreachable_rate(text),
            refresh_ops=self._refresh_ops(),
            vetoed=self._vetoed(),
            # The sharded walk carries no parent links: witness-collecting
            # queries stay on the single-snapshot route unless pinned.
            shards=self._plan_shards(pin, eligible=not query.collect_witness),
            shard_cross_rate=self._shard_cross_rate(),
        )
        if shard_pin:
            plan = self._force_sharded(plan)
        if plan.route == "sharded":
            _router, engine, _access = self._shard_runtime()
            plan = replace(plan, backend="sharded")
        else:
            # Maintenance runs *outside* the guard scope: the per-query
            # budget bounds the query's own traversal, not an index build it
            # happens to trigger (the breaker owns build pathology).
            engine, plan = self._engine_for_plan(plan)
        with self._guard_scope(QueryGuard.RAISE):
            outcome = engine.evaluate(
                query.source,
                query.target,
                expression,
                collect_witness=query.collect_witness,
            )
        self._observe_outcome(text, outcome.reachable)
        return ReachResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            reachable=outcome.reachable,
            witness=outcome.witness,
            counters=outcome.counters,
        )

    def _execute_audience(self, query: AudienceQuery) -> AudienceResult:
        started = time.perf_counter()
        self._tick()
        expression = self._parse(query.expression)
        snapshot = compile_graph(self.graph)
        pin = self._pin_of(query.backend)
        shard_pin = pin == "sharded"
        plan = self.planner.plan_audience(
            snapshot,
            expression,
            len(query.owners),
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=None if shard_pin else pin,
            direction=query.direction,
            shards=self._plan_shards(pin),
            shard_cross_rate=self._shard_cross_rate(),
        )
        if shard_pin:
            plan = self._force_sharded(plan)
        if plan.route == "sharded":
            _router, engine, _access = self._shard_runtime()
            plan = replace(plan, backend="sharded")
        else:
            engine, plan = self._engine_for_plan(plan)
        with self._guard_scope(QueryGuard.PARTIAL):
            audiences, sweep_plan = engine.sweep_targets_many(
                query.owners, expression, direction=query.direction
            )
        partial = self.query_guard is not None and self.query_guard.tripped
        if partial:
            self.queries_degraded += 1
        elif audiences:
            # Cardinality feedback (bulk shapes feed the same estimator as
            # point queries): the mean *unreached* share of the live graph
            # across the swept owners is one fractional sample for this
            # expression.  Partial sweeps under-count and are never fed.
            live = max(1, snapshot.number_of_live_nodes())
            covered = sum(len(a) for a in audiences.values()) / len(audiences)
            self._observe_rate(expression.to_text(), 1.0 - covered / live)
        return AudienceResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            audiences=audiences,
            sweep_plan=sweep_plan,
            partial=partial,
        )

    def reach_many(
        self,
        pairs: Iterable[Tuple[Hashable, Hashable]],
        expression: Expression,
        *,
        direction: str = "auto",
        backend: Optional[str] = None,
    ) -> BulkReachResult:
        """Answer many ``(source, target)`` reach questions in one shared sweep.

        The coalescing-friendly bulk entry point: all pairs share one path
        expression, the distinct sources run as owners of a single
        multi-source owner-bitset sweep (one shared product walk instead of
        one walk per pair), and each pair's verdict is membership of its
        target in its source's swept audience — identical to the boolean of
        :meth:`reach` with ``collect_witness=False``, differentially tested
        in ``tests/serving``.  No witnesses are collected; pairs needing one
        must go through :meth:`reach`.

        Endpoints are validated up front (:class:`~repro.exceptions.
        NodeNotFoundError`), matching what per-pair evaluation would raise.
        Under an active :class:`~repro.reliability.guard.QueryGuard` the
        sweep runs in partial mode: a tripped budget returns
        ``partial=True`` and the mapping **under-approximates** — callers
        needing exact point answers must re-ask per pair (the serving
        coalescer does exactly that).
        """
        started = time.perf_counter()
        self._tick()
        expression = self._parse(expression)
        snapshot = compile_graph(self.graph)
        pair_list: List[Tuple[Hashable, Hashable]] = [
            (source, target) for source, target in pairs
        ]
        for source, target in pair_list:
            if not self.graph.has_user(source):
                raise NodeNotFoundError(source)
            if not self.graph.has_user(target):
                raise NodeNotFoundError(target)
        sources = list(dict.fromkeys(source for source, _target in pair_list))
        pin = self._pin_of(backend)
        shard_pin = pin == "sharded"
        plan = self.planner.plan_audience(
            snapshot,
            expression,
            len(sources),
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=None if shard_pin else pin,
            direction=direction,
            shards=self._plan_shards(pin),
            shard_cross_rate=self._shard_cross_rate(),
        )
        if shard_pin:
            plan = self._force_sharded(plan)
        if plan.route == "sharded":
            _router, engine, _access = self._shard_runtime()
            plan = replace(plan, backend="sharded")
        else:
            engine, plan = self._engine_for_plan(plan)
        with self._guard_scope(QueryGuard.PARTIAL):
            audiences, sweep_plan = engine.sweep_targets_many(
                sources, expression, direction=direction
            )
        partial = self.query_guard is not None and self.query_guard.tripped
        if partial:
            self.queries_degraded += 1
        elif audiences:
            # Same cardinality feedback as the audience path: this *is* an
            # audience materialization, so the mean unreached share is one
            # fractional sample for the expression.
            live = max(1, snapshot.number_of_live_nodes())
            covered = sum(len(a) for a in audiences.values()) / len(audiences)
            self._observe_rate(expression.to_text(), 1.0 - covered / live)
        reachable = {
            (source, target): target in audiences.get(source, ())
            for source, target in pair_list
        }
        return BulkReachResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            reachable=reachable,
            sweep_plan=sweep_plan,
            partial=partial,
        )

    def _execute_access(self, query: AccessQuery) -> AccessResult:
        started = time.perf_counter()
        self._tick()
        expressions = [
            condition.path
            for rule in self.store.rules_for(query.resource_id)
            for condition in rule.conditions
        ]
        rates = [
            self._unreachable_rate(expression.to_text())
            for expression in expressions
        ]
        pin = self._pin_of(query.backend)
        shard_pin = pin == "sharded"
        plan = self.planner.plan_access(
            compile_graph(self.graph),
            expressions,
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=None if shard_pin else pin,
            unreachable_rate=min(rates) if rates else 0.0,
            refresh_ops=self._refresh_ops(),
            vetoed=self._vetoed(),
            # Explanations embed witness paths; the sharded walk has none,
            # so explain-mode checks stay single-snapshot unless pinned.
            shards=self._plan_shards(pin, eligible=not query.explain),
            shard_cross_rate=self._shard_cross_rate(),
        )
        if shard_pin:
            plan = self._force_sharded(plan)
        if plan.route == "sharded":
            _router, _engine, access = self._shard_runtime()
            plan = replace(plan, backend="sharded")
        else:
            access, plan = self._access_engine_for_plan(plan)
        with self._guard_scope(QueryGuard.RAISE):
            decision = access.check_access(
                query.requester, query.resource_id, explain=query.explain
            )
        # Cardinality feedback from every condition actually evaluated:
        # each condition outcome is one reach outcome on its expression
        # (before this, only the reach path fed the estimator, so access-
        # heavy workloads never earned the closure's prune discount).
        for rule_outcome in decision.rule_outcomes:
            for outcome in rule_outcome.condition_outcomes:
                self._observe_outcome(
                    outcome.condition.path.to_text(), outcome.satisfied
                )
        return AccessResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            decision=decision,
        )

    def _execute_bulk(self, query: BulkAccessQuery) -> BulkAccessResult:
        started = time.perf_counter()
        self._tick()
        distinct: Set[str] = {
            condition.path.to_text()
            for resource_id in query.resource_ids
            for rule in self.store.rules_for(resource_id)
            for condition in rule.conditions
        }
        snapshot = compile_graph(self.graph)
        pin = self._pin_of(query.backend)
        shard_pin = pin == "sharded"
        plan = self.planner.plan_bulk_access(
            snapshot,
            len(distinct),
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=None if shard_pin else pin,
            direction=query.direction,
            shards=self._plan_shards(pin),
            shard_cross_rate=self._shard_cross_rate(),
        )
        if shard_pin:
            plan = self._force_sharded(plan)
        if plan.route == "sharded":
            _router, _engine, access = self._shard_runtime()
            plan = replace(plan, backend="sharded")
        else:
            access, plan = self._access_engine_for_plan(plan)
        with self._guard_scope(QueryGuard.PARTIAL):
            audiences, sweep_plans = access.audiences_with_plans(
                query.resource_ids, direction=query.direction
            )
        partial = self.query_guard is not None and self.query_guard.tripped
        if partial:
            self.queries_degraded += 1
        else:
            # Cardinality feedback: a resource's authorized audience is a
            # subset of what each of its conditions reaches, so the unreached
            # share is an upper-bound sample per condition expression — one
            # sample per (expression, bulk call), deduplicated, and never
            # fed from a truncated (partial) materialization.
            live = max(1, snapshot.number_of_live_nodes())
            best_rate: Dict[str, float] = {}
            for resource_id, audience in audiences.items():
                rate = 1.0 - min(1.0, len(audience) / live)
                for rule in self.store.rules_for(resource_id):
                    for condition in rule.conditions:
                        text = condition.path.to_text()
                        best_rate[text] = min(
                            best_rate.get(text, 1.0), rate
                        )
            for text, rate in best_rate.items():
                self._observe_rate(text, rate)
        return BulkAccessResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            audiences=audiences,
            sweep_plans=sweep_plans,
            partial=partial,
        )

    # ------------------------------------------------------- convenience api

    def reach(
        self,
        source: Hashable,
        target: Hashable,
        expression: Expression,
        *,
        collect_witness: bool = True,
        backend: Optional[str] = None,
    ) -> ReachResult:
        """Plan and evaluate one reachability query."""
        return self._execute_reach(
            ReachQuery(source, target, expression, collect_witness, backend)
        )

    def is_reachable(
        self, source: Hashable, target: Hashable, expression: Expression
    ) -> bool:
        """Boolean-only form of :meth:`reach` (no witness collected)."""
        return self.reach(
            source, target, expression, collect_witness=False
        ).reachable

    def audience(
        self,
        owners,
        expression: Expression,
        *,
        direction: str = "auto",
        backend: Optional[str] = None,
    ) -> AudienceResult:
        """Materialize the audience of one owner or of many owners at once."""
        return self._execute_audience(
            AudienceQuery(owners, expression, direction, backend)
        )

    def check(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        explain: bool = True,
        backend: Optional[str] = None,
    ) -> AccessResult:
        """Plan and evaluate one access request against the policy store."""
        return self._execute_access(
            AccessQuery(requester, resource_id, explain, backend)
        )

    def is_allowed(self, requester: Hashable, resource_id: Hashable) -> bool:
        """Boolean-only form of :meth:`check` (no explanation collected)."""
        return self.check(requester, resource_id, explain=False).granted

    def explain(self, requester: Hashable, resource_id: Hashable) -> str:
        """Return the human-readable explanation of one access decision."""
        return self.check(requester, resource_id, explain=True).explain()

    def bulk_access(
        self,
        resource_ids,
        *,
        direction: str = "auto",
        backend: Optional[str] = None,
    ) -> BulkAccessResult:
        """Materialize the authorized audiences of many resources at once."""
        return self._execute_bulk(
            BulkAccessQuery(resource_ids, direction, backend)
        )

    def authorized_audience(
        self, resource_id: Hashable, *, direction: str = "auto"
    ) -> Set[Hashable]:
        """The full audience of one resource (convenience over bulk_access)."""
        return self.bulk_access([resource_id], direction=direction)[resource_id]

    # ---------------------------------------------------------------- stats

    def register_statistics_provider(
        self, name: str, provider: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach an external counter source to :meth:`statistics`.

        The serving layer registers its coalescer here (batch-size histogram
        buckets, fallback counts); each call to :meth:`statistics` merges
        the provider's mapping under ``<name>_<key>``.  Re-registering a
        name replaces the provider.
        """
        self._stats_providers[name] = provider

    def unregister_statistics_provider(self, name: str) -> None:
        """Detach a provider registered by :meth:`register_statistics_provider`."""
        self._stats_providers.pop(name, None)

    def statistics(self) -> Dict[str, float]:
        """Service-level counters plus planner and per-backend statistics."""
        stats: Dict[str, float] = {
            "queries_executed": float(self.queries_executed),
            "stability": float(self._stability),
            "backends_instantiated": float(len(self._engines)),
            "queries_degraded": float(self.queries_degraded),
            "queries_rerouted": float(self.queries_rerouted),
            "checkpoint_failures": float(self.checkpoint_failures),
        }
        if self.query_guard is not None:
            stats["guard_trips"] = float(self.query_guard.trip_count)
        _BREAKER_STATE = {
            CircuitBreaker.CLOSED: 0.0,
            CircuitBreaker.HALF_OPEN: 0.5,
            CircuitBreaker.OPEN: 1.0,
        }
        for name, breaker in self.breakers.items():
            prefix = f"breaker_{name.replace('-', '_')}"
            stats[f"{prefix}_state"] = _BREAKER_STATE[breaker.state]
            stats[f"{prefix}_failures"] = float(breaker.consecutive_failures)
            stats[f"{prefix}_trips"] = float(breaker.trip_count)
        # Index-size accounting (satellite of PERF-11): the cached compiled
        # snapshot's CSR bytes and whether it is a zero-copy mapping, plus
        # the persistent store's disk footprint.  Reads the cache only — a
        # statistics call must never trigger a compile.
        snapshot = getattr(self.graph, _SNAPSHOT_ATTR, None)
        if snapshot is not None:
            stats["snapshot_nbytes"] = float(snapshot.nbytes)
            stats["snapshot_mapped"] = float(snapshot.mapped)
        if self.snapshot_store is not None:
            disk = self.snapshot_store.stat()
            stats["snapshot_disk_bytes"] = float(disk["disk_bytes"])
            stats["snapshot_delta_segments"] = float(disk["delta_segments"])
            stats["snapshot_checkpoint_retries"] = float(
                disk["checkpoint_retries_used"]
            )
            stats["snapshot_tmp_files_reaped"] = float(disk["tmp_files_reaped"])
            stats["snapshot_quarantine_files"] = float(disk["quarantine_files"])
            report = self.snapshot_store.last_recovery
            if report is not None:
                stats["snapshot_fsck_quarantined"] = float(len(report.quarantined))
                stats["snapshot_fsck_reaped_tmp"] = float(len(report.reaped_tmp))
                stats["snapshot_fsck_healthy"] = float(report.healthy)
        if self.shards:
            stats["shard_count"] = float(self.shards)
        if self._shard_runtime_obj is not None:
            router, shard_engine, _access = self._shard_runtime_obj
            for key, value in router.statistics().items():
                stats[f"shard_{key}"] = value
            for key, value in shard_engine.cache_info().items():
                stats[f"sharded_{key}"] = float(value)
        for name, value in self.planner.statistics().items():
            stats[f"planner_{name}"] = value
        for name, engine in self._engines.items():
            for key, value in engine.cache_info().items():
                stats[f"{name}_{key}"] = float(value)
        for name, provider in self._stats_providers.items():
            for key, value in provider().items():
                stats[f"{name}_{key}"] = float(value)
        return stats

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Per-backend engine memo occupancy and hit/miss counts."""
        return {name: engine.cache_info() for name, engine in self._engines.items()}

    def __repr__(self) -> str:
        pin = self._default_pin or "auto"
        return (
            f"<GraphService backend={pin!r} over {self.graph!r}, "
            f"{self.store.resource_count()} resources>"
        )
