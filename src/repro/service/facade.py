"""The :class:`GraphService` session facade — one object, one API.

The facade owns everything a serving process needs per graph:

* the **graph** and its compiled-snapshot refresh (delta maintenance under
  churn included — :meth:`GraphService.refresh` is explicit, every query
  path refreshes lazily);
* the **policy store**, audit log and default effect for access checks;
* the **backend registry**: one :class:`~repro.reachability.engine.
  ReachabilityEngine` per backend name, created lazily, with index backends
  (transitive closure, cluster index) rebuilt before use whenever the graph
  has mutated since their last build — a query routed through the service
  never reads a stale index;
* the **planner** and its plan cache, plus the mutation-stability counter
  the index-build amortization feeds on;
* every **cache** (parse, decision memo, target-set memo) via the per-
  backend engines.

Queries go through :meth:`GraphService.execute` (typed query objects) or
the convenience verbs (:meth:`reach`, :meth:`audience`, :meth:`check`,
:meth:`bulk_access`) that build the query objects for you.  Every answer is
a :class:`~repro.service.results.PlannedResult` carrying the executed
:class:`~repro.service.planner.ExecutionPlan`.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.exceptions import UnknownBackendError
from repro.graph.compiled import _SNAPSHOT_ATTR, CompiledGraph, compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.policy.audit import AuditLog
from repro.policy.decisions import Effect
from repro.policy.engine import AccessControlEngine
from repro.policy.path_expression import PathExpression
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine, available_backends
from repro.service.planner import INDEX_BACKENDS, QueryPlanner
from repro.service.queries import (
    AccessQuery,
    AudienceQuery,
    BulkAccessQuery,
    Expression,
    Query,
    ReachQuery,
)
from repro.service.results import (
    AccessResult,
    AudienceResult,
    BulkAccessResult,
    ReachResult,
)

__all__ = ["GraphService"]


class GraphService:
    """Session facade over one social graph: plan, execute, explain.

    Parameters
    ----------
    graph:
        The canonical :class:`SocialGraph` (the service observes its
        mutation epoch; mutate the graph freely between queries).
    store:
        The :class:`PolicyStore` access checks evaluate against (a fresh
        empty store by default).
    backends:
        The backend names the planner may choose among (default: every
        registered backend).  Pinning a query to a backend outside this set
        raises :class:`UnknownBackendError`.
    default_backend:
        A service-wide pin: every query without its own ``backend=`` runs
        there.  ``None`` / ``"auto"`` (the default) enables per-query
        auto-selection.
    cache_size:
        Per-backend engine memo capacity (``0`` disables memoization —
        benchmarks use it to measure raw planning + execution).
    backend_options:
        Optional per-backend constructor kwargs, e.g.
        ``{"cluster-index": {"expansion_limit": 64}}``.
    snapshot_path:
        Path stem of a persistent :class:`~repro.graph.snapshot.
        SnapshotStore` (``None`` disables persistence).  When given, the
        service **warm-starts**: it adopts the persisted mmap snapshot
        zero-copy instead of paying the O(|V|+|E|) compile — falling back
        to a clean recompile (that rewrites the store) on absent, stale or
        corrupt files — and :meth:`refresh` checkpoints the compiled state
        back to disk (delta segment or rebase).
    """

    def __init__(
        self,
        graph: SocialGraph,
        store: Optional[PolicyStore] = None,
        *,
        backends: Optional[Iterable[str]] = None,
        default_backend: Optional[str] = None,
        cache_size: int = 4096,
        default_effect: Effect = Effect.DENY,
        audit_log: Optional[AuditLog] = None,
        planner: Optional[QueryPlanner] = None,
        backend_options: Optional[Dict[str, Dict[str, object]]] = None,
        snapshot_path: Optional[object] = None,
    ) -> None:
        self.graph = graph
        self.snapshot_store: Optional[SnapshotStore] = None
        #: How the compiled snapshot came to be at construction: "mapped"
        #: (persisted state adopted zero-copy), "absent"/"stale"/"corrupt"
        #: (recompiled, store rewritten), or "cold" (no store configured).
        self.warm_start = "cold"
        #: Outcome of the last refresh() checkpoint ("base"/"current"/
        #: "delta"/"rebase"), or None before the first refresh.
        self.last_checkpoint: Optional[str] = None
        if snapshot_path is not None:
            self.snapshot_store = SnapshotStore(snapshot_path)
            _snapshot, self.warm_start = self.snapshot_store.load_or_compile(graph)
        self.store = store if store is not None else PolicyStore()
        self.default_effect = default_effect
        self.audit_log = audit_log
        self._backend_options = dict(backend_options or {})
        self._backends: Tuple[str, ...] = tuple(
            backends if backends is not None else available_backends()
        )
        if not self._backends:
            raise ValueError("GraphService needs at least one backend")
        self._default_pin = self._normalize_pin(default_backend)
        self._cache_size = cache_size
        self.planner = planner if planner is not None else QueryPlanner(
            backend_options=self._backend_options
        )
        self._engines: Dict[str, ReachabilityEngine] = {}
        self._access_engines: Dict[str, AccessControlEngine] = {}
        self._built_epoch: Dict[str, int] = {}
        # Stability = queries answered since the graph last mutated; the
        # planner amortizes index builds over it (see repro.service.planner).
        self._seen_epoch = getattr(graph, "epoch", 0)
        self._stability = 0
        self.queries_executed = 0
        # Observed-outcome feedback per expression text: [samples seen,
        # EWMA unreachable rate].  The planner's transitive-closure prune
        # estimate scales with the decayed rate — the service's cardinality
        # feedback — so a workload shift (a denial-heavy expression turning
        # grant-heavy, or vice versa) re-prices plans within ~1/alpha
        # queries instead of being pinned by the lifetime average.
        self._reach_outcomes: Dict[str, List[float]] = {}
        # Service-owned parse cache.  Parsing must not route through
        # engine() — that path enforces index freshness and would rebuild a
        # stale index backend just to parse text, behind the planner's back.
        self._parse_cache: Dict[str, PathExpression] = {}

    # ------------------------------------------------------------- registry

    def _normalize_pin(self, backend: Optional[str]) -> Optional[str]:
        if backend is None or backend == "auto":
            return None
        if backend not in self._backends:
            raise UnknownBackendError(backend, sorted(self._backends))
        return backend

    def engine(self, backend: str) -> ReachabilityEngine:
        """Return the (lazily created, freshly built) engine of one backend.

        Index backends are rebuilt here whenever the graph has mutated since
        their last build, so a query the service routes to them never reads
        a stale index — the staleness semantics of directly-constructed
        evaluators stop at this boundary.
        """
        if backend not in self._backends:
            raise UnknownBackendError(backend, sorted(self._backends))
        engine = self._engines.get(backend)
        epoch = getattr(self.graph, "epoch", 0)
        if engine is None:
            options = dict(self._backend_options.get(backend, {}))
            engine = ReachabilityEngine(
                self.graph, backend, cache_size=self._cache_size, **options
            )
            self._engines[backend] = engine
            self._built_epoch[backend] = epoch
        elif backend in INDEX_BACKENDS and self._built_epoch.get(backend) != epoch:
            refresh = getattr(engine.evaluator, "refresh", None)
            if refresh is not None:
                # The cluster evaluator absorbs the journal gap through its
                # bounded in-place re-condensation when it can, and falls
                # back to build() itself when it cannot.
                refresh()
            else:
                engine.evaluator.build()
            self._built_epoch[backend] = epoch
        return engine

    def access_engine(self, backend: str) -> AccessControlEngine:
        """Return the access-control engine sharing one backend's memos."""
        reachability = self.engine(backend)  # ensures existence + freshness
        access = self._access_engines.get(backend)
        if access is None:
            access = AccessControlEngine(
                self.graph,
                self.store,
                backend=reachability,
                default_effect=self.default_effect,
                audit_log=self.audit_log,
            )
            self._access_engines[backend] = access
        return access

    @property
    def backends(self) -> Tuple[str, ...]:
        """The backend names the planner may choose among."""
        return self._backends

    def _freshness(self) -> Dict[str, bool]:
        """Which backends can execute right now without paying a build."""
        epoch = getattr(self.graph, "epoch", 0)
        fresh: Dict[str, bool] = {}
        for name in self._backends:
            if name in INDEX_BACKENDS:
                fresh[name] = (
                    name in self._engines and self._built_epoch.get(name) == epoch
                )
            else:
                fresh[name] = True  # online walks compile the snapshot lazily
        return fresh

    # ------------------------------------------------------------ lifecycle

    def refresh(self) -> CompiledGraph:
        """Bring the compiled snapshot up to date (delta patch or rebuild).

        Query paths refresh lazily; this explicit form lets serving code pay
        the refresh at a chosen moment (e.g. right after a churn burst).
        With a :attr:`snapshot_store` configured, the refreshed state is
        also checkpointed to disk — a delta segment when the journal covers
        the gap since the persisted tip, a base rewrite otherwise.
        """
        snapshot = compile_graph(self.graph)
        if self.snapshot_store is not None:
            self.last_checkpoint = self.snapshot_store.checkpoint(self.graph)
        return snapshot

    def _tick(self) -> int:
        """Advance the stability counter; returns the current epoch."""
        epoch = getattr(self.graph, "epoch", 0)
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            self._stability = 0
        else:
            self._stability += 1
        self.queries_executed += 1
        return epoch

    def _parse(self, expression: Expression) -> PathExpression:
        if isinstance(expression, PathExpression):
            return expression
        parsed = self._parse_cache.get(expression)
        if parsed is None:
            parsed = self._parse_cache[expression] = PathExpression.parse(expression)
        return parsed

    #: Outcomes observed before this are too few to trust as a rate.
    _RATE_SAMPLE_FLOOR = 16
    #: EWMA smoothing factor for the unreachable-rate estimator: each new
    #: outcome carries this weight, giving the estimate a ~32-query memory.
    _RATE_ALPHA = 1.0 / 32.0

    def _unreachable_rate(self, text: str) -> float:
        """Decayed (EWMA) share of unreachable answers for one expression.

        Returns ``0.0`` until :attr:`_RATE_SAMPLE_FLOOR` outcomes accrue, so
        a handful of early denials cannot talk the planner into an index.
        """
        outcome = self._reach_outcomes.get(text)
        if outcome is None or outcome[0] < self._RATE_SAMPLE_FLOOR:
            return 0.0
        return outcome[1]

    def _observe_outcome(self, text: str, reachable: bool) -> None:
        outcome = self._reach_outcomes.get(text)
        if outcome is None:
            outcome = self._reach_outcomes[text] = [0, 0.0]
        outcome[0] += 1
        sample = 0.0 if reachable else 1.0
        outcome[1] += self._RATE_ALPHA * (sample - outcome[1])

    def _refresh_ops(self) -> Optional[int]:
        """Journal length between the cluster index's last (re)build and now.

        ``None`` when the index was never built or the compacting journal no
        longer covers the gap — both price as a full build in the planner.
        """
        built = self._built_epoch.get("cluster-index")
        mutations_since = getattr(self.graph, "mutations_since", None)
        if built is None or mutations_since is None:
            return None
        ops = mutations_since(built)
        return None if ops is None else len(ops)

    # ------------------------------------------------------------ execution

    def execute(
        self, query: Query
    ) -> Union[ReachResult, AudienceResult, AccessResult, BulkAccessResult]:
        """Plan and run one typed query; returns its plan-carrying result."""
        if isinstance(query, ReachQuery):
            return self._execute_reach(query)
        if isinstance(query, AudienceQuery):
            return self._execute_audience(query)
        if isinstance(query, AccessQuery):
            return self._execute_access(query)
        if isinstance(query, BulkAccessQuery):
            return self._execute_bulk(query)
        raise TypeError(f"not a service query: {query!r}")

    def _pin_of(self, query_backend: Optional[str]) -> Optional[str]:
        pin = self._normalize_pin(query_backend)
        return pin if pin is not None else self._default_pin

    def _execute_reach(self, query: ReachQuery) -> ReachResult:
        started = time.perf_counter()
        self._tick()
        expression = self._parse(query.expression)
        text = expression.to_text()
        plan = self.planner.plan_reach(
            compile_graph(self.graph),
            expression,
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=self._pin_of(query.backend),
            unreachable_rate=self._unreachable_rate(text),
            refresh_ops=self._refresh_ops(),
        )
        engine = self.engine(plan.backend)
        outcome = engine.evaluate(
            query.source,
            query.target,
            expression,
            collect_witness=query.collect_witness,
        )
        self._observe_outcome(text, outcome.reachable)
        return ReachResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            reachable=outcome.reachable,
            witness=outcome.witness,
            counters=outcome.counters,
        )

    def _execute_audience(self, query: AudienceQuery) -> AudienceResult:
        started = time.perf_counter()
        self._tick()
        expression = self._parse(query.expression)
        plan = self.planner.plan_audience(
            compile_graph(self.graph),
            expression,
            len(query.owners),
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=self._pin_of(query.backend),
            direction=query.direction,
        )
        engine = self.engine(plan.backend)
        audiences, sweep_plan = engine.sweep_targets_many(
            query.owners, expression, direction=query.direction
        )
        return AudienceResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            audiences=audiences,
            sweep_plan=sweep_plan,
        )

    def _execute_access(self, query: AccessQuery) -> AccessResult:
        started = time.perf_counter()
        self._tick()
        expressions = [
            condition.path
            for rule in self.store.rules_for(query.resource_id)
            for condition in rule.conditions
        ]
        rates = [
            self._unreachable_rate(expression.to_text())
            for expression in expressions
        ]
        plan = self.planner.plan_access(
            compile_graph(self.graph),
            expressions,
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=self._pin_of(query.backend),
            unreachable_rate=min(rates) if rates else 0.0,
            refresh_ops=self._refresh_ops(),
        )
        access = self.access_engine(plan.backend)
        decision = access.check_access(
            query.requester, query.resource_id, explain=query.explain
        )
        return AccessResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            decision=decision,
        )

    def _execute_bulk(self, query: BulkAccessQuery) -> BulkAccessResult:
        started = time.perf_counter()
        self._tick()
        distinct: Set[str] = {
            condition.path.to_text()
            for resource_id in query.resource_ids
            for rule in self.store.rules_for(resource_id)
            for condition in rule.conditions
        }
        plan = self.planner.plan_bulk_access(
            compile_graph(self.graph),
            len(distinct),
            backends=self._backends,
            fresh=self._freshness(),
            stability=self._stability,
            pinned=self._pin_of(query.backend),
            direction=query.direction,
        )
        access = self.access_engine(plan.backend)
        audiences, sweep_plans = access.audiences_with_plans(
            query.resource_ids, direction=query.direction
        )
        return BulkAccessResult(
            plan=plan,
            elapsed_seconds=time.perf_counter() - started,
            audiences=audiences,
            sweep_plans=sweep_plans,
        )

    # ------------------------------------------------------- convenience api

    def reach(
        self,
        source: Hashable,
        target: Hashable,
        expression: Expression,
        *,
        collect_witness: bool = True,
        backend: Optional[str] = None,
    ) -> ReachResult:
        """Plan and evaluate one reachability query."""
        return self._execute_reach(
            ReachQuery(source, target, expression, collect_witness, backend)
        )

    def is_reachable(
        self, source: Hashable, target: Hashable, expression: Expression
    ) -> bool:
        """Boolean-only form of :meth:`reach` (no witness collected)."""
        return self.reach(
            source, target, expression, collect_witness=False
        ).reachable

    def audience(
        self,
        owners,
        expression: Expression,
        *,
        direction: str = "auto",
        backend: Optional[str] = None,
    ) -> AudienceResult:
        """Materialize the audience of one owner or of many owners at once."""
        return self._execute_audience(
            AudienceQuery(owners, expression, direction, backend)
        )

    def check(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        explain: bool = True,
        backend: Optional[str] = None,
    ) -> AccessResult:
        """Plan and evaluate one access request against the policy store."""
        return self._execute_access(
            AccessQuery(requester, resource_id, explain, backend)
        )

    def is_allowed(self, requester: Hashable, resource_id: Hashable) -> bool:
        """Boolean-only form of :meth:`check` (no explanation collected)."""
        return self.check(requester, resource_id, explain=False).granted

    def explain(self, requester: Hashable, resource_id: Hashable) -> str:
        """Return the human-readable explanation of one access decision."""
        return self.check(requester, resource_id, explain=True).explain()

    def bulk_access(
        self,
        resource_ids,
        *,
        direction: str = "auto",
        backend: Optional[str] = None,
    ) -> BulkAccessResult:
        """Materialize the authorized audiences of many resources at once."""
        return self._execute_bulk(
            BulkAccessQuery(resource_ids, direction, backend)
        )

    def authorized_audience(
        self, resource_id: Hashable, *, direction: str = "auto"
    ) -> Set[Hashable]:
        """The full audience of one resource (convenience over bulk_access)."""
        return self.bulk_access([resource_id], direction=direction)[resource_id]

    # ---------------------------------------------------------------- stats

    def statistics(self) -> Dict[str, float]:
        """Service-level counters plus planner and per-backend statistics."""
        stats: Dict[str, float] = {
            "queries_executed": float(self.queries_executed),
            "stability": float(self._stability),
            "backends_instantiated": float(len(self._engines)),
        }
        # Index-size accounting (satellite of PERF-11): the cached compiled
        # snapshot's CSR bytes and whether it is a zero-copy mapping, plus
        # the persistent store's disk footprint.  Reads the cache only — a
        # statistics call must never trigger a compile.
        snapshot = getattr(self.graph, _SNAPSHOT_ATTR, None)
        if snapshot is not None:
            stats["snapshot_nbytes"] = float(snapshot.nbytes)
            stats["snapshot_mapped"] = float(snapshot.mapped)
        if self.snapshot_store is not None:
            disk = self.snapshot_store.stat()
            stats["snapshot_disk_bytes"] = float(disk["disk_bytes"])
            stats["snapshot_delta_segments"] = float(disk["delta_segments"])
        for name, value in self.planner.statistics().items():
            stats[f"planner_{name}"] = value
        for name, engine in self._engines.items():
            for key, value in engine.cache_info().items():
                stats[f"{name}_{key}"] = float(value)
        return stats

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Per-backend engine memo occupancy and hit/miss counts."""
        return {name: engine.cache_info() for name, engine in self._engines.items()}

    def __repr__(self) -> str:
        pin = self._default_pin or "auto"
        return (
            f"<GraphService backend={pin!r} over {self.graph!r}, "
            f"{self.store.resource_count()} resources>"
        )
