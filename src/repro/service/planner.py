"""Per-query backend selection — the *how* of the request/plan/execute split.

:class:`QueryPlanner` extends the PR 3 audience-sweep direction planner one
level up: besides *which way* to sweep, it decides *which backend* executes
each query.  The verdict is an :class:`ExecutionPlan` that travels with the
result, so every answer can show how it was produced.

Cost model
----------
All costs are in **explored-work units** (roughly: one CSR edge expansion of
interpreter work), the same currency :func:`~repro.reachability.
compiled_search.plan_audience_sweep` uses, so direction and backend
estimates compose:

* **Online walks** (``bfs`` / ``dfs``) cost the geometric frontier estimate
  over the snapshot's per-label :meth:`~repro.graph.compiled.CompiledGraph.
  degree_statistics` — every depth level of every step multiplies the
  frontier by the label's mean degree (per allowed orientation), saturating
  at ``|V|``.  The two online backends answer identically; ``bfs`` is
  preferred on ties because its witnesses are shortest.
* **``transitive-closure``** puts an O(1) closure probe in front of the
  same walk: a query whose target is not forward-reachable *at all* is
  denied without any traversal.  How often that fires is not a property of
  the query shape, so the planner prices it with **observed-outcome
  feedback** (the cardinality-feedback trick of relational optimizers):
  the service reports the unreachable rate it has measured per expression,
  and the prune discount scales with it — on denial-heavy streams the
  closure's per-query estimate undercuts the walk, on grant-heavy streams
  it never does.  What keeps it from being chosen casually is its build
  estimate (``|V|`` sweeps per label filter).
* **``cluster-index``** is priced at a *multiple* of the walk plus fixed
  and per-line-query overheads.  That is the measured reality of this
  codebase (PERF-1: the compiled product walk beats the index on point
  queries at every size — the interned index's PERF-6 win is over the
  *string* pipeline), so auto-selection never routes point queries to it;
  it stays fully available as a pin.  Its availability rules (expansion
  limit, reverse orientation) are tracked on the estimate table — they
  exclude it from *auto*-selection, while a pinned plan still runs and
  surfaces the evaluator's own error at execution time, exactly as a
  directly-constructed evaluator would.

**Index-build amortization.**  A build estimate is charged over the
service's *stability* — the number of queries answered since the last graph
mutation.  While writes keep arriving, ``build / stability`` stays huge and
the planner stays online; once the graph settles and a stream of queries
accrues, the charge melts until an index flips to cheapest, the service
builds it once, and every later query rides it for free.  A cluster index
that has been built before is cheaper to bring back: the caller passes the
journal length since its snapshot epoch (``refresh_ops``) and the charge
becomes the bounded incremental-refresh estimate (fixed + per-op), capped
by the full build for bursts the evaluator would rebuild on anyway.  Each cached plan
records the stability at which this flip becomes possible
(``revisit_at``), so the warm path re-plans exactly when the answer could
change and not before.

Plans are cached per ``(kind, expression, pins, index-freshness)`` and
invalidated by epoch moves, keeping warm-path planning to one dictionary
probe and two integer comparisons (PERF-10 holds this under 5% of a pinned
warm query).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from math import ceil, inf
from typing import AbstractSet, Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import UnknownBackendError
from repro.graph.compiled import CompiledGraph
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.query import DEFAULT_EXPANSION_LIMIT

__all__ = ["BackendEstimate", "ExecutionPlan", "QueryPlanner"]

#: Backends whose answers come from a built artifact that goes stale under
#: mutation; the service rebuilds them before routing a query their way.
INDEX_BACKENDS = frozenset({"transitive-closure", "cluster-index"})

# Calibration constants, in explored-work units (~one CSR edge expansion).
# They only need to be right relative to each other; PERF-10's mixed-stream
# scenario is the regression harness for the flip behaviour they induce.
_ONLINE_FIXED = 8.0          # per-query setup of the compiled product walk
_DFS_TIEBREAK = 1.05         # same asymptotics; bfs preferred (shortest witness)
_TC_PRUNE_FIXED = 4.0        # O(1) closure probe in front of the walk
_TC_PRUNABLE_SHARE = 0.75    # share of observed denials the closure can prune
                             # (forward-only: a constrained denial is usually a
                             # path denial; mixed directions prune ~never)
_TC_MIXED_SHARE = 0.0        # the undirected closure prunes ~nothing on
                             # connected graphs: no discount at all
_CLUSTER_FIXED = 24.0        # expansion + hop-spec setup per query
_CLUSTER_PER_LINE_QUERY = 6.0
_CLUSTER_WALK_FACTOR = 4.0   # measured: interned matching trails the compiled
                             # product walk on point queries (PERF-1)
_CLUSTER_BUILD_UNIT = 8.0    # per line vertex (Tarjan + 2-hop + tables)
_CLUSTER_REFRESH_FIXED = 256.0  # snapshot delta patch + contracted-pass setup
_CLUSTER_REFRESH_UNIT = 16.0    # per journaled op the bounded refresh absorbs
_TC_BUILD_UNIT = 0.25        # per (node x label-filter x (node + edge)); low
                             # because the geometric walk model underestimates
                             # real exploration on scale-free graphs, and the
                             # two must flip at a realistic stability
_RATE_BUCKETS = 8            # unreachable-rate resolution in plan-cache keys
_SHARD_SWEEP_FIXED = 16.0    # per-query shard routing + per-shard automaton setup
_SHARD_ESCALATION_FACTOR = 2.0  # escalated work re-walks boundary frontiers and
                                # pays message routing on top of the sweep itself


@dataclass(frozen=True)
class BackendEstimate:
    """One backend's estimated cost for one query, in explored-work units.

    ``total`` is what the planner compares: ``query_cost`` plus the
    amortized ``build_charge`` (``build_cost / stability`` when the backend
    needs a (re)build first, ``0`` when it is fresh).
    """

    backend: str
    query_cost: float
    build_cost: float
    build_charge: float
    total: float
    available: bool = True
    note: str = ""


@dataclass(frozen=True)
class ExecutionPlan:
    """The planner's verdict for one query — carried by every result.

    ``backend`` is what actually runs; ``backend_forced`` whether a pin (on
    the query or the service) chose it.  ``direction`` is the *requested*
    audience-sweep direction (the executed
    :class:`~repro.reachability.compiled_search.SweepPlan` travels on the
    result next to this plan).  ``estimates`` holds the full per-backend
    cost table so benchmarks can grade the heuristic after the fact.
    """

    kind: str
    backend: str
    backend_forced: bool
    direction: str = "auto"
    epoch: int = 0
    stability: int = 0
    estimates: Tuple[BackendEstimate, ...] = ()
    reason: str = ""
    #: ``"single"`` (one snapshot, one evaluator) or ``"sharded"`` (execute
    #: through the shard router).  ``backend`` still names the evaluator a
    #: single-snapshot run would use, so a sharded-capable service can fall
    #: back without re-planning.
    route: str = "single"

    def estimate_for(self, backend: str) -> Optional[BackendEstimate]:
        """Return the cost-table row of one backend (``None`` if absent)."""
        for estimate in self.estimates:
            if estimate.backend == backend:
                return estimate
        return None


@dataclass
class _CachedPlan:
    plan: ExecutionPlan
    epoch: int
    revisit_at: float  # stability at which an index backend could flip the choice


class QueryPlanner:
    """Chooses a backend (and carries the direction pin) for every query."""

    def __init__(
        self,
        *,
        backend_options: Optional[Mapping[str, Mapping[str, object]]] = None,
        cache_size: int = 1024,
    ) -> None:
        # The cluster backend's availability depends on two of its options.
        cluster_options = dict((backend_options or {}).get("cluster-index", {}))
        self._expansion_limit = cluster_options.get(
            "expansion_limit", DEFAULT_EXPANSION_LIMIT
        )
        self._cluster_reverse = bool(cluster_options.get("include_reverse", True))
        self._cache: "OrderedDict[Tuple, _CachedPlan]" = OrderedDict()
        self._cache_size = max(0, cache_size)
        #: Planner observability: how many plans were computed vs served
        #: from the plan cache.
        self.plans_computed = 0
        self.plans_cached = 0

    # ----------------------------------------------------------- cost model

    def _walk_cost(self, snapshot: CompiledGraph, expression: PathExpression) -> float:
        """Single-seed, hub-aware product-walk estimate (the online unit).

        Like the audience sweep's geometric model, but the frontier grows by
        the geometric mean of the label's mean and hub degree instead of the
        mean alone: on the scale-free graphs this repo benchmarks, a walk
        reaches a hub within a hop or two and saturates far faster than the
        mean degree suggests.  Each level's cost is the edges scanned
        (frontier x mean degree, i.e. the label's full edge set once the
        frontier saturates at ``|V|``).
        """
        stats = snapshot.degree_statistics()
        node_count = float(max(1, snapshot.number_of_live_nodes()))
        frontier = 1.0
        cost = 1.0
        for step in expression:
            label_id = snapshot.label_id(step.label)
            if label_id < 0:
                break  # no edges carry this label: the walk dies here
            row = stats[label_id]
            forward = step.direction.allows_forward()
            backward = step.direction.allows_backward()
            mean = row.mean_degree * (int(forward) + int(backward))
            hub = float(
                max(
                    row.max_out_degree if forward else 0,
                    row.max_in_degree if backward else 0,
                )
            )
            growth = (mean * max(mean, hub)) ** 0.5
            for _depth in range(step.max_depth()):
                cost += frontier * mean
                frontier = min(node_count, frontier * growth)
                if not frontier:
                    break
            if not frontier:
                break
        return cost

    def _cluster_build_cost(self, snapshot: CompiledGraph) -> float:
        edges = sum(row.edges for row in snapshot.degree_statistics())
        line_vertices = edges * (2 if self._cluster_reverse else 1)
        return _CLUSTER_BUILD_UNIT * (snapshot.number_of_live_nodes() + line_vertices)

    def _tc_build_cost(self, snapshot: CompiledGraph) -> float:
        nodes = snapshot.number_of_live_nodes()
        edges = sum(row.edges for row in snapshot.degree_statistics())
        filters = snapshot.number_of_labels() + 2  # global + undirected + per label
        return _TC_BUILD_UNIT * nodes * filters * (nodes + edges)

    def _reach_estimates(
        self,
        snapshot: CompiledGraph,
        expression: PathExpression,
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        unreachable_rate: float,
        refresh_ops: Optional[int],
    ) -> Tuple[BackendEstimate, ...]:
        walk = self._walk_cost(snapshot, expression)
        amortize_over = float(max(1, stability))
        forward_only = all(
            step.direction is Direction.OUTGOING for step in expression
        )
        prunable_share = _TC_PRUNABLE_SHARE if forward_only else _TC_MIXED_SHARE
        prunable = max(0.0, min(1.0, unreachable_rate)) * prunable_share
        estimates = []
        for name in backends:
            build = 0.0
            available = True
            note = ""
            if name == "bfs":
                query = _ONLINE_FIXED + walk
            elif name == "dfs":
                query = (_ONLINE_FIXED + walk) * _DFS_TIEBREAK
                note = "same walk as bfs; bfs preferred for shortest witnesses"
            elif name == "transitive-closure":
                query = _ONLINE_FIXED + _TC_PRUNE_FIXED + (1.0 - prunable) * walk
                if prunable:
                    note = (
                        f"closure prune discounts ~{100 * prunable:.0f}% of the "
                        f"walk (observed unreachable rate {unreachable_rate:.2f})"
                    )
                if not fresh.get(name, False):
                    build = self._tc_build_cost(snapshot)
            elif name == "cluster-index":
                expansions = expression.expansion_count()
                if expansions > self._expansion_limit:
                    available = False
                    note = f"expansion count {expansions} above the index limit"
                    query = inf
                elif not self._cluster_reverse and any(
                    step.direction is not Direction.OUTGOING for step in expression
                ):
                    available = False
                    note = "index built without reverse line vertices"
                    query = inf
                else:
                    query = (
                        _CLUSTER_FIXED
                        + _CLUSTER_PER_LINE_QUERY * expansions
                        + _CLUSTER_WALK_FACTOR * walk
                    )
                if available and not fresh.get(name, False):
                    build = self._cluster_build_cost(snapshot)
                    if refresh_ops is not None:
                        # A previously built index can absorb the journal gap
                        # through the bounded in-place re-condensation, which
                        # scales with the burst instead of the line graph; the
                        # evaluator still rebuilds past its touched-fraction
                        # threshold, so the full build stays the ceiling.
                        refresh = (
                            _CLUSTER_REFRESH_FIXED
                            + _CLUSTER_REFRESH_UNIT * refresh_ops
                        )
                        if refresh < build:
                            build = refresh
                            note = (
                                f"incremental refresh priced over {refresh_ops} "
                                "journaled ops"
                            )
            else:
                # Unknown names are planned pessimistically rather than
                # rejected: the registry is extensible.
                query = _ONLINE_FIXED + walk
                note = "unknown backend: assumed online-walk cost"
            charge = build / amortize_over if build else 0.0
            estimates.append(
                BackendEstimate(
                    backend=name,
                    query_cost=query,
                    build_cost=build,
                    build_charge=charge,
                    total=query + charge,
                    available=available,
                    note=note,
                )
            )
        return tuple(estimates)

    @staticmethod
    def _revisit_at(estimates: Sequence[BackendEstimate], chosen: BackendEstimate) -> float:
        """Stability past which an unamortized index could beat ``chosen``.

        Solves ``query_c + build_c / S < total_chosen`` for the smallest
        integer ``S`` over every available candidate still carrying a build
        charge; ``inf`` when no candidate can ever win (the cached plan then
        lives until the epoch moves).
        """
        revisit = inf
        for candidate in estimates:
            if not candidate.available or candidate.backend == chosen.backend:
                continue
            if candidate.build_cost and candidate.query_cost < chosen.query_cost:
                flip = candidate.build_cost / (chosen.query_cost - candidate.query_cost)
                revisit = min(revisit, float(ceil(flip)))
        return revisit

    # ------------------------------------------------------------- planning

    def _freshness_signature(self, fresh: Mapping[str, bool]) -> Tuple[str, ...]:
        return tuple(sorted(name for name, is_fresh in fresh.items() if is_fresh))

    def _cached(self, key: Tuple, epoch: int, stability: int) -> Optional[ExecutionPlan]:
        entry = self._cache.get(key)
        if entry is None or entry.epoch != epoch or stability >= entry.revisit_at:
            return None
        self.plans_cached += 1
        return entry.plan

    def _remember(self, key: Tuple, plan: ExecutionPlan, revisit_at: float) -> None:
        if not self._cache_size:
            return
        self._cache[key] = _CachedPlan(plan=plan, epoch=plan.epoch, revisit_at=revisit_at)
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def plan_reach(
        self,
        snapshot: CompiledGraph,
        expression: PathExpression,
        *,
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        pinned: Optional[str] = None,
        unreachable_rate: float = 0.0,
        refresh_ops: Optional[int] = None,
        vetoed: AbstractSet[str] = frozenset(),
        shards: int = 0,
        shard_cross_rate: float = 0.0,
    ) -> ExecutionPlan:
        """Plan one point reachability query (also the access-check unit).

        ``unreachable_rate`` is the caller's observed share of queries on
        this expression that came back unreachable — the feedback signal the
        transitive-closure prune estimate scales with (``0.0``, the default,
        prices the closure as pure overhead).  ``refresh_ops`` is the number
        of journaled mutations a stale cluster index could absorb through
        its bounded incremental refresh; ``None`` (no index built yet, or
        the journal no longer covers the gap) prices a full build.
        ``vetoed`` backends (typically: index backends whose circuit breaker
        is open) are priced out of *auto*-selection — marked
        ``available=False`` in the estimate table — while a pin still routes
        to them and surfaces the failure at execution time.

        ``shards`` > 1 makes the sharded route a candidate: the walk is
        priced at its shard-local share plus an escalation surcharge scaled
        by ``shard_cross_rate`` — the service's *observed* share of routed
        queries that crossed a shard boundary (the same cardinality-feedback
        idiom the closure prune uses), so the planner prefers local-only
        plans and abandons the sharded route on workloads that keep
        escalating.
        """
        return self._plan_costed(
            "reach", snapshot, (expression,), backends, fresh, stability, pinned,
            unreachable_rate, refresh_ops, vetoed, shards, shard_cross_rate,
        )

    def plan_access(
        self,
        snapshot: CompiledGraph,
        expressions: Sequence[PathExpression],
        *,
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        pinned: Optional[str] = None,
        unreachable_rate: float = 0.0,
        refresh_ops: Optional[int] = None,
        vetoed: AbstractSet[str] = frozenset(),
        shards: int = 0,
        shard_cross_rate: float = 0.0,
    ) -> ExecutionPlan:
        """Plan one access check: every rule condition is a reach query."""
        return self._plan_costed(
            "access", snapshot, tuple(expressions), backends, fresh, stability,
            pinned, unreachable_rate, refresh_ops, vetoed, shards,
            shard_cross_rate,
        )

    def _plan_costed(
        self,
        kind: str,
        snapshot: CompiledGraph,
        expressions: Sequence[PathExpression],
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        pinned: Optional[str],
        unreachable_rate: float = 0.0,
        refresh_ops: Optional[int] = None,
        vetoed: AbstractSet[str] = frozenset(),
        shards: int = 0,
        shard_cross_rate: float = 0.0,
    ) -> ExecutionPlan:
        epoch = snapshot.epoch
        # Bucketed so a drifting observed rate yields a handful of cache
        # variants per expression, not one per query.
        rate_bucket = int(max(0.0, min(1.0, unreachable_rate)) * _RATE_BUCKETS)
        cross_bucket = int(max(0.0, min(1.0, shard_cross_rate)) * _RATE_BUCKETS)
        # Log-bucketed: the refresh charge only needs order-of-magnitude
        # resolution, and journal growth must not mint a key per mutation.
        refresh_bucket = -1 if refresh_ops is None else refresh_ops.bit_length()
        key = (
            kind,
            tuple(sorted(expression.to_text() for expression in expressions)),
            pinned,
            tuple(backends),
            self._freshness_signature(fresh),
            rate_bucket,
            refresh_bucket,
            tuple(sorted(vetoed)),
            shards,
            cross_bucket,
        )
        cached = self._cached(key, epoch, stability)
        if cached is not None:
            return cached
        self.plans_computed += 1
        if not expressions:
            # Nothing to evaluate (e.g. a resource with no rules): any
            # backend answers from policy alone; prefer the online default.
            chosen_name = pinned or ("bfs" if "bfs" in backends else backends[0])
            plan = ExecutionPlan(
                kind=kind,
                backend=chosen_name,
                backend_forced=pinned is not None,
                epoch=epoch,
                stability=stability,
                reason="no path expressions to evaluate",
            )
            self._remember(key, plan, inf)
            return plan
        # Sum the per-expression tables into one per-backend table.
        summed: Dict[str, BackendEstimate] = {}
        for expression in expressions:
            for estimate in self._reach_estimates(
                snapshot, expression, backends, fresh, stability,
                rate_bucket / _RATE_BUCKETS, refresh_ops,
            ):
                previous = summed.get(estimate.backend)
                if previous is None:
                    summed[estimate.backend] = estimate
                else:
                    summed[estimate.backend] = BackendEstimate(
                        backend=estimate.backend,
                        query_cost=previous.query_cost + estimate.query_cost,
                        # A build is paid once, not once per expression.
                        build_cost=max(previous.build_cost, estimate.build_cost),
                        build_charge=max(previous.build_charge, estimate.build_charge),
                        total=previous.query_cost
                        + estimate.query_cost
                        + max(previous.build_charge, estimate.build_charge),
                        available=previous.available and estimate.available,
                        note=previous.note or estimate.note,
                    )
        estimates = tuple(summed[name] for name in backends if name in summed)
        if vetoed:
            # A vetoed backend keeps its cost row (benchmarks grade the
            # heuristic from the table) but cannot win auto-selection.
            estimates = tuple(
                replace(estimate, available=False, note="circuit breaker open")
                if estimate.backend in vetoed and estimate.available
                else estimate
                for estimate in estimates
            )
        if pinned is not None:
            plan = ExecutionPlan(
                kind=kind,
                backend=pinned,
                backend_forced=True,
                epoch=epoch,
                stability=stability,
                estimates=estimates,
                reason=f"backend pinned to {pinned!r} by the caller",
            )
            # A pinned plan never flips; cache until the epoch moves.
            self._remember(key, plan, inf)
            return plan
        viable = [estimate for estimate in estimates if estimate.available]
        if not viable:
            raise UnknownBackendError("<none viable>", sorted(backends))
        chosen = min(viable, key=lambda estimate: estimate.total)
        reason = (
            f"{chosen.backend} estimated cheapest at {chosen.total:.0f} units"
            + (
                f" (incl. build amortized over {max(1, stability)} stable queries)"
                if chosen.build_charge
                else ""
            )
        )
        route = "single"
        if shards > 1:
            # The shard-fanout cost term: shard-local share of the walk plus
            # an escalation surcharge that grows with the observed
            # cross-shard rate — local-only plans win, escalation-heavy
            # workloads fall back to the single snapshot.
            walk_total = sum(
                self._walk_cost(snapshot, expression)
                for expression in expressions
            )
            cross = cross_bucket / _RATE_BUCKETS
            sharded_cost = (
                len(expressions) * _SHARD_SWEEP_FIXED
                + walk_total / shards
                + cross * _SHARD_ESCALATION_FACTOR * walk_total
            )
            estimates = estimates + (
                BackendEstimate(
                    backend="sharded",
                    query_cost=sharded_cost,
                    build_cost=0.0,
                    build_charge=0.0,
                    total=sharded_cost,
                    available=True,
                    note=(
                        f"shard-local walk over {shards} shards at observed "
                        f"cross-shard rate {cross:.2f}"
                    ),
                ),
            )
            if sharded_cost < chosen.total:
                route = "sharded"
                reason = (
                    f"sharded route estimated cheapest at {sharded_cost:.0f} "
                    f"units ({shards} shards, cross-shard rate {cross:.2f}); "
                    f"single-snapshot fallback: {reason}"
                )
        plan = ExecutionPlan(
            kind=kind,
            backend=chosen.backend,
            backend_forced=False,
            epoch=epoch,
            stability=stability,
            estimates=estimates,
            reason=reason,
            route=route,
        )
        self._remember(key, plan, self._revisit_at(viable, chosen))
        return plan

    def plan_audience(
        self,
        snapshot: CompiledGraph,
        expression: PathExpression,
        owner_count: int,
        *,
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        pinned: Optional[str] = None,
        direction: str = "auto",
        shards: int = 0,
        shard_cross_rate: float = 0.0,
    ) -> ExecutionPlan:
        """Plan one audience materialization (single- or multi-owner).

        Every backend funnels audience queries into the same multi-source
        owner-bitset sweep over a fresh snapshot, so backend choice cannot
        change the work done — auto-selection keeps the query online (no
        index to go stale, no build to amortize) and leaves the real
        decision, forward vs reverse, to the sweep-direction planner whose
        executed :class:`~repro.reachability.compiled_search.SweepPlan`
        rides on the result.  ``pinned`` still routes through any backend.

        With ``shards`` > 1 the sweep can run shard-locally: it wins
        whenever its local share plus the escalation surcharge undercuts
        the whole-graph sweep, i.e. while ``shard_cross_rate`` (observed)
        stays under ``(1 - 1/shards) / escalation_factor``.
        """
        epoch = snapshot.epoch
        cross_bucket = int(max(0.0, min(1.0, shard_cross_rate)) * _RATE_BUCKETS)
        key = (
            "audience", expression.to_text(), pinned, direction,
            tuple(backends), shards, cross_bucket,
        )
        cached = self._cached(key, epoch, stability)
        if cached is not None:
            return cached
        self.plans_computed += 1
        route = "single"
        if pinned is not None:
            backend, forced = pinned, True
            reason = f"backend pinned to {pinned!r} by the caller"
        else:
            backend = "bfs" if "bfs" in backends else backends[0]
            forced = False
            reason = (
                "all backends share the multi-source audience sweep; "
                f"{backend} runs it on the live snapshot with no index to build"
            )
            route, reason = self._sweep_route(shards, cross_bucket, reason)
        plan = ExecutionPlan(
            kind="audience",
            backend=backend,
            backend_forced=forced,
            direction=direction,
            epoch=epoch,
            stability=stability,
            reason=reason,
            route=route,
        )
        self._remember(key, plan, inf)
        return plan

    @staticmethod
    def _sweep_route(
        shards: int, cross_bucket: int, reason: str
    ) -> Tuple[str, str]:
        """Route a whole-graph sweep: shard-local iff the surcharge is beat.

        A sweep's work is proportional to the edges scanned, so the sharded
        estimate is the single sweep's ``1/shards`` share plus the
        escalation surcharge — no absolute walk estimate needed, the
        comparison divides out.
        """
        if shards <= 1:
            return "single", reason
        cross = cross_bucket / _RATE_BUCKETS
        sharded_share = 1.0 / shards + cross * _SHARD_ESCALATION_FACTOR
        if sharded_share < 1.0:
            return "sharded", (
                f"shard-local sweep estimated at {sharded_share:.2f}x the "
                f"whole-graph sweep ({shards} shards, observed cross-shard "
                f"rate {cross:.2f})"
            )
        return "single", (
            f"{reason}; sharded route declined at observed cross-shard "
            f"rate {cross:.2f}"
        )

    def plan_bulk_access(
        self,
        snapshot: CompiledGraph,
        expression_count: int,
        *,
        backends: Sequence[str],
        fresh: Mapping[str, bool],
        stability: int,
        pinned: Optional[str] = None,
        direction: str = "auto",
        shards: int = 0,
        shard_cross_rate: float = 0.0,
    ) -> ExecutionPlan:
        """Plan one bulk audience materialization across many resources."""
        epoch = snapshot.epoch
        cross_bucket = int(max(0.0, min(1.0, shard_cross_rate)) * _RATE_BUCKETS)
        key = (
            "bulk-access", expression_count, pinned, direction,
            tuple(backends), shards, cross_bucket,
        )
        cached = self._cached(key, epoch, stability)
        if cached is not None:
            return cached
        self.plans_computed += 1
        route = "single"
        if pinned is not None:
            backend, forced = pinned, True
            reason = f"backend pinned to {pinned!r} by the caller"
        else:
            backend = "bfs" if "bfs" in backends else backends[0]
            forced = False
            reason = (
                "bulk audiences run one shared sweep per distinct expression; "
                f"{backend} sweeps the live snapshot directly"
            )
            route, reason = self._sweep_route(shards, cross_bucket, reason)
        plan = ExecutionPlan(
            kind="bulk-access",
            backend=backend,
            backend_forced=forced,
            direction=direction,
            epoch=epoch,
            stability=stability,
            reason=reason,
            route=route,
        )
        self._remember(key, plan, inf)
        return plan

    # ---------------------------------------------------------------- stats

    def statistics(self) -> Dict[str, float]:
        """Planner observability counters (computed vs cache-served plans).

        ``plan_cache_hits`` / ``plan_cache_misses`` spell the same two
        counters in cache vocabulary: a cache-served plan is a hit, a
        computed plan is a miss (every plan is exactly one of the two).
        """
        return {
            "plans_computed": float(self.plans_computed),
            "plans_cached": float(self.plans_cached),
            "plan_cache_entries": float(len(self._cache)),
            "plan_cache_hits": float(self.plans_cached),
            "plan_cache_misses": float(self.plans_computed),
        }
