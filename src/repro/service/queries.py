"""Typed query objects — the *what* of the request/plan/execute split.

Each query is an immutable dataclass naming everything the planner needs and
nothing about *how* the answer is computed.  The two optional knobs that used
to be dispatch mechanics are now **plan pins**:

* ``backend`` — pin the query to one reachability backend (``"bfs"``,
  ``"dfs"``, ``"transitive-closure"``, ``"cluster-index"``).  ``None`` (or
  ``"auto"``) lets the :class:`~repro.service.planner.QueryPlanner` choose.
* ``direction`` — pin the audience sweep's direction (``"forward"``,
  ``"reverse"``, ``"batched"``); ``"auto"`` keeps the PR 3 sweep planner in
  charge.

Expressions may be path-expression text or parsed
:class:`~repro.policy.path_expression.PathExpression` objects; the service
parses text once through its shared parse cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Tuple, Union

from repro.policy.path_expression import PathExpression
from repro.reachability.compiled_search import SWEEP_DIRECTIONS

__all__ = [
    "Expression",
    "Query",
    "ReachQuery",
    "AudienceQuery",
    "AccessQuery",
    "BulkAccessQuery",
]

Expression = Union[str, PathExpression]


def _check_direction(direction: str) -> None:
    if direction not in SWEEP_DIRECTIONS:
        raise ValueError(
            f"unknown sweep direction {direction!r}; expected one of {SWEEP_DIRECTIONS}"
        )


def _as_tuple(values, *, what: str) -> Tuple[Hashable, ...]:
    """Normalize one hashable or an iterable of them to a tuple.

    Strings and bytes count as single values (they are iterable but almost
    never meant as a collection of one-character ids).
    """
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        return (values,)
    normalized = tuple(values)
    if isinstance(values, (set, frozenset)):
        # Sets have no stable order; results are keyed mappings anyway, but a
        # deterministic tuple keeps plans and sweeps reproducible.
        normalized = tuple(sorted(normalized, key=str))
    return normalized


@dataclass(frozen=True)
class ReachQuery:
    """May ``target`` be reached from ``source`` along ``expression``?"""

    source: Hashable
    target: Hashable
    expression: Expression
    collect_witness: bool = True
    backend: Optional[str] = None

    @property
    def kind(self) -> str:
        return "reach"


@dataclass(frozen=True)
class AudienceQuery:
    """Materialize every user reachable from each owner under ``expression``.

    ``owners`` accepts a single owner or any iterable of owners and is
    normalized to a tuple (duplicates are semantically idempotent — the
    engine deduplicates before sweeping).
    """

    owners: Tuple[Hashable, ...]
    expression: Expression
    direction: str = "auto"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "owners", _as_tuple(self.owners, what="owners"))
        _check_direction(self.direction)

    @property
    def kind(self) -> str:
        return "audience"


@dataclass(frozen=True)
class AccessQuery:
    """May ``requester`` access ``resource_id`` under the stored rules?"""

    requester: Hashable
    resource_id: Hashable
    explain: bool = True
    backend: Optional[str] = None

    @property
    def kind(self) -> str:
        return "access"


@dataclass(frozen=True)
class BulkAccessQuery:
    """Materialize the authorized audiences of many resources in one pass."""

    resource_ids: Tuple[Hashable, ...]
    direction: str = "auto"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "resource_ids", _as_tuple(self.resource_ids, what="resource_ids")
        )
        _check_direction(self.direction)

    @property
    def kind(self) -> str:
        return "bulk-access"


#: Any of the four query shapes :meth:`GraphService.execute` dispatches on.
Query = Union[ReachQuery, AudienceQuery, AccessQuery, BulkAccessQuery]
