"""Plan-carrying results — every answer explains how it was produced.

A :class:`PlannedResult` owns the :class:`~repro.service.planner.
ExecutionPlan` that produced it (and, for audience shapes, the executed
:class:`~repro.reachability.compiled_search.SweepPlan`).  This replaces the
mutable ``last_sweep_plan`` / ``last_audience_plans`` attributes: a result's
provenance can no longer be overwritten by the next call, so the historical
race — reading a side-channel after a memo-warm call and seeing a *previous*
call's plan — is structurally impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional, Set, Tuple

from repro.graph.paths import Path
from repro.policy.decisions import AccessDecision
from repro.reachability.compiled_search import SweepPlan
from repro.service.planner import ExecutionPlan

__all__ = [
    "PlannedResult",
    "ReachResult",
    "AudienceResult",
    "AccessResult",
    "BulkAccessResult",
    "BulkReachResult",
]


@dataclass(frozen=True)
class PlannedResult:
    """Base of every service answer: the plan that ran plus wall-clock time."""

    plan: ExecutionPlan
    elapsed_seconds: float

    @property
    def backend(self) -> str:
        """The backend that actually executed this query."""
        return self.plan.backend


@dataclass(frozen=True)
class ReachResult(PlannedResult):
    """Answer to a :class:`~repro.service.queries.ReachQuery`."""

    reachable: bool = False
    witness: Optional[Path] = None
    counters: Mapping[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.reachable

    def describe(self) -> str:
        """One-line human-readable summary (verdict, backend, witness)."""
        verdict = "reachable" if self.reachable else "not reachable"
        parts = [verdict, f"backend={self.plan.backend}"]
        if self.witness is not None:
            parts.append("via " + " -> ".join(str(node) for node in self.witness.nodes()))
        return "; ".join(parts)


@dataclass(frozen=True)
class AudienceResult(PlannedResult):
    """Answer to an :class:`~repro.service.queries.AudienceQuery`.

    ``audiences`` maps every requested owner to their audience set.
    ``sweep_plan`` is the executed sweep's plan — ``None`` when nothing was
    swept because every owner was served from the epoch-stamped memo (the
    plan describes work done, and a fully warm call does none).
    ``partial`` is ``True`` when a :class:`~repro.reliability.guard.
    QueryGuard` budget tripped mid-sweep: completed audiences are exact,
    the audience being swept at the trip is truncated, and owners not yet
    reached are empty — never trust a partial result as a full answer.
    """

    audiences: Mapping[Hashable, Set[Hashable]] = field(default_factory=dict)
    sweep_plan: Optional[SweepPlan] = None
    partial: bool = False

    def __getitem__(self, owner: Hashable) -> Set[Hashable]:
        return self.audiences[owner]

    def __iter__(self):
        return iter(self.audiences)

    def __len__(self) -> int:
        return len(self.audiences)


@dataclass(frozen=True)
class AccessResult(PlannedResult):
    """Answer to an :class:`~repro.service.queries.AccessQuery`."""

    decision: AccessDecision = None  # type: ignore[assignment]

    @property
    def granted(self) -> bool:
        return self.decision.granted

    def __bool__(self) -> bool:
        return self.granted

    def explain(self) -> str:
        """The decision's human-readable explanation."""
        return self.decision.explain()


@dataclass(frozen=True)
class BulkReachResult(PlannedResult):
    """Answer to :meth:`~repro.service.GraphService.reach_many`.

    ``reachable`` maps each requested ``(source, target)`` pair to its
    verdict; all pairs sharing one expression are answered from a single
    multi-source owner-bitset sweep over the distinct sources (the serving
    coalescer's bulk entry point).  No witnesses are collected — a pair's
    verdict is audience membership, not a path.  ``partial`` is ``True``
    when a query-guard budget tripped mid-sweep: the mapping then
    *under-approximates* (``False`` entries are inconclusive) and callers
    must treat the whole result as unusable for point answers — the serving
    coalescer falls back to per-request execution in that case.
    """

    reachable: Mapping[Tuple[Hashable, Hashable], bool] = field(default_factory=dict)
    sweep_plan: Optional[SweepPlan] = None
    partial: bool = False

    def __getitem__(self, pair: Tuple[Hashable, Hashable]) -> bool:
        return self.reachable[pair]

    def __iter__(self):
        return iter(self.reachable)

    def __len__(self) -> int:
        return len(self.reachable)


@dataclass(frozen=True)
class BulkAccessResult(PlannedResult):
    """Answer to a :class:`~repro.service.queries.BulkAccessQuery`.

    ``audiences`` maps resource id to the full authorized audience;
    ``sweep_plans`` maps expression text to the executed sweep plan of that
    expression's shared multi-source sweep (expressions served entirely from
    the memo swept nothing and have no entry).  ``partial`` is ``True`` when
    a query-guard budget tripped mid-materialization — audiences computed
    after the trip under-approximate and must not be treated as complete.
    """

    audiences: Mapping[Hashable, Set[Hashable]] = field(default_factory=dict)
    sweep_plans: Mapping[str, SweepPlan] = field(default_factory=dict)
    partial: bool = False

    def __getitem__(self, resource_id: Hashable) -> Set[Hashable]:
        return self.audiences[resource_id]

    def __iter__(self):
        return iter(self.audiences)

    def __len__(self) -> int:
        return len(self.audiences)
