"""Async serving front-end: coalescing, per-tenant sessions, admission.

The serving layer turns one-process :class:`~repro.service.facade.
GraphService` instances into a multi-tenant asyncio front end:

* :mod:`~repro.serving.coalescer` — concurrent in-flight requests sharing
  a path expression within a short gather window become ONE bulk
  execution (``reach_many`` / multi-owner ``audience`` / ``bulk_access``),
  fanned back to per-request futures with answers differentially
  indistinguishable from sequential execution;
* :mod:`~repro.serving.session` — per-tenant sessions over independent
  services (hard isolation: own graph, store, caches, worker thread) plus
  the :class:`TenantRegistry` routing and aggregating them;
* :mod:`~repro.serving.admission` — bounded pending work with typed
  :class:`~repro.exceptions.AdmissionRejected` and per-request deadlines
  wired into the engine's :class:`~repro.reliability.guard.QueryGuard`;
* :mod:`~repro.serving.client` / :mod:`~repro.serving.server` — the
  in-process :class:`AsyncGraphClient` and the TCP JSON-lines protocol
  server (``python -m repro.serving`` runs a demo instance).

Everything is stdlib-only (asyncio + one worker thread per tenant).
"""

from repro.exceptions import AdmissionRejected, ProtocolError, UnknownTenantError
from repro.serving.admission import AdmissionController
from repro.serving.client import AsyncGraphClient
from repro.serving.coalescer import BATCH_HISTOGRAM_BUCKETS, RequestCoalescer
from repro.serving.server import ServingServer
from repro.serving.session import (
    ServedAccess,
    ServedAudience,
    ServedReach,
    TenantRegistry,
    TenantSession,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AsyncGraphClient",
    "BATCH_HISTOGRAM_BUCKETS",
    "ProtocolError",
    "RequestCoalescer",
    "ServedAccess",
    "ServedAudience",
    "ServedReach",
    "ServingServer",
    "TenantRegistry",
    "TenantSession",
    "UnknownTenantError",
]
