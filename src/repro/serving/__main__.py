"""``python -m repro.serving`` — run a demo multi-tenant serving instance.

Builds one generated workload graph per tenant (seeded, so two runs serve
identical data), installs the workload's policies, starts the TCP
JSON-lines server and prints the bound address plus a copy-pasteable
sample request.  Stdlib-only; stop with Ctrl-C.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.serving.server import ServingServer
from repro.serving.session import TenantRegistry
from repro.workloads.driver import install_policies
from repro.workloads.generator import WorkloadSpec, build_workload


def _build_registry(args: argparse.Namespace):
    registry = TenantRegistry(
        window=args.window,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
    )
    sample = None
    for index in range(args.tenants):
        tenant_id = f"tenant-{index}"
        workload = build_workload(
            WorkloadSpec(users=args.users, seed=args.seed + index)
        )
        session = registry.create(tenant_id, workload.graph)
        install_policies(session.service, workload)
        if sample is None and workload.requests:
            requester, resource_id = workload.requests[0]
            sample = {
                "id": 1,
                "op": "check",
                "tenant": tenant_id,
                "requester": str(requester),
                "resource": resource_id,
            }
    return registry, sample


async def _serve(args: argparse.Namespace) -> None:
    registry, sample = _build_registry(args)
    server = ServingServer(registry, host=args.host, port=args.port)
    host, port = await server.start()
    print(f"serving {args.tenants} tenant(s) on {host}:{port}")
    if sample is not None:
        print(f"sample: {json.dumps(sample)}")
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Run a demo multi-tenant serving instance.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--users", type=int, default=300, help="users per tenant graph")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--window", type=float, default=0.002, help="coalescing window (seconds)"
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-pending", type=int, default=256)
    args = parser.parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
