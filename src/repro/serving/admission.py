"""Admission control: bounded pending work and per-request deadlines.

Each :class:`~repro.serving.session.TenantSession` owns one
:class:`AdmissionController`.  A request is *admitted* when it enters the
session (before coalescing) and *released* when its answer — or error —
is ready; between the two it counts against the tenant's ``max_pending``
bound.  When the bound is hit, new requests are rejected immediately with
a typed :class:`~repro.exceptions.AdmissionRejected` instead of queueing
without limit: under overload the server sheds load at the front door
rather than letting latency grow unboundedly (open-loop arrivals do not
slow down just because the server is busy).

Deadlines ride the same path: :meth:`AdmissionController.deadline_for`
converts a per-request timeout into an absolute ``time.monotonic``
deadline, which the session then installs with
:func:`repro.reliability.guard.deadline_scope` around the worker-thread
execution so the engine's :class:`~repro.reliability.guard.QueryGuard`
enforces it cooperatively (min-combined with the guard's own deadline).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Optional

from repro.exceptions import AdmissionRejected

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-pending admission with absolute-deadline derivation.

    Not thread-safe by design: admit/release happen only on the serving
    event loop (the worker threads never touch it).
    """

    def __init__(
        self,
        tenant: Hashable,
        *,
        max_pending: int = 256,
        default_timeout: Optional[float] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.tenant = tenant
        self.max_pending = int(max_pending)
        #: Timeout (seconds) applied when a request carries none; ``None``
        #: means admitted requests run under the guard's own budgets only.
        self.default_timeout = default_timeout
        self.pending = 0
        self.peak_pending = 0
        self.admitted = 0
        self.rejected = 0

    # -------------------------------------------------------------- lifecycle

    def admit(self) -> None:
        """Count one request in, or raise :class:`AdmissionRejected`."""
        if self.pending >= self.max_pending:
            self.rejected += 1
            raise AdmissionRejected(self.tenant, self.pending, self.max_pending)
        self.pending += 1
        self.admitted += 1
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending

    def release(self) -> None:
        """Count one request out (answered or failed)."""
        if self.pending <= 0:
            raise RuntimeError("release() without matching admit()")
        self.pending -= 1

    # -------------------------------------------------------------- deadlines

    def deadline_for(self, timeout: Optional[float] = None) -> Optional[float]:
        """Absolute ``time.monotonic`` deadline for a request's timeout.

        Explicit ``timeout`` wins; otherwise ``default_timeout`` applies;
        ``None`` both places means no request-level deadline.
        """
        effective = self.default_timeout if timeout is None else timeout
        if effective is None:
            return None
        return time.monotonic() + float(effective)

    # ------------------------------------------------------------- statistics

    def statistics(self) -> Dict[str, float]:
        return {
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "pending": float(self.pending),
            "peak_pending": float(self.peak_pending),
            "max_pending": float(self.max_pending),
        }

    def __repr__(self) -> str:
        return (
            f"<AdmissionController tenant={self.tenant!r} "
            f"pending={self.pending}/{self.max_pending}>"
        )
