"""In-process async client over a :class:`~repro.serving.session.TenantRegistry`.

:class:`AsyncGraphClient` is the handle application code holds: it binds
one tenant id and exposes the serving verbs as awaitables, so many
concurrent coroutines naturally drive the coalescer (``asyncio.gather``
over same-expression calls becomes one bulk sweep).  It is "in-process" —
no sockets; the TCP counterpart is :mod:`repro.serving.server`, which
speaks :mod:`repro.serving.protocol` over asyncio streams and dispatches
into the very same sessions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.serving.session import (
    ServedAccess,
    ServedAudience,
    ServedReach,
    TenantRegistry,
    TenantSession,
)

__all__ = ["AsyncGraphClient"]


class AsyncGraphClient:
    """Tenant-bound async facade: ``reach`` / ``audience`` / ``check`` / stats.

    Construct with a registry plus tenant id, or adopt a standalone
    session via :meth:`for_session`.  Admission rejections and budget
    errors surface as their typed exceptions, exactly as the session
    raises them.
    """

    def __init__(self, registry: TenantRegistry, tenant_id: Hashable) -> None:
        self._registry = registry
        self.tenant_id = tenant_id

    @classmethod
    def for_session(cls, session: TenantSession) -> "AsyncGraphClient":
        """Bind a client directly to one session (single-tenant setups)."""
        registry = TenantRegistry()
        registry._sessions[session.tenant_id] = session
        return cls(registry, session.tenant_id)

    @property
    def session(self) -> TenantSession:
        """The live session (re-resolved per call: survives re-registration)."""
        return self._registry.get(self.tenant_id)

    async def reach(
        self,
        source: Hashable,
        target: Hashable,
        expression,
        *,
        witness: bool = False,
        timeout: Optional[float] = None,
    ) -> ServedReach:
        return await self.session.reach(
            source, target, expression, witness=witness, timeout=timeout
        )

    async def audience(
        self,
        owner: Hashable,
        expression,
        *,
        direction: str = "auto",
        timeout: Optional[float] = None,
    ) -> ServedAudience:
        return await self.session.audience(
            owner, expression, direction=direction, timeout=timeout
        )

    async def check(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        timeout: Optional[float] = None,
    ) -> ServedAccess:
        return await self.session.check(requester, resource_id, timeout=timeout)

    async def is_reachable(
        self, source: Hashable, target: Hashable, expression
    ) -> bool:
        return (await self.reach(source, target, expression)).reachable

    async def is_allowed(
        self, requester: Hashable, resource_id: Hashable
    ) -> bool:
        return (await self.check(requester, resource_id)).granted

    async def statistics(self) -> Dict[str, float]:
        return await self.session.statistics()

    def __repr__(self) -> str:
        return f"<AsyncGraphClient tenant={self.tenant_id!r}>"
