"""Request coalescing: gather concurrent same-expression requests into batches.

The :class:`RequestCoalescer` is the asyncio-side half of the serving
subsystem's core trick.  Concurrent in-flight requests that share a
*coalesce key* (for this engine: the path-expression text plus the query
shape — the unit one multi-source owner-bitset sweep can answer) are
gathered into one batch for up to a short **window** (or until a
**batch-size cap**), then handed to a runner that executes the whole batch
as ONE bulk query on the tenant's worker thread and fans the per-request
answers back out to the per-request futures.

The coalescer is deliberately generic: it knows nothing about graphs.  It
owns batching, timers, futures, and the batch-size histogram; the
:class:`~repro.serving.session.TenantSession` supplies the runner that
turns a ``(key, requests)`` batch into per-request outcomes.

Semantics
---------
* ``window <= 0`` or ``max_batch == 1`` degrade to request-at-a-time
  dispatch (every submission is its own batch) — the benchmark baseline.
* A batch flushes **early** when it reaches ``max_batch`` members; the
  window is a latency ceiling, not a floor for full batches.
* The runner returns one outcome per request, aligned by position; an
  outcome that is a :class:`Raised` carries an exception to set on that
  request's future (so one member's typed error — an expired deadline, an
  unknown node — never poisons its batch-mates).
* Cancelled requesters are skipped at fan-out; the batch still runs (its
  result may serve the other members).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["Raised", "RequestCoalescer", "BATCH_HISTOGRAM_BUCKETS"]

#: Upper edges of the batch-size histogram buckets (the last bucket is
#: open-ended).  Surfaced through ``GraphService.statistics()`` as
#: ``coalescer_batch_le_<edge>`` counters.
BATCH_HISTOGRAM_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


class Raised:
    """Fan-out wrapper: this request's outcome is an exception, not a value."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error

    def __repr__(self) -> str:
        return f"<Raised {type(self.error).__name__}: {self.error}>"


class _Batch:
    __slots__ = ("key", "items", "handle", "flushed")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.items: List[Tuple[object, asyncio.Future]] = []
        self.handle: Optional[asyncio.TimerHandle] = None
        self.flushed = False


#: A batch runner: receives the coalesce key and the batch's requests (in
#: arrival order) and returns one outcome per request — the answer itself,
#: or :class:`Raised` wrapping the exception to raise to that requester.
BatchRunner = Callable[[Hashable, List[object]], Awaitable[Sequence[object]]]


class RequestCoalescer:
    """Batch concurrent same-key requests; fan results back to futures.

    Must be used from a single asyncio event loop (the serving server's).
    ``window`` is the gather window in seconds; ``max_batch`` caps batch
    size (a full batch flushes immediately).
    """

    def __init__(
        self,
        runner: BatchRunner,
        *,
        window: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._runner = runner
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._open: Dict[Hashable, _Batch] = {}
        self._inflight: set = set()
        # ------------------------------------------------ lifetime counters
        self.requests_submitted = 0
        #: Requests that shared their batch with at least one other request.
        self.requests_coalesced = 0
        self.batches_executed = 0
        self.runner_failures = 0
        self._histogram = [0] * (len(BATCH_HISTOGRAM_BUCKETS) + 1)

    # ---------------------------------------------------------------- submit

    async def submit(self, key: Hashable, request: object) -> object:
        """Enqueue one request under ``key``; await its individual answer."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.requests_submitted += 1
        batch = self._open.get(key)
        if batch is None:
            batch = _Batch(key)
            if self.window > 0 and self.max_batch > 1:
                self._open[key] = batch
                batch.handle = loop.call_later(self.window, self._flush, batch)
        batch.items.append((request, future))
        if self.window <= 0 or len(batch.items) >= self.max_batch:
            self._flush(batch)
        return await future

    # ----------------------------------------------------------------- flush

    def _flush(self, batch: _Batch) -> None:
        if batch.flushed:
            return
        batch.flushed = True
        if self._open.get(batch.key) is batch:
            del self._open[batch.key]
        if batch.handle is not None:
            batch.handle.cancel()
        size = len(batch.items)
        self.batches_executed += 1
        if size > 1:
            self.requests_coalesced += size
        self._record_size(size)
        task = asyncio.ensure_future(self._run(batch))
        # Keep a strong reference until done (asyncio only holds weak ones).
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, batch: _Batch) -> None:
        requests = [request for request, _future in batch.items]
        try:
            outcomes: Sequence[object] = await self._runner(batch.key, requests)
            if len(outcomes) != len(requests):
                raise RuntimeError(
                    f"batch runner returned {len(outcomes)} outcomes "
                    f"for {len(requests)} requests"
                )
        except BaseException as error:  # noqa: BLE001 — fanned out, not dropped
            self.runner_failures += 1
            outcomes = [Raised(error)] * len(requests)
        for (_request, future), outcome in zip(batch.items, outcomes):
            if future.done():  # cancelled requester
                continue
            if isinstance(outcome, Raised):
                future.set_exception(outcome.error)
            else:
                future.set_result(outcome)

    async def drain(self) -> None:
        """Flush every open batch and wait for all in-flight runs to finish."""
        for batch in list(self._open.values()):
            self._flush(batch)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    # ------------------------------------------------------------ statistics

    def _record_size(self, size: int) -> None:
        for index, edge in enumerate(BATCH_HISTOGRAM_BUCKETS):
            if size <= edge:
                self._histogram[index] += 1
                return
        self._histogram[-1] += 1

    def batch_size_histogram(self) -> Dict[str, int]:
        """Batch-size counts by bucket (``le_<edge>`` plus open-ended ``gt``)."""
        counts = {
            f"batch_le_{edge}": self._histogram[index]
            for index, edge in enumerate(BATCH_HISTOGRAM_BUCKETS)
        }
        counts[f"batch_gt_{BATCH_HISTOGRAM_BUCKETS[-1]}"] = self._histogram[-1]
        return counts

    def statistics(self) -> Dict[str, float]:
        """Lifetime counters plus the batch-size histogram, all floats."""
        stats = {
            "requests_submitted": float(self.requests_submitted),
            "requests_coalesced": float(self.requests_coalesced),
            "batches_executed": float(self.batches_executed),
            "runner_failures": float(self.runner_failures),
            "open_batches": float(len(self._open)),
        }
        for name, count in self.batch_size_histogram().items():
            stats[name] = float(count)
        return stats

    def __repr__(self) -> str:
        return (
            f"<RequestCoalescer window={self.window} max_batch={self.max_batch} "
            f"batches={self.batches_executed}>"
        )
