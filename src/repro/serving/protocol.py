"""The serving wire protocol: JSON-lines frames over a byte stream.

Stdlib-only and deliberately small.  One frame per line (``\\n``
terminated, UTF-8 JSON object).  Requests carry ``id`` (echoed verbatim
on the response — responses may arrive out of order), ``op`` and
op-specific fields; responses are either::

    {"id": ..., "ok": true,  "result": {...}}
    {"id": ..., "ok": false, "error": {"type": "...", "message": "..."}}

``error.type`` is the exception class name (``AdmissionRejected``,
``QueryBudgetExceeded``, ``NodeNotFoundError``, ``UnknownTenantError``,
``ProtocolError``, ...), so clients can switch on it without parsing
messages.  The full frame reference lives in ``docs/serving_protocol.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.exceptions import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "jsonable",
    "result_frame",
]

#: Upper bound on one encoded frame (requests beyond it are refused with a
#: :class:`ProtocolError` instead of buffering without limit).
MAX_FRAME_BYTES = 1 << 20


def jsonable(value: Any) -> Any:
    """Recursively convert a result value into JSON-encodable form.

    Sets (audiences) become **sorted** lists so frames are deterministic;
    tuples become lists; mapping keys are stringified.  Anything already
    JSON-native passes through; other objects fall back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    return str(value)


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline)."""
    return (
        json.dumps(jsonable(frame), separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict, or raise ProtocolError."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(text)
    except ValueError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def result_frame(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """Build the success response for one request id."""
    return {"id": request_id, "ok": True, "result": result}


def error_frame(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """Build the structured error response for one request id."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }
