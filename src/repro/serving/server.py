"""Asyncio TCP server speaking the JSON-lines serving protocol.

One :class:`ServingServer` fronts one :class:`~repro.serving.session.
TenantRegistry`.  Each connection reads newline-delimited request frames;
every frame is dispatched as its own task, so a connection can have many
requests in flight and responses return **out of order** — the echoed
``id`` is the correlation key.  That per-frame concurrency is what feeds
the coalescer: frames arriving within a gather window that share a path
expression become one bulk execution.

Ops (see ``docs/serving_protocol.md`` for the field tables):

=========  ==========================================================
``ping``   liveness; echoes ``{"pong": true}``
``reach``  tenant, source, target, expression[, witness, timeout]
``audience``  tenant, owner, expression[, direction, timeout]
``check``  tenant, requester, resource[, timeout]
``stats``  tenant -> that tenant's counters; no tenant -> aggregate
=========  ==========================================================

Typed failures (admission rejections, budget trips, unknown tenants or
nodes, malformed frames) become structured error frames; the connection
stays up.  Only an unparseable line with no recoverable ``id`` answers
with ``id: null``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Set, Tuple

from repro.exceptions import ProtocolError
from repro.serving.protocol import (
    decode_frame,
    encode_frame,
    error_frame,
    result_frame,
)
from repro.serving.session import TenantRegistry

__all__ = ["ServingServer"]


def _require(frame: Dict[str, Any], *fields: str) -> Tuple[Any, ...]:
    missing = [name for name in fields if name not in frame]
    if missing:
        raise ProtocolError(
            f"op {frame.get('op')!r} requires field(s): {', '.join(missing)}"
        )
    return tuple(frame[name] for name in fields)


class ServingServer:
    """TCP front end: ``await start()``, connect, send JSON lines."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self.connections_accepted = 0
        self.frames_served = 0
        self.frames_failed = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel connections, close tenant sessions."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.registry.close()

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        write_lock = asyncio.Lock()  # frames must not interleave mid-line
        frame_tasks: Set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_frame(line, writer, write_lock)
                )
                frame_tasks.add(task)
                task.add_done_callback(frame_tasks.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if me is not None:
                self._conn_tasks.discard(me)
            if frame_tasks:
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            result = await self._dispatch(frame)
            response = result_frame(request_id, result)
            self.frames_served += 1
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 — typed error frame
            response = error_frame(request_id, error)
            self.frames_failed += 1
        async with write_lock:
            try:
                writer.write(encode_frame(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer went away; nothing to deliver the answer to

    # -------------------------------------------------------------- dispatch

    async def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        op = frame.get("op")
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            if "tenant" in frame and frame["tenant"] is not None:
                session = self.registry.get(frame["tenant"])
                return {"statistics": await session.statistics()}
            return {"statistics": await self.registry.serving_statistics()}
        if op == "reach":
            tenant, source, target, expression = _require(
                frame, "tenant", "source", "target", "expression"
            )
            session = self.registry.get(tenant)
            served = await session.reach(
                source,
                target,
                expression,
                witness=bool(frame.get("witness", False)),
                timeout=frame.get("timeout"),
            )
            result: Dict[str, Any] = {
                "reachable": served.reachable,
                "coalesced": served.coalesced,
                "batch_size": served.batch_size,
            }
            if served.witness is not None:
                result["witness"] = [str(node) for node in served.witness.nodes()]
            return result
        if op == "audience":
            tenant, owner, expression = _require(
                frame, "tenant", "owner", "expression"
            )
            session = self.registry.get(tenant)
            served = await session.audience(
                owner,
                expression,
                direction=frame.get("direction", "auto"),
                timeout=frame.get("timeout"),
            )
            return {
                "audience": served.audience,
                "partial": served.partial,
                "coalesced": served.coalesced,
                "batch_size": served.batch_size,
            }
        if op == "check":
            tenant, requester, resource = _require(
                frame, "tenant", "requester", "resource"
            )
            session = self.registry.get(tenant)
            served = await session.check(
                requester, resource, timeout=frame.get("timeout")
            )
            return {
                "granted": served.granted,
                "reason": served.reason,
                "coalesced": served.coalesced,
                "batch_size": served.batch_size,
            }
        raise ProtocolError(f"unknown op: {op!r}")

    def __repr__(self) -> str:
        state = "started" if self._server is not None else "stopped"
        return f"<ServingServer {state} tenants={len(self.registry)}>"
