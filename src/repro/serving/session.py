"""Per-tenant serving sessions and the tenant registry.

One :class:`TenantSession` wraps one :class:`~repro.service.facade.
GraphService` for async serving:

* every service call runs on the tenant's **single worker thread** — the
  facade (guard state, memos, planner feedback) is not thread-safe, so the
  session serializes a tenant's execution and the serving process wins
  concurrency from coalescing within a tenant and parallelism *across*
  tenants;
* an :class:`~repro.serving.coalescer.RequestCoalescer` gathers concurrent
  same-expression requests and answers each batch with ONE bulk execution
  (:meth:`~repro.service.facade.GraphService.reach_many`, a multi-owner
  :meth:`~repro.service.facade.GraphService.audience` sweep, or one
  :meth:`~repro.service.facade.GraphService.bulk_access`);
* an :class:`~repro.serving.admission.AdmissionController` bounds pending
  work (typed :class:`~repro.exceptions.AdmissionRejected` on overload)
  and derives per-request absolute deadlines, installed around worker
  execution with :func:`repro.reliability.guard.deadline_scope` so the
  engine's :class:`~repro.reliability.guard.QueryGuard` enforces them.

Equivalence contract
--------------------
A coalesced batch must be **differentially indistinguishable** from
running its members sequentially.  The batch executes under one guard
scope whose deadline is the batch's earliest member deadline.  If the
batch completes without tripping the guard, every member's answer is the
answer sequential execution would produce (a non-tripping batch did at
most the work budget of ONE query, so no individual member could have
tripped alone; a pair's verdict is audience membership, exactly the
boolean :meth:`~repro.service.facade.GraphService.reach` computes; an
access grant for a non-owner against a ruled resource is membership in
the resource's authorized audience).  If the batch DOES trip
(``partial=True``), the session **falls back to sequential per-request
execution**, each member under its own guard scope and deadline — partial
semantics, typed budget errors and degradation counters then match the
unbatched path by construction.  Requests bulk execution cannot express
(witness collection, owner/no-rule/unknown-resource access checks, absent
reach endpoints) take the **solo path** from the start.

The one observable divergence is memo warmth: a batch leaves the engine's
per-owner targets memo warmer than N point queries would, so a later
guarded query may be served from memo where a cold sequential run would
have exceeded its budget.  That divergence only ever turns a sequential
*rejection* into a served *answer* — never a different answer.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import NodeNotFoundError, UnknownTenantError
from repro.graph.paths import Path
from repro.graph.social_graph import SocialGraph
from repro.policy.decisions import AccessDecision, Effect
from repro.policy.store import PolicyStore
from repro.reliability.guard import QueryGuard, deadline_scope
from repro.service.facade import GraphService
from repro.serving.admission import AdmissionController
from repro.serving.coalescer import Raised, RequestCoalescer

__all__ = [
    "ServedAccess",
    "ServedAudience",
    "ServedReach",
    "TenantRegistry",
    "TenantSession",
]


# --------------------------------------------------------------- responses


@dataclass(frozen=True)
class ServedReach:
    """One served reachability verdict, with coalescing observability."""

    source: Hashable
    target: Hashable
    expression: str
    reachable: bool
    witness: Optional[Path] = None
    #: Whether this answer shared its execution with batch-mates.
    coalesced: bool = False
    #: Members of the batch that produced this answer (1 on the solo path).
    batch_size: int = 1

    def __bool__(self) -> bool:
        return self.reachable


@dataclass(frozen=True)
class ServedAudience:
    """One served audience materialization."""

    owner: Hashable
    expression: str
    audience: frozenset = frozenset()
    partial: bool = False
    coalesced: bool = False
    batch_size: int = 1

    def __contains__(self, user: Hashable) -> bool:
        return user in self.audience

    def __len__(self) -> int:
        return len(self.audience)


@dataclass(frozen=True)
class ServedAccess:
    """One served access decision."""

    requester: Hashable
    resource_id: Hashable
    granted: bool
    reason: str = ""
    coalesced: bool = False
    batch_size: int = 1

    def __bool__(self) -> bool:
        return self.granted


# ---------------------------------------------------------------- requests


@dataclass(frozen=True)
class _ReachRequest:
    source: Hashable
    target: Hashable
    expression: str
    deadline: Optional[float]


@dataclass(frozen=True)
class _AudienceRequest:
    owner: Hashable
    expression: str
    direction: str
    deadline: Optional[float]


@dataclass(frozen=True)
class _AccessRequest:
    requester: Hashable
    resource_id: Hashable
    deadline: Optional[float]


def _expression_text(expression) -> str:
    """Normalized coalesce-key text without touching service caches.

    Strings key by their own text (two spellings of one expression simply
    coalesce separately — correct, just less shared); parsed expressions
    key by canonical form.  The event-loop thread must not touch the
    service's parse cache, which belongs to the worker thread.
    """
    if isinstance(expression, str):
        return expression
    return expression.to_text()


class TenantSession:
    """Async front door of one tenant's :class:`GraphService`.

    Create through :class:`TenantRegistry` (which also wires a default
    :class:`~repro.reliability.guard.QueryGuard` so deadlines are
    enforceable), or wrap an existing service directly.  All async methods
    must be called from one event loop; the underlying service runs only
    on this session's single worker thread.
    """

    def __init__(
        self,
        tenant_id: Hashable,
        service: GraphService,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        max_pending: int = 256,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.service = service
        self.admission = AdmissionController(
            tenant_id, max_pending=max_pending, default_timeout=default_timeout
        )
        self.coalescer = RequestCoalescer(
            self._run_batch, window=window, max_batch=max_batch
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{tenant_id}"
        )
        self._closed = False
        #: Requests answered by per-request re-execution after a batch
        #: tripped the guard (the equivalence fallback).
        self.fallbacks = 0
        #: Requests that bypassed the coalescer entirely (witness reach,
        #: trivial/unknown-resource access checks, explicit solo shapes).
        self.solo_requests = 0
        service.register_statistics_provider("coalescer", self.coalescer.statistics)
        service.register_statistics_provider("admission", self.admission.statistics)
        service.register_statistics_provider("serving", self._own_statistics)

    # ------------------------------------------------------------ public api

    async def reach(
        self,
        source: Hashable,
        target: Hashable,
        expression,
        *,
        witness: bool = False,
        timeout: Optional[float] = None,
    ) -> ServedReach:
        """Serve one reachability question (coalescing boolean-only asks).

        ``witness=True`` requests a path and therefore takes the solo path:
        witness collection is inherently per-pair and cannot share a sweep.
        """
        text = _expression_text(expression)
        deadline = self._admit(timeout)
        try:
            if witness:
                return await self._solo(
                    lambda: self._solo_reach(
                        _ReachRequest(source, target, text, deadline), witness=True
                    )
                )
            request = _ReachRequest(source, target, text, deadline)
            return await self.coalescer.submit(("reach", text), request)
        finally:
            self.admission.release()

    async def audience(
        self,
        owner: Hashable,
        expression,
        *,
        direction: str = "auto",
        timeout: Optional[float] = None,
    ) -> ServedAudience:
        """Serve one owner's audience (coalescing same-expression owners)."""
        text = _expression_text(expression)
        deadline = self._admit(timeout)
        try:
            request = _AudienceRequest(owner, text, direction, deadline)
            return await self.coalescer.submit(("audience", text, direction), request)
        finally:
            self.admission.release()

    async def check(
        self,
        requester: Hashable,
        resource_id: Hashable,
        *,
        timeout: Optional[float] = None,
    ) -> ServedAccess:
        """Serve one access check (coalescing all of a tenant's checks).

        All concurrent checks share one key: the bulk path groups their
        rule conditions by expression across resources, so checks against
        *different* resources still share sweeps.
        """
        deadline = self._admit(timeout)
        try:
            request = _AccessRequest(requester, resource_id, deadline)
            return await self.coalescer.submit(("access",), request)
        finally:
            self.admission.release()

    async def statistics(self) -> Dict[str, float]:
        """The service's merged counters (read on the worker thread)."""
        return await self._in_worker(self.service.statistics)

    async def refresh(self) -> None:
        """Run :meth:`GraphService.refresh` on the worker thread."""
        await self._in_worker(self.service.refresh)

    async def close(self) -> None:
        """Drain in-flight batches and stop the worker thread."""
        if self._closed:
            return
        self._closed = True
        await self.coalescer.drain()
        self._executor.shutdown(wait=True)
        # The statistics providers stay registered: the counters remain
        # readable post-mortem, and a new session over the same service
        # replaces them on registration.

    # -------------------------------------------------------------- plumbing

    def _admit(self, timeout: Optional[float]) -> Optional[float]:
        if self._closed:
            raise RuntimeError(f"session for tenant {self.tenant_id!r} is closed")
        deadline = self.admission.deadline_for(timeout)
        self.admission.admit()
        return deadline

    async def _in_worker(self, fn: Callable):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    async def _solo(self, fn: Callable):
        self.solo_requests += 1
        outcome = await self._in_worker(fn)
        if isinstance(outcome, Raised):
            raise outcome.error
        return outcome

    async def _run_batch(self, key: Tuple, requests: List) -> Sequence:
        return await self._in_worker(lambda: self._execute_batch(key, requests))

    def _own_statistics(self) -> Dict[str, float]:
        return {
            "fallbacks": float(self.fallbacks),
            "solo_requests": float(self.solo_requests),
        }

    # -------------------------------------------- batch execution (worker)

    def _execute_batch(self, key: Tuple, requests: List) -> List:
        """Execute one coalesced batch synchronously on the worker thread."""
        deadlines = [r.deadline for r in requests if r.deadline is not None]
        earliest = min(deadlines) if deadlines else None
        if key[0] == "reach":
            return self._reach_batch(key[1], requests, earliest)
        if key[0] == "audience":
            return self._audience_batch(key[1], key[2], requests, earliest)
        if key[0] == "access":
            return self._access_batch(requests, earliest)
        raise RuntimeError(f"unknown coalesce key: {key!r}")

    def _reach_batch(
        self, text: str, requests: List[_ReachRequest], earliest: Optional[float]
    ) -> List:
        size = len(requests)
        outcomes: List[object] = [None] * size
        valid: List[int] = []
        for index, request in enumerate(requests):
            # Mirror evaluate()'s endpoint validation per member so one
            # absent node errors its own request, not its batch-mates.
            missing = next(
                (
                    node
                    for node in (request.source, request.target)
                    if not self.service.graph.has_user(node)
                ),
                None,
            )
            if missing is not None:
                outcomes[index] = Raised(NodeNotFoundError(missing))
            else:
                valid.append(index)
        if not valid:
            return outcomes
        pairs = [(requests[i].source, requests[i].target) for i in valid]
        with deadline_scope(earliest):
            result = self.service.reach_many(pairs, text)
        if result.partial:
            self.fallbacks += len(valid)
            for index in valid:
                outcomes[index] = self._solo_reach(requests[index])
            return outcomes
        for index in valid:
            request = requests[index]
            outcomes[index] = ServedReach(
                source=request.source,
                target=request.target,
                expression=text,
                reachable=result.reachable[(request.source, request.target)],
                coalesced=size > 1,
                batch_size=size,
            )
        return outcomes

    def _solo_reach(self, request: _ReachRequest, *, witness: bool = False):
        try:
            with deadline_scope(request.deadline):
                result = self.service.reach(
                    request.source,
                    request.target,
                    request.expression,
                    collect_witness=witness,
                )
        except Exception as error:  # typed errors travel to the one requester
            return Raised(error)
        return ServedReach(
            source=request.source,
            target=request.target,
            expression=request.expression,
            reachable=result.reachable,
            witness=result.witness,
        )

    def _audience_batch(
        self,
        text: str,
        direction: str,
        requests: List[_AudienceRequest],
        earliest: Optional[float],
    ) -> List:
        size = len(requests)
        owners = list(dict.fromkeys(request.owner for request in requests))
        with deadline_scope(earliest):
            result = self.service.audience(owners, text, direction=direction)
        if result.partial:
            self.fallbacks += size
            return [self._solo_audience(request) for request in requests]
        return [
            ServedAudience(
                owner=request.owner,
                expression=text,
                # Absent owners are skipped by the sweep, exactly as a
                # sequential single-owner call would skip them: empty.
                audience=frozenset(result.audiences.get(request.owner, ())),
                partial=False,
                coalesced=size > 1,
                batch_size=size,
            )
            for request in requests
        ]

    def _solo_audience(self, request: _AudienceRequest):
        try:
            with deadline_scope(request.deadline):
                result = self.service.audience(
                    request.owner, request.expression, direction=request.direction
                )
        except Exception as error:
            return Raised(error)
        return ServedAudience(
            owner=request.owner,
            expression=request.expression,
            audience=frozenset(result.audiences.get(request.owner, ())),
            partial=result.partial,
        )

    def _access_batch(
        self, requests: List[_AccessRequest], earliest: Optional[float]
    ) -> List:
        size = len(requests)
        outcomes: List[object] = [None] * size
        bulk: List[int] = []
        store = self.service.store
        for index, request in enumerate(requests):
            # Trivial decisions (owner, no-rules default, unknown resource)
            # never traverse; serve them through the unbatched path so their
            # semantics — including the typed unknown-resource error and the
            # default-effect grant the audience does NOT contain — are the
            # sequential ones verbatim.
            if not store.has_resource(request.resource_id):
                outcomes[index] = self._solo_check(request)
                continue
            resource = store.resource(request.resource_id)
            if request.requester == resource.owner or not store.rules_for(
                request.resource_id
            ):
                outcomes[index] = self._solo_check(request)
            else:
                bulk.append(index)
        if not bulk:
            return outcomes
        resource_ids = list(
            dict.fromkeys(requests[i].resource_id for i in bulk)
        )
        with deadline_scope(earliest):
            result = self.service.bulk_access(resource_ids)
        if result.partial:
            self.fallbacks += len(bulk)
            for index in bulk:
                outcomes[index] = self._solo_check(requests[index])
            return outcomes
        for index in bulk:
            request = requests[index]
            audience = result.audiences[request.resource_id]
            # For a non-owner requester against a ruled resource, a grant is
            # exactly membership in the authorized audience (the audience is
            # {owner} ∪ per-rule combine, and requester != owner here).
            granted = request.requester in audience
            reason = (
                "requester is in the authorized audience"
                if granted
                else "requester is not in the authorized audience"
            )
            outcomes[index] = ServedAccess(
                requester=request.requester,
                resource_id=request.resource_id,
                granted=granted,
                reason=f"{reason} (served via audience sweep)",
                coalesced=size > 1,
                batch_size=size,
            )
            self._record_coalesced_decision(request, granted, reason)
        return outcomes

    def _record_coalesced_decision(
        self, request: _AccessRequest, granted: bool, reason: str
    ) -> None:
        """Keep the audit trail complete for coalesced checks.

        Sequential ``check_access`` records every decision; a coalesced
        check must not leave a hole in the log.  The synthetic record
        carries no rule outcomes (the sweep never evaluated rules one by
        one) but names its provenance in the reason.
        """
        audit = self.service.audit_log
        if audit is None:
            return
        resource = self.service.store.resource(request.resource_id)
        audit.record(
            AccessDecision(
                effect=Effect.GRANT if granted else Effect.DENY,
                resource_id=request.resource_id,
                owner=resource.owner,
                requester=request.requester,
                reason=f"{reason} (served via audience sweep)",
            )
        )

    def _solo_check(self, request: _AccessRequest):
        self.solo_requests += 1
        try:
            with deadline_scope(request.deadline):
                result = self.service.check(
                    request.requester, request.resource_id, explain=False
                )
        except Exception as error:
            return Raised(error)
        return ServedAccess(
            requester=request.requester,
            resource_id=request.resource_id,
            granted=result.granted,
            reason=result.decision.reason,
        )

    def __repr__(self) -> str:
        return (
            f"<TenantSession {self.tenant_id!r} "
            f"pending={self.admission.pending} over {self.service!r}>"
        )


class TenantRegistry:
    """Tenant id -> independent :class:`TenantSession` (hard isolation).

    Every tenant gets its own :class:`GraphService` — own graph, own policy
    store, own caches, own worker thread — so no state (memos, planner
    feedback, guard trips, statistics) can leak across tenants.  The
    registry only routes and aggregates.
    """

    def __init__(
        self,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        max_pending: int = 256,
        default_timeout: Optional[float] = None,
    ) -> None:
        self.window = window
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self._sessions: Dict[Hashable, TenantSession] = {}

    def create(
        self,
        tenant_id: Hashable,
        graph: Optional[SocialGraph] = None,
        store: Optional[PolicyStore] = None,
        *,
        service: Optional[GraphService] = None,
        window: Optional[float] = None,
        max_batch: Optional[int] = None,
        max_pending: Optional[int] = None,
        default_timeout: Optional[float] = None,
        **service_kwargs,
    ) -> TenantSession:
        """Register a tenant; builds its :class:`GraphService` unless given.

        A service built here gets a default :class:`QueryGuard` (required
        for request deadlines to be enforceable) unless ``service_kwargs``
        carries an explicit ``query_guard``.
        """
        if tenant_id in self._sessions:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        if service is None:
            if graph is None:
                raise ValueError("create() needs a graph or a prebuilt service")
            service_kwargs.setdefault("query_guard", QueryGuard())
            service = GraphService(graph, store, **service_kwargs)
        session = TenantSession(
            tenant_id,
            service,
            window=self.window if window is None else window,
            max_batch=self.max_batch if max_batch is None else max_batch,
            max_pending=self.max_pending if max_pending is None else max_pending,
            default_timeout=(
                self.default_timeout if default_timeout is None else default_timeout
            ),
        )
        self._sessions[tenant_id] = session
        return session

    def get(self, tenant_id: Hashable) -> TenantSession:
        session = self._sessions.get(tenant_id)
        if session is None:
            raise UnknownTenantError(tenant_id, tuple(self._sessions))
        return session

    def __contains__(self, tenant_id: Hashable) -> bool:
        return tenant_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def tenants(self) -> Tuple[Hashable, ...]:
        return tuple(self._sessions)

    async def remove(self, tenant_id: Hashable) -> None:
        """Close and drop one tenant's session."""
        session = self.get(tenant_id)
        del self._sessions[tenant_id]
        await session.close()

    async def close(self) -> None:
        """Close every session (drains coalescers, stops worker threads)."""
        sessions = list(self._sessions.values())
        self._sessions.clear()
        for session in sessions:
            await session.close()

    async def serving_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant service counters plus a summed ``_totals`` entry.

        Tenant keys are ``str()``-ed for the aggregate mapping; ``_totals``
        sums every numeric counter across tenants (meaningful for the
        monotone counters — admitted, rejected, batches, fallbacks — and
        indicative for gauges).
        """
        aggregate: Dict[str, Dict[str, float]] = {}
        totals: Dict[str, float] = {}
        for tenant_id, session in list(self._sessions.items()):
            stats = await session.statistics()
            aggregate[str(tenant_id)] = stats
            for key, value in stats.items():
                totals[key] = totals.get(key, 0.0) + value
        aggregate["_totals"] = totals
        return aggregate

    def __repr__(self) -> str:
        return f"<TenantRegistry tenants={list(self._sessions)!r}>"
