"""Community-partitioned sharding with boundary summaries.

The layer splits one :class:`~repro.graph.social_graph.SocialGraph` into
per-community shard mirrors (:class:`ShardedGraph`, placed by the
deterministic :class:`CommunityPartitioner`), executes every query shape
shard-locally with message-shaped cross-shard escalation
(:class:`ShardRouter`, pruned by :class:`BoundarySummary`), and serves the
persisted shards from cooperating worker processes over shared mmapped
pages (:class:`ShardServingPool`).
"""

from repro.sharding.multiproc import ShardServingPool
from repro.sharding.partitioner import CommunityPartitioner, Partition
from repro.sharding.router import ShardRouter, ShardSweepPlan
from repro.sharding.shard import GHOST_ATTR, ShardedGraph
from repro.sharding.summary import BoundarySummary

__all__ = [
    "GHOST_ATTR",
    "BoundarySummary",
    "CommunityPartitioner",
    "Partition",
    "ShardRouter",
    "ShardServingPool",
    "ShardSweepPlan",
    "ShardedGraph",
]
