"""Multi-process shard serving over mmapped snapshots.

One worker process per shard, each holding its shard's persisted snapshot
**zero-copy** (:meth:`~repro.graph.snapshot.SnapshotStore.load` mmaps the
base segment read-only; the kernel shares the pages across workers).  The
parent routes the same ``(user, state, mask)`` message triples the
in-process :class:`~repro.sharding.router.ShardRouter` uses, over pipes:
each bulk-synchronous round sends every touched shard its pending seeds
*first* and only then collects exports, so the workers' sweep work runs in
parallel.

The pool reads the manifest written by
:meth:`~repro.sharding.shard.ShardedGraph.save` — shard stems for loading,
the owner map for routing — and never recomputes the partition.  Ghost
nodes are self-describing (:data:`~repro.sharding.shard.GHOST_ATTR` is an
ordinary persisted attribute), so a worker needs nothing but its snapshot
file.  Workers survive ``fork`` and ``spawn`` alike: the worker body is a
module-level function, its only state the snapshot path.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graph.snapshot import SnapshotStore
from repro.policy.path_expression import PathExpression
from repro.reachability.compiled_search import CompiledAutomaton, _mask_bits
from repro.sharding.router import _ShardSweepState, ghost_indices
from repro.sharding.shard import ShardedGraph

__all__ = ["ShardServingPool"]


def _shard_worker(stem_path: str, conn) -> None:
    """Serve one shard snapshot over a pipe (module-level for ``spawn``)."""
    snapshot = SnapshotStore(Path(stem_path)).load()
    ghosts = ghost_indices(snapshot)
    ghost_set = set(ghosts)
    dead = snapshot.dead_slots
    owned = [
        node
        for node in range(snapshot.number_of_nodes())
        if node not in dead and node not in ghost_set
    ]
    conn.send(
        (
            "ready",
            {
                "mapped": bool(snapshot.mapped),
                "nodes": snapshot.number_of_live_nodes(),
                "ghosts": len(ghosts),
                "nbytes": snapshot.nbytes,
            },
        )
    )
    state = None
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "quit":
            break
        if kind == "begin":
            expression = PathExpression.parse(message[1])
            automaton = CompiledAutomaton(expression, snapshot)
            state = _ShardSweepState(snapshot, automaton, ghosts)
            conn.send(("ok",))
        elif kind == "seeds":
            for user, state_id, mask in message[1]:
                node = snapshot.index_of(user)
                state.seed(
                    node,
                    state.automaton.start_id if state_id < 0 else state_id,
                    mask,
                )
            state.run()
            conn.send(("round", state.export()))
        elif kind == "collect":
            accepts: Dict[Hashable, int] = {}
            num_states = state.num_states
            accept_id = state.automaton.accept_id
            seen = state.seen
            user_of = snapshot.node_ids
            for node in owned:
                mask = seen[node * num_states + accept_id]
                if mask:
                    accepts[user_of[node]] = mask
            conn.send(("accepts", accepts))
        else:  # pragma: no cover - protocol misuse
            conn.send(("error", f"unknown message {kind!r}"))
    conn.close()


class ShardServingPool:
    """N shard workers jointly answering bulk audience queries.

    The parent is a pure router: it holds no graph data, only the
    manifest's owner map.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, directory, *, start_method: str = "fork") -> None:
        directory = Path(directory)
        self.manifest = ShardedGraph.read_manifest(directory)
        self.start_method = start_method
        self._owners: Dict[str, int] = {
            user: shard for user, shard in self.manifest["owners"]
        }
        context = multiprocessing.get_context(start_method)
        self.workers: List = []
        self.conns: List = []
        self.worker_info: List[Dict] = []
        self.rounds = 0
        self.messages = 0
        try:
            for stem in self.manifest["stems"]:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(str(directory / stem), child_conn),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.workers.append(process)
                self.conns.append(parent_conn)
            for conn in self.conns:
                kind, info = conn.recv()
                assert kind == "ready"
                self.worker_info.append(info)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------- api

    @property
    def shard_count(self) -> int:
        return len(self.conns)

    def home_of(self, user: Hashable) -> int:
        """The shard owning ``user`` (manifest keys are stringified ids)."""
        return self._owners[str(user)]

    def bulk_audience(
        self, sources: Sequence[Hashable], expression
    ) -> Dict[Hashable, Set[Hashable]]:
        """Audiences of ``sources`` under ``expression``, workers in concert.

        Equals the single-process
        :func:`~repro.reachability.compiled_search.audience_sweep` answer on
        the same graph — the property ``tests/sharding/test_multiprocess.py``
        asserts across the fork/spawn matrix.
        """
        sources = list(dict.fromkeys(sources))
        if len(sources) > 1 << 16:
            raise ValueError("bulk audience is limited to 65536 owners per call")
        text = str(expression)
        for conn in self.conns:
            conn.send(("begin", text))
        for conn in self.conns:
            kind, *_rest = conn.recv()
            assert kind == "ok"
        pending: Dict[int, List[Tuple[Hashable, int, int]]] = {}
        for bit, user in enumerate(sources):
            pending.setdefault(self.home_of(user), []).append((user, -1, 1 << bit))
        while pending:
            self.rounds += 1
            touched = sorted(pending)
            # Send everything first: the touched workers sweep in parallel.
            for shard in touched:
                self.conns[shard].send(("seeds", pending[shard]))
            outgoing: Dict[int, List[Tuple[Hashable, int, int]]] = {}
            for shard in touched:
                kind, exports = self.conns[shard].recv()
                assert kind == "round"
                for user, state_id, mask in exports:
                    outgoing.setdefault(self.home_of(user), []).append(
                        (user, state_id, mask)
                    )
                    self.messages += 1
            pending = outgoing
        for conn in self.conns:
            conn.send(("collect",))
        audiences: Dict[Hashable, Set[Hashable]] = {
            source: set() for source in sources
        }
        bits_of: Dict[int, List[int]] = {}
        for conn in self.conns:
            kind, accepts = conn.recv()
            assert kind == "accepts"
            for user, mask in accepts.items():
                bits = bits_of.get(mask)
                if bits is None:
                    bits = bits_of[mask] = _mask_bits(mask)
                for bit in bits:
                    audiences[sources[bit]].add(user)
        return audiences

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for conn in self.conns:
            try:
                conn.send(("quit",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.conns = []
        self.workers = []

    def __enter__(self) -> "ShardServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardServingPool {self.shard_count} workers "
            f"({self.start_method}), {len(self._owners)} routed users>"
        )
