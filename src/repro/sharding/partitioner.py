"""Community detection and shard assignment over the compiled CSR.

Social graphs are community-structured: most edges — and therefore most
product-walk frontiers — stay inside a dense cluster of mutually connected
users.  :class:`CommunityPartitioner` detects those clusters with
**seeded asynchronous label propagation** run directly on the snapshot's
merged CSR halves (no per-node Python objects, no third-party dependency)
and then bin-packs whole communities onto ``shards`` shards, so a shard
boundary only ever cuts the sparse inter-community edges.

Determinism contract
--------------------
The partition is a pure function of ``(graph structure, seed, shards)``:

* node visit order is shuffled by a private ``random.Random(seed)``;
* the label update takes the most frequent neighbour label, ties broken by
  the *smallest* label id;
* communities are packed largest-first onto the least-loaded shard, ties
  broken by the lowest shard id.

Two runs over snapshots with the same interned structure therefore produce
identical ``shard_of`` maps — the property the differential test layer and
the multiprocess manifest both rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.compiled import CompiledGraph
from repro.graph.social_graph import UserId

__all__ = ["CommunityPartitioner", "Partition"]


@dataclass(frozen=True)
class Partition:
    """One deterministic community partition of a compiled snapshot."""

    shard_count: int
    seed: int
    shard_of: Dict[UserId, int] = field(default_factory=dict)
    community_of: Dict[UserId, int] = field(default_factory=dict)
    community_count: int = 0
    rounds: int = 0

    def members(self, shard: int) -> List[UserId]:
        """The users owned by one shard (deterministic order)."""
        return sorted(
            (user for user, owner in self.shard_of.items() if owner == shard),
            key=str,
        )

    def shard_sizes(self) -> List[int]:
        """Owned-user count per shard."""
        sizes = [0] * self.shard_count
        for shard in self.shard_of.values():
            sizes[shard] += 1
        return sizes


class CommunityPartitioner:
    """Label-propagation community detection + community-to-shard packing."""

    def __init__(self, shards: int, *, seed: int = 7, max_rounds: int = 12) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.shards = shards
        self.seed = seed
        self.max_rounds = max_rounds

    def partition(self, snapshot: CompiledGraph) -> Partition:
        """Detect communities on ``snapshot`` and pack them onto shards."""
        node_count = snapshot.number_of_nodes()
        dead = snapshot.dead_slots
        live = [node for node in range(node_count) if node not in dead]
        label = list(range(node_count))
        rounds = 0
        if live:
            halves = (snapshot.forward(None), snapshot.backward(None))
            rng = random.Random(self.seed)
            order = list(live)
            for rounds in range(1, self.max_rounds + 1):
                rng.shuffle(order)
                changed = 0
                for node in order:
                    counts: Dict[int, int] = {}
                    for offsets, targets in halves:
                        for position in range(offsets[node], offsets[node + 1]):
                            neighbor_label = label[targets[position]]
                            counts[neighbor_label] = counts.get(neighbor_label, 0) + 1
                    if not counts:
                        continue
                    # Most frequent neighbour label; ties -> smallest id.
                    best = min(counts, key=lambda lab: (-counts[lab], lab))
                    if best != label[node]:
                        label[node] = best
                        changed += 1
                if not changed:
                    break
        # Densify community ids in first-appearance order over node index so
        # they are stable against the arbitrary surviving raw labels.
        dense: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        for node in live:
            community = dense.setdefault(label[node], len(dense))
            sizes[community] = sizes.get(community, 0) + 1
        # Largest community first onto the least-loaded shard (lowest id on
        # ties): classic LPT bin packing keeps shards balanced even when one
        # community dominates.
        packing_order: List[Tuple[int, int]] = sorted(
            sizes.items(), key=lambda item: (-item[1], item[0])
        )
        loads = [0] * self.shards
        shard_of_community: Dict[int, int] = {}
        for community, size in packing_order:
            shard = loads.index(min(loads))
            shard_of_community[community] = shard
            loads[shard] += size
        shard_of: Dict[UserId, int] = {}
        community_of: Dict[UserId, int] = {}
        for node in live:
            user = snapshot.user_of(node)
            community = dense[label[node]]
            community_of[user] = community
            shard_of[user] = shard_of_community[community]
        return Partition(
            shard_count=self.shards,
            seed=self.seed,
            shard_of=shard_of,
            community_of=community_of,
            community_count=len(dense),
            rounds=rounds,
        )

    def __repr__(self) -> str:
        return (
            f"<CommunityPartitioner shards={self.shards}, seed={self.seed}, "
            f"max_rounds={self.max_rounds}>"
        )
